//===- Device.h - simulated GPU device --------------------------*- C++ -*-===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The simulated GPU device: global memory with a bump-with-free-list
/// allocator, a symbol table for device global variables, loaded code
/// modules, an L2 cache model, and the per-stream simulated timelines that
/// track kernel and transfer time (see Stream.h for the timeline model).
/// The HIP/CUDA-like entry points in Runtime.h operate on this object.
///
//===----------------------------------------------------------------------===//

#ifndef PROTEUS_GPU_DEVICE_H
#define PROTEUS_GPU_DEVICE_H

#include "codegen/MachineIR.h"
#include "codegen/Target.h"
#include "gpu/LaunchStats.h"
#include "gpu/Stream.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

namespace proteus {
namespace gpu {

using DevicePtr = uint64_t;

/// Set-associative L2 cache model shared by all accesses of a launch.
class L2Cache {
public:
  L2Cache(uint64_t SizeBytes, unsigned LineBytes, unsigned Ways);

  /// Simulates one access; returns true on hit.
  bool access(uint64_t Address);

  void reset();

private:
  unsigned LineBytes;
  unsigned Ways;
  size_t NumSets;
  std::vector<uint64_t> Tags;     // NumSets x Ways, 0 = empty
  std::vector<uint32_t> LastUsed; // LRU stamps
  uint32_t Clock = 0;
};

/// A kernel loaded onto the device, ready to launch.
struct LoadedKernel {
  mcode::MachineFunction MF;
  GpuArch Arch;
};

/// Outcome of Device::free — unknown and double frees are counted and
/// reported instead of silently ignored, so leak/double-free bugs in
/// multi-stream programs fail loudly.
enum class FreeStatus {
  Ok,
  Unknown,    ///< pointer was never a live allocation start
  DoubleFree, ///< pointer matches an allocation already on the free list
};

/// One simulated GPU.
class Device {
public:
  explicit Device(const TargetInfo &Target, uint64_t MemoryBytes = 1ull << 28);

  const TargetInfo &target() const { return Target; }

  /// Index of this device within its DeviceManager (0 for standalone
  /// devices); used as the device half of trace lane ids.
  unsigned ordinal() const { return Ordinal; }
  void setOrdinal(unsigned O) { Ordinal = O; }

  // -- Memory --------------------------------------------------------------

  /// Allocates \p Bytes of device memory; returns 0 on exhaustion.
  DevicePtr allocate(uint64_t Bytes);

  /// Frees a prior allocation. Unknown pointers and double frees are
  /// diagnosed (counted, see unknownFrees()/doubleFrees()) instead of
  /// silently ignored.
  FreeStatus free(DevicePtr P);

  uint64_t unknownFrees() const { return UnknownFreeCount; }
  uint64_t doubleFrees() const { return DoubleFreeCount; }

  std::vector<uint8_t> &memory() { return Memory; }
  const std::vector<uint8_t> &memory() const { return Memory; }

  bool validRange(DevicePtr P, uint64_t Bytes) const {
    return P + Bytes <= Memory.size() && P + Bytes >= P;
  }

  /// If \p P points inside a live allocation, reports its base and size and
  /// returns true. Lets the capture subsystem decide whether an argument's
  /// raw bits name device memory worth snapshotting.
  bool findAllocation(DevicePtr P, DevicePtr *Base, uint64_t *Size) const;

  /// Every live allocation as (base, size), sorted by base address — the
  /// deterministic enumeration the migration engine walks when it copies a
  /// device's reachable state to another device. Caller must hold whatever
  /// lock serializes operations against this device.
  std::vector<std::pair<DevicePtr, uint64_t>> liveAllocations() const {
    std::vector<std::pair<DevicePtr, uint64_t>> Out(Allocations.begin(),
                                                    Allocations.end());
    std::sort(Out.begin(), Out.end());
    return Out;
  }

  /// Reconstructs an allocation at an exact prior address (capture replay
  /// rebuilds the captured device's address map verbatim). Fails when the
  /// range is invalid or overlaps an existing allocation.
  bool claimRange(DevicePtr Base, uint64_t Bytes);

  // -- Globals --------------------------------------------------------------

  /// Registers a device global symbol at a fresh allocation, copying the
  /// initializer (zero-fill when empty). Idempotent per symbol.
  DevicePtr registerGlobal(const std::string &Symbol, uint64_t Bytes,
                           const std::vector<uint8_t> &Init);

  /// Device address of \p Symbol, or 0 when unknown (mirrors
  /// cuda/hipGetSymbolAddress).
  DevicePtr getSymbolAddress(const std::string &Symbol) const;

  /// Binds \p Symbol to an existing address without allocating (capture
  /// replay pins globals to their capture-time addresses inside ranges it
  /// already claimed). Overwrites any previous binding.
  void defineSymbol(const std::string &Symbol, DevicePtr Address) {
    Symbols[Symbol] = Address;
  }

  /// Every symbol binding as (name, address), sorted by name — migration
  /// re-binds these on the target device so symbolic-linkage relocations
  /// resolve to the migrated copies of the globals.
  std::vector<std::pair<std::string, DevicePtr>> symbolBindings() const {
    std::vector<std::pair<std::string, DevicePtr>> Out(Symbols.begin(),
                                                       Symbols.end());
    std::sort(Out.begin(), Out.end());
    return Out;
  }

  // -- Modules / kernels -----------------------------------------------------

  /// Loads object bytes, patching global-variable relocations against the
  /// symbol table. Returns null and sets \p Error on failure.
  LoadedKernel *loadKernel(const std::vector<uint8_t> &Object,
                           std::string *Error = nullptr);

  // -- Streams ---------------------------------------------------------------

  /// The legacy default stream (id 0); target of the synchronous API.
  Stream &defaultStream() { return *Streams.front(); }

  /// Creates a new independent stream (hip/cudaStreamCreate).
  Stream *createStream();

  /// Stream by id, or null when out of range.
  Stream *stream(unsigned Id) {
    return Id < Streams.size() ? Streams[Id].get() : nullptr;
  }

  unsigned numStreams() const { return static_cast<unsigned>(Streams.size()); }

  // -- Simulated time --------------------------------------------------------

  /// Simulated device makespan: the completion time of all work enqueued on
  /// any stream. With only the default stream in use this equals the old
  /// serial accumulate-everything clock.
  double simulatedSeconds() const {
    double Max = 0.0;
    for (const auto &S : Streams)
      if (S->tailSeconds() > Max)
        Max = S->tailSeconds();
    return Max;
  }

  /// Charges \p S seconds of serial (full-barrier) work: the op starts at
  /// the current makespan — after everything on every stream — and lands on
  /// the default stream's timeline, like a CUDA legacy-default-stream op.
  void chargeSerial(double S, const char *TraceName = nullptr) {
    defaultStream().waitUntil(simulatedSeconds());
    defaultStream().enqueue(S, TraceName);
  }

  /// Legacy name for chargeSerial (pre-stream callers).
  void addSimulatedSeconds(double S) { chargeSerial(S); }

  void resetSimulatedTime() {
    for (auto &S : Streams)
      S->resetTimeline();
    recomputeLoadGauge();
  }

  // -- Load gauge ------------------------------------------------------------
  //
  // A monotonically-published copy of the device makespan in integer
  // nanoseconds, maintained with relaxed atomics so the heterogeneous
  // scheduler can rank devices by queue depth WITHOUT taking the per-device
  // lock that serializes enqueues (reading Stream::Tail directly from
  // another thread would be a data race). Streams push tail advances here;
  // the timeline-reset paths recompute it.

  /// Published device makespan in nanoseconds; safe to read from any thread.
  uint64_t loadGaugeNs() const {
    return LoadGaugeNs.load(std::memory_order_relaxed);
  }

  /// Publishes a stream-tail advance (CAS-max; called by Stream under the
  /// owner's device lock, but readers are lock-free).
  void noteTailSeconds(double TailSec) {
    uint64_t Ns =
        TailSec > 0 ? static_cast<uint64_t>(TailSec * 1e9) : uint64_t(0);
    uint64_t Cur = LoadGaugeNs.load(std::memory_order_relaxed);
    while (Ns > Cur && !LoadGaugeNs.compare_exchange_weak(
                           Cur, Ns, std::memory_order_relaxed))
      ;
  }

  /// Re-derives the gauge from the current stream tails (after a reset or
  /// rollback, when the makespan may have moved backwards).
  void recomputeLoadGauge() {
    LoadGaugeNs.store(static_cast<uint64_t>(simulatedSeconds() * 1e9),
                      std::memory_order_relaxed);
  }

  /// Accumulated kernel-only simulated time (sum over all streams).
  double kernelSeconds() const { return KernelSeconds; }
  void addKernelSeconds(double S) { KernelSeconds += S; }

  /// Restores both clocks to a prior reading (used by the auto-tuner to
  /// exclude trial launches from program accounting). Trial launches are
  /// synchronous, so rewinding collapses onto the default stream: its tail
  /// is set to \p Sim and every other stream is clamped down to it.
  /// Prefer streamTails()/restoreTimelines() — this legacy form zeroes any
  /// non-default stream that advanced past \p Sim instead of restoring its
  /// actual tail, which loses per-stream state in multi-stream programs.
  void restoreClock(double Sim, double Kernel) {
    for (auto &S : Streams)
      if (S->tailSeconds() > Sim)
        S->resetTimeline();
    defaultStream().resetTimeline();
    defaultStream().waitUntil(Sim);
    KernelSeconds = Kernel;
    recomputeLoadGauge();
  }

  /// Snapshot of every stream's tail, in stream-id order — the counterpart
  /// of restoreTimelines(). Cheap: one double per stream.
  std::vector<double> streamTails() const {
    std::vector<double> Tails;
    Tails.reserve(Streams.size());
    for (const auto &S : Streams)
      Tails.push_back(S->tailSeconds());
    return Tails;
  }

  /// Restores every stream's tail to a streamTails() snapshot and the
  /// kernel-time accumulator to \p Kernel. Streams created after the
  /// snapshot was taken are reset to zero (they carried no work then).
  /// This is the side-effect rollback the tuner uses: per-stream timelines
  /// come back exactly, not collapsed onto the default stream.
  void restoreTimelines(const std::vector<double> &Tails, double Kernel) {
    for (size_t I = 0; I != Streams.size(); ++I) {
      Streams[I]->resetTimeline();
      if (I < Tails.size())
        Streams[I]->waitUntil(Tails[I]);
    }
    KernelSeconds = Kernel;
    recomputeLoadGauge();
  }

  L2Cache &l2() { return L2; }

  /// Counters of the most recent launch (set by the Executor).
  LaunchStats LastLaunch;

  /// Per-kernel aggregated profile (rocprof/nvprof-sim).
  std::map<std::string, LaunchStats> Profile;

private:
  const TargetInfo &Target;
  std::vector<uint8_t> Memory;
  uint64_t Brk = 64; // address 0 reserved as null
  std::unordered_map<uint64_t, uint64_t> Allocations; // ptr -> size
  std::vector<std::pair<uint64_t, uint64_t>> FreeList; // (ptr, size)
  std::unordered_map<std::string, DevicePtr> Symbols;
  std::vector<std::unique_ptr<LoadedKernel>> Kernels;
  L2Cache L2;
  std::vector<std::unique_ptr<Stream>> Streams;
  double KernelSeconds = 0.0;
  std::atomic<uint64_t> LoadGaugeNs{0};
  unsigned Ordinal = 0;
  uint64_t UnknownFreeCount = 0;
  uint64_t DoubleFreeCount = 0;
};

} // namespace gpu
} // namespace proteus

#endif // PROTEUS_GPU_DEVICE_H
