//===- Device.cpp - simulated GPU device ------------------------------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//

#include "gpu/Device.h"

#include "codegen/ObjectFile.h"

#include <algorithm>
#include <cstring>

using namespace proteus;
using namespace proteus::gpu;

void LaunchStats::accumulate(const LaunchStats &O) {
  Blocks += O.Blocks;
  ThreadsPerBlock = O.ThreadsPerBlock;
  TotalInstrs += O.TotalInstrs;
  VALUInsts += O.VALUInsts;
  SALUInsts += O.SALUInsts;
  MemLoads += O.MemLoads;
  MemStores += O.MemStores;
  SpillLoads += O.SpillLoads;
  SpillStores += O.SpillStores;
  Atomics += O.Atomics;
  Branches += O.Branches;
  Barriers += O.Barriers;
  TranscendentalInsts += O.TranscendentalInsts;
  DivInsts += O.DivInsts;
  L2Hits += O.L2Hits;
  L2Misses += O.L2Misses;
  RegsUsed = std::max(RegsUsed, O.RegsUsed);
  SpillSlots = std::max(SpillSlots, O.SpillSlots);
  LaunchBoundsThreads = O.LaunchBoundsThreads;
  DurationSec += O.DurationSec;
  // Keep the most recent derived rates (they are per-launch metrics).
  Occupancy = O.Occupancy;
  IPC = O.IPC;
  VALUBusyPct = O.VALUBusyPct;
  StallPct = O.StallPct;
}

L2Cache::L2Cache(uint64_t SizeBytes, unsigned LineBytes, unsigned Ways)
    : LineBytes(LineBytes), Ways(Ways),
      NumSets(std::max<uint64_t>(1, SizeBytes / LineBytes / Ways)),
      Tags(NumSets * Ways, 0), LastUsed(NumSets * Ways, 0) {}

bool L2Cache::access(uint64_t Address) {
  uint64_t Line = Address / LineBytes + 1; // +1 so tag 0 means empty
  size_t Set = static_cast<size_t>(Line % NumSets);
  uint64_t *SetTags = &Tags[Set * Ways];
  uint32_t *SetUsed = &LastUsed[Set * Ways];
  ++Clock;
  unsigned VictimWay = 0;
  uint32_t VictimStamp = ~0u;
  for (unsigned W = 0; W != Ways; ++W) {
    if (SetTags[W] == Line) {
      SetUsed[W] = Clock;
      return true;
    }
    if (SetUsed[W] < VictimStamp) {
      VictimStamp = SetUsed[W];
      VictimWay = W;
    }
  }
  SetTags[VictimWay] = Line;
  SetUsed[VictimWay] = Clock;
  return false;
}

void L2Cache::reset() {
  std::fill(Tags.begin(), Tags.end(), 0);
  std::fill(LastUsed.begin(), LastUsed.end(), 0);
  Clock = 0;
}

Device::Device(const TargetInfo &Target, uint64_t MemoryBytes)
    : Target(Target), Memory(MemoryBytes, 0), L2(Target.L2Bytes, 128, 16) {
  // Stream 0 is the legacy default stream; it always exists.
  Streams.emplace_back(new Stream(*this, 0));
}

Stream *Device::createStream() {
  Streams.emplace_back(
      new Stream(*this, static_cast<unsigned>(Streams.size())));
  return Streams.back().get();
}

DevicePtr Device::allocate(uint64_t Bytes) {
  if (Bytes == 0)
    Bytes = 1;
  // Round to 256-byte alignment like real allocators.
  Bytes = (Bytes + 255) & ~255ull;
  // First-fit from the free list.
  for (size_t I = 0; I != FreeList.size(); ++I) {
    if (FreeList[I].second >= Bytes) {
      DevicePtr P = FreeList[I].first;
      if (FreeList[I].second > Bytes) {
        FreeList[I].first += Bytes;
        FreeList[I].second -= Bytes;
      } else {
        FreeList.erase(FreeList.begin() + static_cast<long>(I));
      }
      Allocations[P] = Bytes;
      return P;
    }
  }
  if (Brk + Bytes > Memory.size())
    return 0;
  DevicePtr P = Brk;
  Brk += Bytes;
  Allocations[P] = Bytes;
  return P;
}

FreeStatus Device::free(DevicePtr P) {
  auto It = Allocations.find(P);
  if (It == Allocations.end()) {
    // Distinguish a double free (the block is sitting on the free list)
    // from a pointer that was never an allocation start.
    for (const auto &Blk : FreeList)
      if (Blk.first == P) {
        ++DoubleFreeCount;
        return FreeStatus::DoubleFree;
      }
    ++UnknownFreeCount;
    return FreeStatus::Unknown;
  }
  FreeList.push_back({It->first, It->second});
  Allocations.erase(It);
  return FreeStatus::Ok;
}

bool Device::findAllocation(DevicePtr P, DevicePtr *Base,
                            uint64_t *Size) const {
  for (const auto &Alloc : Allocations) {
    if (P >= Alloc.first && P < Alloc.first + Alloc.second) {
      if (Base)
        *Base = Alloc.first;
      if (Size)
        *Size = Alloc.second;
      return true;
    }
  }
  return false;
}

bool Device::claimRange(DevicePtr Base, uint64_t Bytes) {
  if (Base == 0 || Bytes == 0 || !validRange(Base, Bytes))
    return false;
  for (const auto &Alloc : Allocations)
    if (Base < Alloc.first + Alloc.second && Alloc.first < Base + Bytes)
      return false;
  Allocations[Base] = Bytes;
  if (Base + Bytes > Brk)
    Brk = Base + Bytes;
  return true;
}

DevicePtr Device::registerGlobal(const std::string &Symbol, uint64_t Bytes,
                                 const std::vector<uint8_t> &Init) {
  auto It = Symbols.find(Symbol);
  if (It != Symbols.end())
    return It->second;
  DevicePtr P = allocate(Bytes);
  if (!P)
    return 0;
  if (!Init.empty() && validRange(P, Init.size()))
    std::memcpy(Memory.data() + P, Init.data(), Init.size());
  Symbols[Symbol] = P;
  return P;
}

DevicePtr Device::getSymbolAddress(const std::string &Symbol) const {
  auto It = Symbols.find(Symbol);
  return It == Symbols.end() ? 0 : It->second;
}

LoadedKernel *Device::loadKernel(const std::vector<uint8_t> &Object,
                                 std::string *Error) {
  ObjectReadResult R = readObject(Object);
  if (!R.Ok) {
    if (Error)
      *Error = R.Error;
    return nullptr;
  }
  if (R.Arch != Target.Arch) {
    if (Error)
      *Error = "object compiled for " + std::string(gpuArchName(R.Arch)) +
               " loaded on " + Target.Name;
    return nullptr;
  }
  // Patch global-variable relocations against the symbol table.
  for (const mcode::Relocation &Rel : R.MF.Relocs) {
    DevicePtr Addr = getSymbolAddress(Rel.Symbol);
    if (!Addr) {
      if (Error)
        *Error = "unresolved device global @" + Rel.Symbol;
      return nullptr;
    }
    if (Rel.Block >= R.MF.Blocks.size() ||
        Rel.InstrIndex >= R.MF.Blocks[Rel.Block].Instrs.size()) {
      if (Error)
        *Error = "relocation out of range";
      return nullptr;
    }
    R.MF.Blocks[Rel.Block].Instrs[Rel.InstrIndex].Imm =
        static_cast<int64_t>(Addr);
  }
  auto LK = std::make_unique<LoadedKernel>();
  LK->MF = std::move(R.MF);
  LK->Arch = R.Arch;
  Kernels.push_back(std::move(LK));
  return Kernels.back().get();
}
