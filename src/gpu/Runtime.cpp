//===- Runtime.cpp - HIP/CUDA-like runtime API -----------------------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//

#include "gpu/Runtime.h"

#include "gpu/PerfModel.h"
#include "support/Error.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include <cstring>

using namespace proteus;
using namespace proteus::gpu;

const char *proteus::gpu::gpuErrorName(GpuError E) {
  switch (E) {
  case GpuError::Success:
    return "success";
  case GpuError::OutOfMemory:
    return "out of memory";
  case GpuError::InvalidValue:
    return "invalid value";
  case GpuError::LaunchFailure:
    return "launch failure";
  case GpuError::NotFound:
    return "not found";
  }
  proteus_unreachable("unknown gpu error");
}

GpuError proteus::gpu::gpuMalloc(Device &Dev, DevicePtr *Out,
                                 uint64_t Bytes) {
  if (!Out)
    return GpuError::InvalidValue;
  DevicePtr P = Dev.allocate(Bytes);
  if (!P)
    return GpuError::OutOfMemory;
  *Out = P;
  return GpuError::Success;
}

GpuError proteus::gpu::gpuFree(Device &Dev, DevicePtr P) {
  switch (Dev.free(P)) {
  case FreeStatus::Ok:
    return GpuError::Success;
  case FreeStatus::Unknown:
    metrics::processRegistry().counter("gpu.free_unknown").add();
    return GpuError::InvalidValue;
  case FreeStatus::DoubleFree:
    metrics::processRegistry().counter("gpu.free_double").add();
    return GpuError::InvalidValue;
  }
  proteus_unreachable("unknown free status");
}

GpuError proteus::gpu::gpuMemcpyHtoD(Device &Dev, DevicePtr Dst,
                                     const void *Src, uint64_t Bytes) {
  if (!Dev.validRange(Dst, Bytes))
    return GpuError::InvalidValue;
  std::memcpy(Dev.memory().data() + Dst, Src, Bytes);
  Dev.chargeSerial(transferSeconds(Dev.target(), Bytes), "memcpyHtoD");
  return GpuError::Success;
}

GpuError proteus::gpu::gpuMemcpyDtoH(Device &Dev, void *Dst, DevicePtr Src,
                                     uint64_t Bytes) {
  if (!Dev.validRange(Src, Bytes))
    return GpuError::InvalidValue;
  std::memcpy(Dst, Dev.memory().data() + Src, Bytes);
  Dev.chargeSerial(transferSeconds(Dev.target(), Bytes), "memcpyDtoH");
  return GpuError::Success;
}

GpuError proteus::gpu::gpuMemset(Device &Dev, DevicePtr Dst, uint8_t Value,
                                 uint64_t Bytes) {
  if (!Dev.validRange(Dst, Bytes))
    return GpuError::InvalidValue;
  std::memset(Dev.memory().data() + Dst, Value, Bytes);
  Dev.chargeSerial(transferSeconds(Dev.target(), Bytes) / 2, "memset");
  return GpuError::Success;
}

GpuError proteus::gpu::gpuRegisterVar(Device &Dev, const std::string &Symbol,
                                      uint64_t Bytes,
                                      const std::vector<uint8_t> &Init) {
  return Dev.registerGlobal(Symbol, Bytes, Init) ? GpuError::Success
                                                 : GpuError::OutOfMemory;
}

GpuError proteus::gpu::gpuGetSymbolAddress(Device &Dev, DevicePtr *Out,
                                           const std::string &Symbol) {
  if (!Out)
    return GpuError::InvalidValue;
  DevicePtr P = Dev.getSymbolAddress(Symbol);
  if (!P)
    return GpuError::NotFound;
  *Out = P;
  return GpuError::Success;
}

GpuError proteus::gpu::gpuModuleLoad(Device &Dev, LoadedKernel **Out,
                                     const std::vector<uint8_t> &Object,
                                     std::string *Error) {
  if (!Out)
    return GpuError::InvalidValue;
  LoadedKernel *K = Dev.loadKernel(Object, Error);
  if (!K)
    return GpuError::InvalidValue;
  // Module loading costs simulated time proportional to the binary size
  // (driver upload + setup).
  Dev.chargeSerial(20e-6 + transferSeconds(Dev.target(), Object.size()),
                   "moduleLoad");
  *Out = K;
  return GpuError::Success;
}

// Trace-lane label for a kernel launch; interning keeps the pointer valid
// for the session. Null when tracing is off so Stream::enqueue skips it.
static const char *kernelTraceName(const LoadedKernel &Kernel) {
  return trace::enabled() ? trace::internName(Kernel.MF.Name) : nullptr;
}

GpuError proteus::gpu::gpuLaunchKernel(Device &Dev,
                                       const LoadedKernel &Kernel, Dim3 Grid,
                                       Dim3 Block,
                                       const std::vector<KernelArg> &Args,
                                       std::string *Error) {
  LaunchResult R = launchKernel(Dev, Kernel, Grid, Block, Args);
  if (!R.Ok) {
    if (Error)
      *Error = R.Error;
    return GpuError::LaunchFailure;
  }
  Dev.chargeSerial(R.Stats.DurationSec, kernelTraceName(Kernel));
  Dev.addKernelSeconds(R.Stats.DurationSec);
  return GpuError::Success;
}

GpuError proteus::gpu::gpuStreamCreate(Device &Dev, Stream **Out) {
  if (!Out)
    return GpuError::InvalidValue;
  *Out = Dev.createStream();
  return GpuError::Success;
}

GpuError proteus::gpu::gpuStreamSynchronize(Device &Dev, Stream *S) {
  if (S && &S->device() != &Dev)
    return GpuError::InvalidValue;
  // Functional effects are applied at enqueue time, so draining a stream
  // has nothing left to do in either the value or timing model.
  return GpuError::Success;
}

GpuError proteus::gpu::gpuDeviceSynchronize(Device &) {
  return GpuError::Success;
}

GpuError proteus::gpu::gpuMemcpyHtoDAsync(Device &Dev, DevicePtr Dst,
                                          const void *Src, uint64_t Bytes,
                                          Stream *S) {
  if (!S)
    return gpuMemcpyHtoD(Dev, Dst, Src, Bytes);
  if (&S->device() != &Dev || !Dev.validRange(Dst, Bytes))
    return GpuError::InvalidValue;
  std::memcpy(Dev.memory().data() + Dst, Src, Bytes);
  S->enqueue(transferSeconds(Dev.target(), Bytes), "memcpyHtoD");
  return GpuError::Success;
}

GpuError proteus::gpu::gpuMemcpyDtoHAsync(Device &Dev, void *Dst,
                                          DevicePtr Src, uint64_t Bytes,
                                          Stream *S) {
  if (!S)
    return gpuMemcpyDtoH(Dev, Dst, Src, Bytes);
  if (&S->device() != &Dev || !Dev.validRange(Src, Bytes))
    return GpuError::InvalidValue;
  std::memcpy(Dst, Dev.memory().data() + Src, Bytes);
  S->enqueue(transferSeconds(Dev.target(), Bytes), "memcpyDtoH");
  return GpuError::Success;
}

GpuError proteus::gpu::gpuMemsetAsync(Device &Dev, DevicePtr Dst,
                                      uint8_t Value, uint64_t Bytes,
                                      Stream *S) {
  if (!S)
    return gpuMemset(Dev, Dst, Value, Bytes);
  if (&S->device() != &Dev || !Dev.validRange(Dst, Bytes))
    return GpuError::InvalidValue;
  std::memset(Dev.memory().data() + Dst, Value, Bytes);
  S->enqueue(transferSeconds(Dev.target(), Bytes) / 2, "memset");
  return GpuError::Success;
}

GpuError proteus::gpu::gpuLaunchKernelAsync(
    Device &Dev, const LoadedKernel &Kernel, Dim3 Grid, Dim3 Block,
    const std::vector<KernelArg> &Args, Stream *S, std::string *Error) {
  if (!S)
    return gpuLaunchKernel(Dev, Kernel, Grid, Block, Args, Error);
  if (&S->device() != &Dev)
    return GpuError::InvalidValue;
  LaunchResult R = launchKernel(Dev, Kernel, Grid, Block, Args);
  if (!R.Ok) {
    if (Error)
      *Error = R.Error;
    return GpuError::LaunchFailure;
  }
  S->enqueue(R.Stats.DurationSec, kernelTraceName(Kernel));
  Dev.addKernelSeconds(R.Stats.DurationSec);
  return GpuError::Success;
}

GpuError proteus::gpu::gpuEventRecord(Device &Dev, Event &Ev, Stream *S) {
  if (S && &S->device() != &Dev)
    return GpuError::InvalidValue;
  Ev.TimeSec = S ? S->tailSeconds() : Dev.defaultStream().tailSeconds();
  Ev.DeviceOrdinal = static_cast<int>(Dev.ordinal());
  return GpuError::Success;
}

GpuError proteus::gpu::gpuStreamWaitEvent(Stream *S, const Event &Ev) {
  if (!S || !Ev.recorded())
    return GpuError::InvalidValue;
  S->waitUntil(Ev.TimeSec);
  return GpuError::Success;
}

GpuError proteus::gpu::gpuEventSynchronize(const Event &Ev) {
  return Ev.recorded() ? GpuError::Success : GpuError::InvalidValue;
}

GpuError proteus::gpu::gpuEventElapsedTime(double *Ms, const Event &Start,
                                           const Event &End) {
  if (!Ms || !Start.recorded() || !End.recorded())
    return GpuError::InvalidValue;
  // Stamps from different devices subtract cleanly — every timeline shares
  // one global simulated-time coordinate — but real runtimes reject such
  // pairs, so count a diagnostic to make accidental cross-device timing
  // queries observable (migration code does this deliberately).
  if (Start.DeviceOrdinal >= 0 && End.DeviceOrdinal >= 0 &&
      Start.DeviceOrdinal != End.DeviceOrdinal)
    metrics::processRegistry().counter("gpu.event_cross_device").add();
  *Ms = (End.TimeSec - Start.TimeSec) * 1e3;
  return GpuError::Success;
}
