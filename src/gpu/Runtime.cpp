//===- Runtime.cpp - HIP/CUDA-like runtime API -----------------------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//

#include "gpu/Runtime.h"

#include "gpu/PerfModel.h"
#include "support/Error.h"

#include <cstring>

using namespace proteus;
using namespace proteus::gpu;

const char *proteus::gpu::gpuErrorName(GpuError E) {
  switch (E) {
  case GpuError::Success:
    return "success";
  case GpuError::OutOfMemory:
    return "out of memory";
  case GpuError::InvalidValue:
    return "invalid value";
  case GpuError::LaunchFailure:
    return "launch failure";
  case GpuError::NotFound:
    return "not found";
  }
  proteus_unreachable("unknown gpu error");
}

GpuError proteus::gpu::gpuMalloc(Device &Dev, DevicePtr *Out,
                                 uint64_t Bytes) {
  if (!Out)
    return GpuError::InvalidValue;
  DevicePtr P = Dev.allocate(Bytes);
  if (!P)
    return GpuError::OutOfMemory;
  *Out = P;
  return GpuError::Success;
}

GpuError proteus::gpu::gpuFree(Device &Dev, DevicePtr P) {
  Dev.free(P);
  return GpuError::Success;
}

GpuError proteus::gpu::gpuMemcpyHtoD(Device &Dev, DevicePtr Dst,
                                     const void *Src, uint64_t Bytes) {
  if (!Dev.validRange(Dst, Bytes))
    return GpuError::InvalidValue;
  std::memcpy(Dev.memory().data() + Dst, Src, Bytes);
  Dev.addSimulatedSeconds(transferSeconds(Dev.target(), Bytes));
  return GpuError::Success;
}

GpuError proteus::gpu::gpuMemcpyDtoH(Device &Dev, void *Dst, DevicePtr Src,
                                     uint64_t Bytes) {
  if (!Dev.validRange(Src, Bytes))
    return GpuError::InvalidValue;
  std::memcpy(Dst, Dev.memory().data() + Src, Bytes);
  Dev.addSimulatedSeconds(transferSeconds(Dev.target(), Bytes));
  return GpuError::Success;
}

GpuError proteus::gpu::gpuMemset(Device &Dev, DevicePtr Dst, uint8_t Value,
                                 uint64_t Bytes) {
  if (!Dev.validRange(Dst, Bytes))
    return GpuError::InvalidValue;
  std::memset(Dev.memory().data() + Dst, Value, Bytes);
  Dev.addSimulatedSeconds(transferSeconds(Dev.target(), Bytes) / 2);
  return GpuError::Success;
}

GpuError proteus::gpu::gpuRegisterVar(Device &Dev, const std::string &Symbol,
                                      uint64_t Bytes,
                                      const std::vector<uint8_t> &Init) {
  return Dev.registerGlobal(Symbol, Bytes, Init) ? GpuError::Success
                                                 : GpuError::OutOfMemory;
}

GpuError proteus::gpu::gpuGetSymbolAddress(Device &Dev, DevicePtr *Out,
                                           const std::string &Symbol) {
  if (!Out)
    return GpuError::InvalidValue;
  DevicePtr P = Dev.getSymbolAddress(Symbol);
  if (!P)
    return GpuError::NotFound;
  *Out = P;
  return GpuError::Success;
}

GpuError proteus::gpu::gpuModuleLoad(Device &Dev, LoadedKernel **Out,
                                     const std::vector<uint8_t> &Object,
                                     std::string *Error) {
  if (!Out)
    return GpuError::InvalidValue;
  LoadedKernel *K = Dev.loadKernel(Object, Error);
  if (!K)
    return GpuError::InvalidValue;
  // Module loading costs simulated time proportional to the binary size
  // (driver upload + setup).
  Dev.addSimulatedSeconds(20e-6 +
                          transferSeconds(Dev.target(), Object.size()));
  *Out = K;
  return GpuError::Success;
}

GpuError proteus::gpu::gpuLaunchKernel(Device &Dev,
                                       const LoadedKernel &Kernel, Dim3 Grid,
                                       Dim3 Block,
                                       const std::vector<KernelArg> &Args,
                                       std::string *Error) {
  LaunchResult R = launchKernel(Dev, Kernel, Grid, Block, Args);
  if (!R.Ok) {
    if (Error)
      *Error = R.Error;
    return GpuError::LaunchFailure;
  }
  return GpuError::Success;
}
