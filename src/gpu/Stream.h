//===- Stream.h - streams and events on the simulated device ----*- C++ -*-===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Streams and events for the simulated GPU — the concurrency substrate of
/// the vendor-runtime facade (hip/cudaStream_t, hip/cudaEvent_t).
///
/// The simulator is *functional-first, timing-after*: an operation's memory
/// effects are applied eagerly, in host enqueue order (which keeps
/// multi-stream runs deterministic and bit-reproducible), while its
/// simulated cost is charged to the owning stream's private timeline.
/// Timelines of different streams — and of different devices — advance
/// independently, so independent work legally overlaps and the device's
/// reported simulated time is the *makespan* (max over stream tails), not
/// the sum of durations. Ordering edges are explicit:
///
///   * same stream: FIFO — each op starts at the stream's current tail;
///   * legacy sync API (gpuMemcpy*/gpuLaunchKernel/...): full barrier —
///     the op starts at the device makespan, like the CUDA legacy default
///     stream;
///   * events: gpuEventRecord stamps a stream's tail; gpuStreamWaitEvent
///     advances the waiting stream's tail to at least that stamp — the
///     happens-before edge of the timeline model.
///
/// When tracing is active, every charged op is also recorded as a span on a
/// synthetic per-lane track (tid = device:stream, see trace::laneTid), so
/// chrome://tracing renders overlapping launches as parallel lanes.
///
//===----------------------------------------------------------------------===//

#ifndef PROTEUS_GPU_STREAM_H
#define PROTEUS_GPU_STREAM_H

#include <cstdint>

namespace proteus {
namespace gpu {

class Device;

/// A marker on a stream's timeline (hip/cudaEvent_t). Plain value type: the
/// host owns it; gpuEventRecord stamps it with the recording stream's tail.
struct Event {
  /// Simulated time at which all work preceding the record completes;
  /// negative until recorded.
  double TimeSec = -1.0;

  /// Ordinal of the device whose stream recorded this event; -1 until
  /// recorded. Because every stream on every device shares one global
  /// simulated-time coordinate, cross-device event arithmetic stays
  /// well-defined — the ordinal exists so gpuEventElapsedTime can count a
  /// diagnostic when a query pairs stamps from different devices.
  int DeviceOrdinal = -1;

  bool recorded() const { return TimeSec >= 0.0; }
};

/// One in-order work queue on a device (hip/cudaStream_t). Owns a private
/// simulated timeline: Tail is the time at which everything enqueued so far
/// has completed. Streams are created and owned by their Device; stream 0
/// is the device's default (legacy-synchronous) stream.
///
/// Thread safety: a Stream is as thread-oblivious as its Device. Callers
/// that share a device across threads must serialize operations against it
/// (the JIT runtime holds its per-device lock around every enqueue).
class Stream {
public:
  unsigned id() const { return Id; }
  Device &device() { return Dev; }

  /// Simulated completion time of all work enqueued so far.
  double tailSeconds() const { return Tail; }

  /// Charges an operation of \p DurSec to this stream's timeline (FIFO:
  /// starts at the current tail) and records it on the stream's trace lane.
  /// Returns the op's start time.
  double enqueue(double DurSec, const char *TraceName);

  /// Advances the tail to at least \p TimeSec — the receiving end of an
  /// event/ordering edge. Never moves the tail backwards. Out of line: it
  /// publishes the new tail to the owning device's load gauge.
  void waitUntil(double TimeSec);

  void resetTimeline() { Tail = 0.0; }

private:
  friend class Device;
  Stream(Device &Dev, unsigned Id) : Dev(Dev), Id(Id) {}

  Stream(const Stream &) = delete;
  Stream &operator=(const Stream &) = delete;

  Device &Dev;
  unsigned Id;
  double Tail = 0.0;
};

} // namespace gpu
} // namespace proteus

#endif // PROTEUS_GPU_STREAM_H
