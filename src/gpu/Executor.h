//===- Executor.h - functional GPU execution --------------------*- C++ -*-===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes loaded machine code over a launch grid against real device
/// memory (functional simulation: every thread runs, results are exact) and
/// produces LaunchStats. Kernel duration comes from the analytic performance
/// model in PerfModel.h, driven by the executed instruction mix, the L2
/// cache simulation, and register-pressure-derived occupancy.
///
//===----------------------------------------------------------------------===//

#ifndef PROTEUS_GPU_EXECUTOR_H
#define PROTEUS_GPU_EXECUTOR_H

#include "gpu/Device.h"

#include <cstdint>
#include <string>

namespace proteus {
namespace gpu {

/// 3-D launch extent.
struct Dim3 {
  uint32_t X = 1, Y = 1, Z = 1;

  uint64_t count() const {
    return static_cast<uint64_t>(X) * Y * Z;
  }
};

/// A launch argument: raw 64-bit payload (OpSemantics boxing).
struct KernelArg {
  uint64_t Bits = 0;
};

/// Result of a kernel launch.
struct LaunchResult {
  bool Ok = false;
  std::string Error;
  LaunchStats Stats;
};

/// Runs \p Kernel over the grid. Fails cleanly on out-of-bounds accesses,
/// bad argument counts, or runaway execution (per-thread step limit).
LaunchResult launchKernel(Device &Dev, const LoadedKernel &Kernel,
                          Dim3 Grid, Dim3 Block,
                          const std::vector<KernelArg> &Args,
                          uint64_t MaxStepsPerThread = 50'000'000);

} // namespace gpu
} // namespace proteus

#endif // PROTEUS_GPU_EXECUTOR_H
