//===- Executor.cpp - functional GPU execution -----------------------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Per-thread interpretation of allocated machine code. The instruction
// stream is flattened for dispatch speed; semantics come from
// ir/OpSemantics.h so the executor agrees bit-for-bit with the reference IR
// interpreter and the constant folder. Threads run sequentially (the
// simulation is deterministic); atomics therefore serialize naturally.
//
// Address map: [0, MemSize) is device global memory; addresses at or above
// LocalBase are thread-private scratch from allocas, resolved per thread.
//
//===----------------------------------------------------------------------===//

#include "gpu/Executor.h"

#include "gpu/PerfModel.h"
#include "ir/Context.h"
#include "ir/OpSemantics.h"
#include "support/StringUtils.h"

#include <cstring>

using namespace proteus;
using namespace proteus::gpu;
using namespace proteus::mcode;
using pir::Type;

namespace {

constexpr uint64_t LocalBase = 1ull << 40;

/// Flattened instruction stream: block -> first instruction index.
struct FlatCode {
  std::vector<MachineInstr> Instrs;
  std::vector<uint32_t> BlockStart;

  explicit FlatCode(const MachineFunction &MF) {
    for (const MachineBlock &MB : MF.Blocks) {
      BlockStart.push_back(static_cast<uint32_t>(Instrs.size()));
      Instrs.insert(Instrs.end(), MB.Instrs.begin(), MB.Instrs.end());
    }
  }
};

/// Maps a serialized type tag back to a Type singleton for the shared
/// OpSemantics evaluators (lazily constructed; types are stateless).
pir::Type *typeForTag(Type::Kind K) {
  static pir::Context TypeContext;
  return TypeContext.getType(K);
}

/// Width-aware memory access helpers.
inline unsigned typeSize(Type::Kind K) {
  switch (K) {
  case Type::Kind::I1:
    return 1;
  case Type::Kind::I32:
  case Type::Kind::F32:
    return 4;
  default:
    return 8;
  }
}

} // namespace

LaunchResult proteus::gpu::launchKernel(Device &Dev,
                                        const LoadedKernel &Kernel,
                                        Dim3 Grid, Dim3 Block,
                                        const std::vector<KernelArg> &Args,
                                        uint64_t MaxStepsPerThread) {
  LaunchResult Out;
  const MachineFunction &MF = Kernel.MF;
  if (!MF.Allocated) {
    Out.Error = "kernel is not register-allocated";
    return Out;
  }
  if (Args.size() != MF.Params.size()) {
    Out.Error = formatString("argument count mismatch: got %zu, kernel %s "
                             "takes %zu",
                             Args.size(), MF.Name.c_str(), MF.Params.size());
    return Out;
  }
  if (Grid.count() == 0 || Block.count() == 0) {
    Out.Error = "empty grid or block";
    return Out;
  }

  FlatCode Code(MF);
  LaunchStats &S = Out.Stats;
  S.Kernel = MF.Name;
  S.Blocks = Grid.count();
  S.ThreadsPerBlock = Block.count();
  S.RegsUsed = MF.NumRegs;
  S.SpillSlots = MF.NumSpillSlots;
  S.LaunchBoundsThreads = MF.LaunchBoundsThreads;

  std::vector<uint8_t> &Mem = Dev.memory();
  L2Cache &L2 = Dev.l2();

  std::vector<uint64_t> Regs(MF.NumRegs, 0);
  std::vector<uint64_t> Spill(MF.NumSpillSlots, 0);
  std::vector<uint8_t> Local(MF.LocalBytes, 0);

  // Scratch (spill + alloca) L2 pollution: give each thread distinct
  // synthetic addresses above the global range so heavy spilling evicts
  // useful lines, as it does on real hardware.
  const uint64_t ScratchL2Base = Mem.size();
  const uint64_t PerThreadScratch =
      static_cast<uint64_t>(MF.NumSpillSlots) * 8 + MF.LocalBytes + 64;

  auto resolve = [&](uint64_t Addr, unsigned Size,
                     uint8_t *&P) -> bool {
    if (Addr >= LocalBase) {
      uint64_t Off = Addr - LocalBase;
      if (Off + Size > Local.size())
        return false;
      P = Local.data() + Off;
      return true;
    }
    if (!Dev.validRange(Addr, Size))
      return false;
    P = Mem.data() + Addr;
    return true;
  };

  const uint64_t BlocksTotal = Grid.count();
  const uint64_t ThreadsPerBlk = Block.count();
  uint64_t ThreadLinear = 0;

  for (uint64_t Blk = 0; Blk != BlocksTotal && Out.Error.empty(); ++Blk) {
    uint32_t Ctaid[3] = {
        static_cast<uint32_t>(Blk % Grid.X),
        static_cast<uint32_t>(Blk / Grid.X % Grid.Y),
        static_cast<uint32_t>(Blk / (static_cast<uint64_t>(Grid.X) * Grid.Y))};
    for (uint64_t T = 0; T != ThreadsPerBlk && Out.Error.empty();
         ++T, ++ThreadLinear) {
      uint32_t Tid[3] = {
          static_cast<uint32_t>(T % Block.X),
          static_cast<uint32_t>(T / Block.X % Block.Y),
          static_cast<uint32_t>(T /
                                (static_cast<uint64_t>(Block.X) * Block.Y))};

      // Initialize registers/spill slots for this thread.
      std::fill(Regs.begin(), Regs.end(), 0);
      if (!Spill.empty())
        std::fill(Spill.begin(), Spill.end(), 0);
      if (!Local.empty())
        std::fill(Local.begin(), Local.end(), 0);
      for (size_t A = 0; A != Args.size(); ++A) {
        const MachineParam &P = MF.Params[A];
        if (P.ArgReg != NoReg)
          Regs[P.ArgReg] = Args[A].Bits;
        else if (P.SpillSlot >= 0)
          Spill[static_cast<size_t>(P.SpillSlot)] = Args[A].Bits;
      }

      const uint64_t ThreadScratchBase =
          ScratchL2Base + ThreadLinear * PerThreadScratch;

      uint64_t Steps = 0;
      uint32_t PC = Code.BlockStart.empty() ? 0 : Code.BlockStart[0];
      bool Running = true;
      while (Running) {
        if (PC >= Code.Instrs.size()) {
          Out.Error = "PC ran off the end of the kernel";
          break;
        }
        if (++Steps > MaxStepsPerThread) {
          Out.Error = "per-thread step limit exceeded in " + MF.Name;
          break;
        }
        const MachineInstr &MI = Code.Instrs[PC++];
        if (MI.Op != MOp::MovImm)
          ++S.TotalInstrs;
        switch (MI.Op) {
        case MOp::Nop:
          break;
        case MOp::MovRR:
          Regs[MI.Dst] = Regs[MI.Src1];
          MI.Uniform ? ++S.SALUInsts : ++S.VALUInsts;
          break;
        case MOp::MovImm:
          // Immediate materialization is folded into instruction encodings
          // (inline literals / constant banks) on both real ISAs: free.
          Regs[MI.Dst] = static_cast<uint64_t>(MI.Imm);
          break;
        case MOp::Binary: {
          pir::ValueKind K = static_cast<pir::ValueKind>(MI.Aux);
          Regs[MI.Dst] = pir::sem::evalBinary(
              K, typeForTag(MI.TypeTag), Regs[MI.Src1], Regs[MI.Src2]);
          MI.Uniform ? ++S.SALUInsts : ++S.VALUInsts;
          if (K == pir::ValueKind::Pow)
            ++S.TranscendentalInsts;
          else if (K == pir::ValueKind::SDiv || K == pir::ValueKind::UDiv ||
                   K == pir::ValueKind::SRem || K == pir::ValueKind::URem ||
                   K == pir::ValueKind::FDiv)
            ++S.DivInsts;
          break;
        }
        case MOp::Unary: {
          pir::ValueKind K = static_cast<pir::ValueKind>(MI.Aux);
          Regs[MI.Dst] = pir::sem::evalUnary(K, typeForTag(MI.TypeTag),
                                             Regs[MI.Src1]);
          MI.Uniform ? ++S.SALUInsts : ++S.VALUInsts;
          if (K != pir::ValueKind::FNeg && K != pir::ValueKind::Fabs)
            ++S.TranscendentalInsts;
          break;
        }
        case MOp::Cast:
          Regs[MI.Dst] = pir::sem::evalCast(
              static_cast<pir::ValueKind>(MI.Aux), typeForTag(MI.TypeTag),
              typeForTag(static_cast<Type::Kind>(MI.Imm2)), Regs[MI.Src1]);
          MI.Uniform ? ++S.SALUInsts : ++S.VALUInsts;
          break;
        case MOp::ICmp:
          Regs[MI.Dst] = pir::sem::evalICmp(
                             static_cast<pir::ICmpPred>(MI.Aux),
                             typeForTag(MI.TypeTag), Regs[MI.Src1],
                             Regs[MI.Src2])
                             ? 1
                             : 0;
          MI.Uniform ? ++S.SALUInsts : ++S.VALUInsts;
          break;
        case MOp::FCmp:
          Regs[MI.Dst] = pir::sem::evalFCmp(
                             static_cast<pir::FCmpPred>(MI.Aux),
                             typeForTag(MI.TypeTag), Regs[MI.Src1],
                             Regs[MI.Src2])
                             ? 1
                             : 0;
          MI.Uniform ? ++S.SALUInsts : ++S.VALUInsts;
          break;
        case MOp::Sel:
          Regs[MI.Dst] =
              (Regs[MI.Src1] & 1) ? Regs[MI.Src2] : Regs[MI.Src3];
          MI.Uniform ? ++S.SALUInsts : ++S.VALUInsts;
          break;
        case MOp::Ld: {
          unsigned Size = typeSize(MI.TypeTag);
          uint8_t *P = nullptr;
          uint64_t Addr = Regs[MI.Src1];
          if (!resolve(Addr, Size, P)) {
            Out.Error = formatString("load out of bounds at 0x%llx in %s",
                                     static_cast<unsigned long long>(Addr),
                                     MF.Name.c_str());
            Running = false;
            break;
          }
          uint64_t Bits = 0;
          std::memcpy(&Bits, P, Size);
          Regs[MI.Dst] = Bits;
          ++S.MemLoads;
          bool Hit = L2.access(Addr >= LocalBase
                                   ? ThreadScratchBase + (Addr - LocalBase)
                                   : Addr);
          Hit ? ++S.L2Hits : ++S.L2Misses;
          break;
        }
        case MOp::St: {
          unsigned Size = typeSize(MI.TypeTag);
          uint8_t *P = nullptr;
          uint64_t Addr = Regs[MI.Src2];
          if (!resolve(Addr, Size, P)) {
            Out.Error = formatString("store out of bounds at 0x%llx in %s",
                                     static_cast<unsigned long long>(Addr),
                                     MF.Name.c_str());
            Running = false;
            break;
          }
          std::memcpy(P, &Regs[MI.Src1], Size);
          ++S.MemStores;
          bool Hit = L2.access(Addr >= LocalBase
                                   ? ThreadScratchBase + (Addr - LocalBase)
                                   : Addr);
          Hit ? ++S.L2Hits : ++S.L2Misses;
          break;
        }
        case MOp::PtrAdd: {
          int64_t Idx = pir::sem::signExtend(typeForTag(MI.TypeTag),
                                             Regs[MI.Src2]);
          Regs[MI.Dst] =
              Regs[MI.Src1] + static_cast<uint64_t>(Idx * MI.Imm);
          MI.Uniform ? ++S.SALUInsts : ++S.VALUInsts;
          break;
        }
        case MOp::AtomicAdd: {
          unsigned Size = typeSize(MI.TypeTag);
          uint8_t *P = nullptr;
          uint64_t Addr = Regs[MI.Src1];
          if (!resolve(Addr, Size, P)) {
            Out.Error = "atomic out of bounds in " + MF.Name;
            Running = false;
            break;
          }
          uint64_t Old = 0;
          std::memcpy(&Old, P, Size);
          pir::Type *Ty = typeForTag(MI.TypeTag);
          uint64_t Sum = Ty->isFloatingPoint()
                             ? pir::sem::evalBinary(pir::ValueKind::FAdd, Ty,
                                                    Old, Regs[MI.Src2])
                             : pir::sem::evalBinary(pir::ValueKind::Add, Ty,
                                                    Old, Regs[MI.Src2]);
          std::memcpy(P, &Sum, Size);
          Regs[MI.Dst] = Old;
          ++S.Atomics;
          bool Hit = L2.access(Addr);
          Hit ? ++S.L2Hits : ++S.L2Misses;
          break;
        }
        case MOp::LdSpill:
          Regs[MI.Dst] = Spill[static_cast<size_t>(MI.Imm)];
          ++S.SpillLoads;
          break;
        case MOp::StSpill:
          Spill[static_cast<size_t>(MI.Imm)] = Regs[MI.Src1];
          ++S.SpillStores;
          break;
        case MOp::ReadSpecial: {
          uint32_t V = 0;
          switch (static_cast<SpecialReg>(MI.Aux)) {
          case SpecialReg::TidX:
            V = Tid[0];
            break;
          case SpecialReg::TidY:
            V = Tid[1];
            break;
          case SpecialReg::TidZ:
            V = Tid[2];
            break;
          case SpecialReg::CtaidX:
            V = Ctaid[0];
            break;
          case SpecialReg::CtaidY:
            V = Ctaid[1];
            break;
          case SpecialReg::CtaidZ:
            V = Ctaid[2];
            break;
          case SpecialReg::NtidX:
            V = Block.X;
            break;
          case SpecialReg::NtidY:
            V = Block.Y;
            break;
          case SpecialReg::NtidZ:
            V = Block.Z;
            break;
          case SpecialReg::NctaidX:
            V = Grid.X;
            break;
          case SpecialReg::NctaidY:
            V = Grid.Y;
            break;
          case SpecialReg::NctaidZ:
            V = Grid.Z;
            break;
          }
          Regs[MI.Dst] = V;
          MI.Uniform ? ++S.SALUInsts : ++S.VALUInsts;
          break;
        }
        case MOp::Bar:
          // Thread-sequential functional simulation: a barrier only costs
          // time (allocas are thread-private, so no cross-thread data flows
          // through it).
          ++S.Barriers;
          break;
        case MOp::Br:
          PC = Code.BlockStart[static_cast<size_t>(MI.Imm)];
          ++S.Branches;
          break;
        case MOp::CondBr:
          PC = (Regs[MI.Src1] & 1)
                   ? Code.BlockStart[static_cast<size_t>(MI.Imm)]
                   : Code.BlockStart[static_cast<uint32_t>(MI.Imm2)];
          ++S.Branches;
          break;
        case MOp::Ret:
          Running = false;
          break;
        case MOp::Alloca:
          Regs[MI.Dst] = LocalBase + static_cast<uint64_t>(MI.Imm);
          MI.Uniform ? ++S.SALUInsts : ++S.VALUInsts;
          break;
        }
      }
    }
  }

  if (!Out.Error.empty())
    return Out;

  // The executor computes the launch's cost but does not charge any stream
  // timeline: the Runtime.h wrappers decide which timeline pays (serial
  // barrier for gpuLaunchKernel, the target stream for the Async variant).
  applyPerfModel(Dev.target(), S);
  Dev.LastLaunch = S;
  auto It = Dev.Profile.find(S.Kernel);
  if (It == Dev.Profile.end()) {
    Dev.Profile[S.Kernel] = S;
  } else {
    It->second.accumulate(S);
  }
  Out.Ok = true;
  return Out;
}
