//===- DeviceManager.cpp - pool of simulated devices -----------------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//

#include "gpu/DeviceManager.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

using namespace proteus;
using namespace proteus::gpu;

namespace {

void emitConfigWarning(std::vector<std::string> *Warnings, std::string Msg) {
  if (Warnings)
    Warnings->push_back(std::move(Msg));
  else
    std::fprintf(stderr, "proteus: warning: %s\n", Msg.c_str());
}

/// Strict unsigned parse in [Lo, Hi]; returns false on any malformation.
bool parseBounded(const std::string &S, unsigned long Lo, unsigned long Hi,
                  unsigned *Out) {
  if (S.empty() || S.find_first_not_of("0123456789") != std::string::npos)
    return false;
  unsigned long N = std::strtoul(S.c_str(), nullptr, 10);
  if (N < Lo || N > Hi)
    return false;
  *Out = static_cast<unsigned>(N);
  return true;
}

} // namespace

DeviceManager::Config
DeviceManager::configFromEnvironment(std::vector<std::string> *Warnings) {
  Config C;
  if (const char *N = std::getenv("PROTEUS_NUM_DEVICES")) {
    if (!parseBounded(N, 1, 64, &C.NumDevices))
      emitConfigWarning(Warnings,
                        "ignoring invalid PROTEUS_NUM_DEVICES value '" +
                            std::string(N) +
                            "' (expected an integer in [1, 64])");
  }
  if (const char *S = std::getenv("PROTEUS_DEFAULT_STREAMS")) {
    if (!parseBounded(S, 1, 256, &C.StreamsPerDevice))
      emitConfigWarning(Warnings,
                        "ignoring invalid PROTEUS_DEFAULT_STREAMS value '" +
                            std::string(S) +
                            "' (expected an integer in [1, 256])");
  }
  if (const char *A = std::getenv("PROTEUS_DEVICE_ARCHS")) {
    std::vector<GpuArch> Archs;
    bool Ok = true;
    std::string Rest = A;
    while (!Rest.empty()) {
      size_t Comma = Rest.find(',');
      std::string Tok = Rest.substr(0, Comma);
      Rest = Comma == std::string::npos ? "" : Rest.substr(Comma + 1);
      if (Tok == gpuArchName(GpuArch::AmdGcnSim))
        Archs.push_back(GpuArch::AmdGcnSim);
      else if (Tok == gpuArchName(GpuArch::NvPtxSim))
        Archs.push_back(GpuArch::NvPtxSim);
      else {
        Ok = false;
        break;
      }
    }
    if (Ok && !Archs.empty())
      C.Archs = std::move(Archs);
    else
      emitConfigWarning(
          Warnings, "ignoring invalid PROTEUS_DEVICE_ARCHS value '" +
                        std::string(A) +
                        "' (expected a comma-separated list of "
                        "amdgcn-sim|nvptx-sim)");
  }
  return C;
}

DeviceManager::DeviceManager(const Config &C) {
  std::vector<GpuArch> Archs =
      C.Archs.empty() ? std::vector<GpuArch>{GpuArch::AmdGcnSim} : C.Archs;
  unsigned N = C.NumDevices ? C.NumDevices : 1;
  for (unsigned I = 0; I != N; ++I) {
    const TargetInfo &TI = getTarget(Archs[I % Archs.size()]);
    Devices.emplace_back(new Device(TI, C.MemoryBytesPerDevice));
    Devices.back()->setOrdinal(I);
    for (unsigned S = 1; S < C.StreamsPerDevice; ++S)
      Devices.back()->createStream();
  }
}

double DeviceManager::totalSimulatedSeconds() const {
  double Sum = 0.0;
  for (const auto &D : Devices)
    Sum += D->simulatedSeconds();
  return Sum;
}

double DeviceManager::makespanSeconds() const {
  double Max = 0.0;
  for (const auto &D : Devices)
    Max = std::max(Max, D->simulatedSeconds());
  return Max;
}
