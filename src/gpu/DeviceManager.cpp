//===- DeviceManager.cpp - pool of simulated devices -----------------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//

#include "gpu/DeviceManager.h"

#include "support/Metrics.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

using namespace proteus;
using namespace proteus::gpu;

namespace {

void emitConfigWarning(std::vector<std::string> *Warnings, std::string Msg) {
  metrics::processRegistry().counter("config.errors").add();
  if (Warnings)
    Warnings->push_back(std::move(Msg));
  else
    std::fprintf(stderr, "proteus: warning: %s\n", Msg.c_str());
}

/// Strict unsigned parse in [Lo, Hi]; returns false on any malformation.
bool parseBounded(const std::string &S, unsigned long Lo, unsigned long Hi,
                  unsigned *Out) {
  if (S.empty() || S.find_first_not_of("0123456789") != std::string::npos)
    return false;
  unsigned long N = std::strtoul(S.c_str(), nullptr, 10);
  if (N < Lo || N > Hi)
    return false;
  *Out = static_cast<unsigned>(N);
  return true;
}

} // namespace

DeviceManager::Config
DeviceManager::configFromEnvironment(std::vector<std::string> *Warnings) {
  Config C;
  if (const char *N = std::getenv("PROTEUS_NUM_DEVICES")) {
    if (!parseBounded(N, 1, 64, &C.NumDevices))
      emitConfigWarning(Warnings,
                        "ignoring invalid PROTEUS_NUM_DEVICES value '" +
                            std::string(N) +
                            "' (expected an integer in [1, 64])");
  }
  if (const char *S = std::getenv("PROTEUS_DEFAULT_STREAMS")) {
    if (!parseBounded(S, 1, 256, &C.StreamsPerDevice))
      emitConfigWarning(Warnings,
                        "ignoring invalid PROTEUS_DEFAULT_STREAMS value '" +
                            std::string(S) +
                            "' (expected an integer in [1, 256])");
  }
  if (const char *A = std::getenv("PROTEUS_DEVICE_ARCHS")) {
    // Strict grammar: <arch> ("," <arch>)* with no empty segments — a
    // trailing, leading, or doubled comma rejects the whole value, as does
    // an unknown architecture name. Splitting on every comma (rather than
    // iterating while the remainder is non-empty) is what makes a trailing
    // comma's empty final segment visible.
    std::vector<GpuArch> Archs;
    std::string BadSegment;
    bool Ok = true;
    const std::string Str = A;
    size_t Pos = 0;
    while (true) {
      size_t Comma = Str.find(',', Pos);
      std::string Tok = Str.substr(
          Pos, Comma == std::string::npos ? std::string::npos : Comma - Pos);
      if (Tok == gpuArchName(GpuArch::AmdGcnSim))
        Archs.push_back(GpuArch::AmdGcnSim);
      else if (Tok == gpuArchName(GpuArch::NvPtxSim))
        Archs.push_back(GpuArch::NvPtxSim);
      else {
        Ok = false;
        BadSegment = Tok;
        break;
      }
      if (Comma == std::string::npos)
        break;
      Pos = Comma + 1;
    }
    if (Ok)
      C.Archs = std::move(Archs);
    else
      emitConfigWarning(
          Warnings,
          "ignoring invalid PROTEUS_DEVICE_ARCHS value '" + Str + "': " +
              (BadSegment.empty()
                   ? std::string("empty segment")
                   : "unknown architecture '" + BadSegment + "'") +
              " (expected amdgcn-sim|nvptx-sim, comma-separated, no empty "
              "segments)");
  }
  return C;
}

DeviceManager::DeviceManager(const Config &C) {
  std::vector<GpuArch> Archs =
      C.Archs.empty() ? std::vector<GpuArch>{GpuArch::AmdGcnSim} : C.Archs;
  unsigned N = C.NumDevices ? C.NumDevices : 1;
  for (unsigned I = 0; I != N; ++I) {
    const TargetInfo &TI = getTarget(Archs[I % Archs.size()]);
    Devices.emplace_back(new Device(TI, C.MemoryBytesPerDevice));
    Devices.back()->setOrdinal(I);
    for (unsigned S = 1; S < C.StreamsPerDevice; ++S)
      Devices.back()->createStream();
  }
}

double DeviceManager::totalSimulatedSeconds() const {
  double Sum = 0.0;
  for (const auto &D : Devices)
    Sum += D->simulatedSeconds();
  return Sum;
}

double DeviceManager::makespanSeconds() const {
  double Max = 0.0;
  for (const auto &D : Devices)
    Max = std::max(Max, D->simulatedSeconds());
  return Max;
}
