//===- PerfModel.cpp - analytic GPU performance model ---------------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//

#include "gpu/PerfModel.h"

#include <algorithm>
#include <cmath>

using namespace proteus;
using namespace proteus::gpu;

void proteus::gpu::applyPerfModel(const TargetInfo &Target,
                                  LaunchStats &Stats,
                                  const CostModel &Costs) {
  // A degenerate launch that executed no instructions (an empty kernel, or
  // a body guarded off for every thread) pays only the launch latency.
  // Early-out before any of the ratio derivations below so none of them
  // can divide by a zero instruction/cycle count.
  if (Stats.TotalInstrs == 0 && Stats.SpillLoads == 0 &&
      Stats.SpillStores == 0) {
    const unsigned Regs = std::max(1u, Stats.RegsUsed);
    const unsigned ResidentWaves = std::min(
        {Target.MaxWavesPerCU,
         std::max(1u, Target.RegFilePerCU / (Regs * Target.WaveSize)),
         std::max(1u, Target.MaxThreadsPerCU / Target.WaveSize)});
    Stats.Occupancy =
        static_cast<double>(ResidentWaves) / Target.MaxWavesPerCU;
    Stats.DurationSec = 4e-6; // launch latency only (matches below)
    Stats.IPC = 0.0;
    Stats.VALUBusyPct = 0.0;
    Stats.StallPct = 0.0;
    return;
  }
  // --- Occupancy-dependent L2 behaviour of scratch (spill) traffic ---------
  // The functional simulation runs threads sequentially, which would give
  // per-thread scratch artificially perfect locality; on hardware, tens of
  // thousands of in-flight threads stream their scratch through the shared
  // L2 concurrently. Model that analytically: the resident scratch working
  // set is (threads in flight) x (spill slots + local bytes); once it
  // approaches L2 capacity, scratch accesses miss and evict data lines.
  const uint64_t SpillOps = Stats.SpillLoads + Stats.SpillStores;
  const unsigned RegsForOcc = std::max(1u, Stats.RegsUsed);
  const unsigned WavesResident0 = std::min(
      {Target.MaxWavesPerCU,
       std::max(1u, Target.RegFilePerCU / (RegsForOcc * Target.WaveSize)),
       std::max(1u, Target.MaxThreadsPerCU / Target.WaveSize)});
  const double ThreadsInFlight = static_cast<double>(WavesResident0) *
                                 Target.WaveSize * Target.NumCUs;
  const double ScratchBytes =
      ThreadsInFlight *
      (static_cast<double>(Stats.SpillSlots) * 8.0);
  const double Pollution =
      SpillOps ? std::min(1.0, ScratchBytes / static_cast<double>(
                                                  Target.L2Bytes))
               : 0.0;

  // --- Aggregate issue cycles over all threads ----------------------------
  const uint64_t AluOps = Stats.VALUInsts + Stats.SALUInsts;
  // Scratch traffic evicts data lines: degrade the simulated data hit ratio
  // proportionally to the pollution and the share of scratch traffic.
  const uint64_t MemOps = Stats.MemLoads + Stats.MemStores;
  const double ScratchShare =
      (SpillOps + MemOps)
          ? static_cast<double>(SpillOps) /
                static_cast<double>(SpillOps + MemOps)
          : 0.0;
  const double HitRatio =
      Stats.l2HitRatio() * (1.0 - 0.15 * Pollution * ScratchShare);
  const double MemCycles =
      static_cast<double>(MemOps) *
      (HitRatio * Costs.MemL2Hit + (1.0 - HitRatio) * Costs.MemL2Miss);
  const double SpillCost =
      Costs.SpillBase + Pollution * Costs.SpillPollutionExtra;
  const double SpillCycles = static_cast<double>(SpillOps) * SpillCost;
  // Report the blended hit ratio (what rocprof/nvprof would show); scratch
  // accesses hit in proportion to how little they pollute.
  if (SpillOps + MemOps) {
    double SpillHitRatio = 1.0 - 0.5 * Pollution;
    double Blended = (HitRatio * static_cast<double>(MemOps) +
                      SpillHitRatio * static_cast<double>(SpillOps)) /
                     static_cast<double>(SpillOps + MemOps);
    uint64_t Accesses = SpillOps + MemOps;
    Stats.L2Hits = static_cast<uint64_t>(Blended *
                                         static_cast<double>(Accesses));
    Stats.L2Misses = Accesses - Stats.L2Hits;
  }
  const double AluCycles = static_cast<double>(AluOps) * Costs.Alu +
                           static_cast<double>(Stats.TranscendentalInsts) *
                               (Costs.Transcendental - Costs.Alu) +
                           static_cast<double>(Stats.DivInsts) *
                               (Costs.Divide - Costs.Alu);
  const double OtherCycles =
      static_cast<double>(Stats.Branches) * Costs.Branch +
      static_cast<double>(Stats.Atomics) * Costs.Atomic +
      static_cast<double>(Stats.Barriers) * Costs.Barrier;
  const double ThreadCycles =
      AluCycles + MemCycles + SpillCycles + OtherCycles;

  // --- Occupancy from register pressure -----------------------------------
  const unsigned Regs = std::max(1u, Stats.RegsUsed);
  const unsigned WaveRegs = Regs * Target.WaveSize;
  unsigned WavesByRegs = std::max(1u, Target.RegFilePerCU / WaveRegs);
  unsigned WavesByThreads =
      std::max(1u, Target.MaxThreadsPerCU / Target.WaveSize);
  unsigned ResidentWaves =
      std::min({Target.MaxWavesPerCU, WavesByRegs, WavesByThreads});
  // A launch smaller than the machine cannot fill it.
  const uint64_t TotalThreads = std::max<uint64_t>(1, Stats.totalThreads());
  const double WavesInFlight = std::ceil(
      static_cast<double>(TotalThreads) /
      static_cast<double>(Target.WaveSize * Target.NumCUs));
  double EffectiveWaves =
      std::min<double>(ResidentWaves, std::max(1.0, WavesInFlight));
  Stats.Occupancy =
      static_cast<double>(ResidentWaves) / Target.MaxWavesPerCU;

  // --- Latency hiding --------------------------------------------------------
  // Memory- and spill-bound kernels need more resident waves to keep the
  // lanes busy. K expresses how many waves are needed for full utilization.
  const double MemFraction =
      ThreadCycles > 0 ? (MemCycles + SpillCycles) / ThreadCycles : 0.0;
  const double K = 1.0 + 24.0 * MemFraction;
  const double Utilization = EffectiveWaves / (EffectiveWaves + K);

  // --- Duration ----------------------------------------------------------------
  const double LaneThroughput = static_cast<double>(Target.NumCUs) *
                                static_cast<double>(Target.WaveSize) *
                                Utilization;
  const double Cycles = ThreadCycles / std::max(1.0, LaneThroughput);
  const double LaunchLatency = 4e-6; // driver/runtime launch cost
  Stats.DurationSec = Cycles / (Target.ClockGHz * 1e9) + LaunchLatency;

  // --- Derived counters -----------------------------------------------------
  const double DurationCycles =
      std::max(1.0, (Stats.DurationSec - LaunchLatency) *
                        Target.ClockGHz * 1e9);
  Stats.IPC = static_cast<double>(Stats.TotalInstrs) /
              (DurationCycles * Target.NumCUs);
  Stats.VALUBusyPct =
      ThreadCycles > 0
          ? 100.0 * (static_cast<double>(Stats.VALUInsts) * Costs.Alu +
                     static_cast<double>(Stats.TranscendentalInsts) *
                         (Costs.Transcendental - Costs.Alu)) /
                ThreadCycles * Utilization
          : 0.0;
  Stats.StallPct = 100.0 * MemFraction * (1.0 - Utilization);
}

double proteus::gpu::transferSeconds(const TargetInfo &Target,
                                     uint64_t Bytes) {
  const double Latency = 10e-6; // PCIe/IF hop
  return Latency +
         static_cast<double>(Bytes) / (Target.MemBandwidthGBs * 1e9);
}
