//===- PerfModel.h - analytic GPU performance model -------------*- C++ -*-===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Converts an executed instruction mix into simulated kernel duration.
/// The model is deliberately simple but captures the mechanisms the paper's
/// results rest on:
///
///  * fewer dynamic instructions (runtime constant folding) => fewer issue
///    cycles => shorter kernels;
///  * spill traffic is expensive per access and pollutes the L2 model;
///  * register usage bounds resident waves per CU; occupancy controls how
///    much memory latency is hidden, so memory-heavy kernels at low
///    occupancy stall (the launch-bounds effect on AMD).
///
//===----------------------------------------------------------------------===//

#ifndef PROTEUS_GPU_PERFMODEL_H
#define PROTEUS_GPU_PERFMODEL_H

#include "codegen/Target.h"
#include "gpu/LaunchStats.h"

namespace proteus {
namespace gpu {

/// Per-access/issue cycle costs (identical across targets; the targets
/// differ in geometry, clock and allocator behaviour instead).
struct CostModel {
  double Alu = 1.0;
  double Transcendental = 8.0;
  double Divide = 4.0;
  double MemL2Hit = 24.0;
  double MemL2Miss = 160.0;
  /// Scratch (spill) access base cost — register reloads mostly hit the
  /// near cache levels...
  double SpillBase = 0.8;
  /// ...but when the resident scratch working set saturates the L2, each
  /// access pays up to this surcharge and data lines get evicted.
  double SpillPollutionExtra = 1.0;
  double Atomic = 80.0;
  double Branch = 2.0;
  double Barrier = 16.0;
};

/// Fills the derived fields of \p Stats (Occupancy, DurationSec, IPC,
/// VALUBusyPct, StallPct) from its raw counters.
void applyPerfModel(const TargetInfo &Target, LaunchStats &Stats,
                    const CostModel &Costs = CostModel());

/// Simulated duration of a host<->device copy of \p Bytes.
double transferSeconds(const TargetInfo &Target, uint64_t Bytes);

} // namespace gpu
} // namespace proteus

#endif // PROTEUS_GPU_PERFMODEL_H
