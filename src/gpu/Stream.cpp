//===- Stream.cpp - streams and events on the simulated device --------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//

#include "gpu/Stream.h"

#include "gpu/Device.h"
#include "support/Trace.h"

using namespace proteus;
using namespace proteus::gpu;

double Stream::enqueue(double DurSec, const char *TraceName) {
  double Start = Tail;
  if (DurSec > 0) {
    Tail = Start + DurSec;
    Dev.noteTailSeconds(Tail);
  }
  if (trace::enabled() && TraceName)
    trace::lane(TraceName, "gpu", trace::laneTid(Dev.ordinal(), Id),
                static_cast<uint64_t>(Start * 1e9),
                static_cast<uint64_t>(DurSec > 0 ? DurSec * 1e9 : 0));
  return Start;
}

void Stream::waitUntil(double TimeSec) {
  if (TimeSec > Tail) {
    Tail = TimeSec;
    Dev.noteTailSeconds(Tail);
  }
}
