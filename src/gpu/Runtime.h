//===- Runtime.h - HIP/CUDA-like runtime API --------------------*- C++ -*-===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The vendor-runtime facade over the simulated device — the API surface
/// the AOT-compiled host program and the Proteus JIT runtime call into,
/// mirroring the subset of hip*/cuda* entry points the paper's system uses:
/// memory management, transfers (with simulated cost), module loading,
/// symbol resolution (gpuGetSymbolAddress), reading device globals back to
/// the host (cuModuleGetGlobal path for NVIDIA bitcode extraction) and
/// kernel launch.
///
//===----------------------------------------------------------------------===//

#ifndef PROTEUS_GPU_RUNTIME_H
#define PROTEUS_GPU_RUNTIME_H

#include "gpu/Executor.h"

namespace proteus {
namespace gpu {

enum class GpuError {
  Success = 0,
  OutOfMemory,
  InvalidValue,
  LaunchFailure,
  NotFound,
};

const char *gpuErrorName(GpuError E);

/// Allocates device memory (adds no simulated time, as in real runtimes the
/// cost is host-side).
GpuError gpuMalloc(Device &Dev, DevicePtr *Out, uint64_t Bytes);

GpuError gpuFree(Device &Dev, DevicePtr P);

/// Host -> device copy; advances simulated time by the transfer model.
GpuError gpuMemcpyHtoD(Device &Dev, DevicePtr Dst, const void *Src,
                       uint64_t Bytes);

/// Device -> host copy; advances simulated time.
GpuError gpuMemcpyDtoH(Device &Dev, void *Dst, DevicePtr Src,
                       uint64_t Bytes);

/// Fills device memory with a byte value.
GpuError gpuMemset(Device &Dev, DevicePtr Dst, uint8_t Value,
                   uint64_t Bytes);

/// Registers a device global (the __hipRegisterVar/__cudaRegisterVar step
/// performed by the program's initialization code).
GpuError gpuRegisterVar(Device &Dev, const std::string &Symbol,
                        uint64_t Bytes, const std::vector<uint8_t> &Init);

/// Resolves a device global's address (hip/cudaGetSymbolAddress).
GpuError gpuGetSymbolAddress(Device &Dev, DevicePtr *Out,
                             const std::string &Symbol);

/// Loads a compiled kernel object onto the device.
GpuError gpuModuleLoad(Device &Dev, LoadedKernel **Out,
                       const std::vector<uint8_t> &Object,
                       std::string *Error = nullptr);

/// Launches a loaded kernel and blocks until completion (the simulator is
/// synchronous; streams serialize).
GpuError gpuLaunchKernel(Device &Dev, const LoadedKernel &Kernel, Dim3 Grid,
                         Dim3 Block, const std::vector<KernelArg> &Args,
                         std::string *Error = nullptr);

} // namespace gpu
} // namespace proteus

#endif // PROTEUS_GPU_RUNTIME_H
