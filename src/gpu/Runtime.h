//===- Runtime.h - HIP/CUDA-like runtime API --------------------*- C++ -*-===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The vendor-runtime facade over the simulated device — the API surface
/// the AOT-compiled host program and the Proteus JIT runtime call into,
/// mirroring the subset of hip*/cuda* entry points the paper's system uses:
/// memory management, transfers (with simulated cost), module loading,
/// symbol resolution (gpuGetSymbolAddress), reading device globals back to
/// the host (cuModuleGetGlobal path for NVIDIA bitcode extraction), kernel
/// launch, and the stream/event concurrency API (see Stream.h for the
/// per-stream timeline model).
///
/// The synchronous entry points behave like ops on the CUDA legacy default
/// stream: they start after all prior work on every stream of the device
/// (full barrier). The *Async variants enqueue FIFO on an explicit stream;
/// passing a null stream degrades to the default-stream barrier behavior.
///
//===----------------------------------------------------------------------===//

#ifndef PROTEUS_GPU_RUNTIME_H
#define PROTEUS_GPU_RUNTIME_H

#include "gpu/Executor.h"

namespace proteus {
namespace gpu {

enum class GpuError {
  Success = 0,
  OutOfMemory,
  InvalidValue,
  LaunchFailure,
  NotFound,
};

const char *gpuErrorName(GpuError E);

/// Allocates device memory (adds no simulated time, as in real runtimes the
/// cost is host-side).
GpuError gpuMalloc(Device &Dev, DevicePtr *Out, uint64_t Bytes);

/// Frees device memory. Unknown pointers and double frees return
/// InvalidValue and are counted on the device (Device::unknownFrees /
/// doubleFrees) and in metrics::processRegistry() as "gpu.free_unknown" /
/// "gpu.free_double" — leak and double-free bugs fail loudly instead of
/// being silently ignored.
GpuError gpuFree(Device &Dev, DevicePtr P);

/// Host -> device copy; advances simulated time by the transfer model.
GpuError gpuMemcpyHtoD(Device &Dev, DevicePtr Dst, const void *Src,
                       uint64_t Bytes);

/// Device -> host copy; advances simulated time.
GpuError gpuMemcpyDtoH(Device &Dev, void *Dst, DevicePtr Src,
                       uint64_t Bytes);

/// Fills device memory with a byte value.
GpuError gpuMemset(Device &Dev, DevicePtr Dst, uint8_t Value,
                   uint64_t Bytes);

/// Registers a device global (the __hipRegisterVar/__cudaRegisterVar step
/// performed by the program's initialization code).
GpuError gpuRegisterVar(Device &Dev, const std::string &Symbol,
                        uint64_t Bytes, const std::vector<uint8_t> &Init);

/// Resolves a device global's address (hip/cudaGetSymbolAddress).
GpuError gpuGetSymbolAddress(Device &Dev, DevicePtr *Out,
                             const std::string &Symbol);

/// Loads a compiled kernel object onto the device.
GpuError gpuModuleLoad(Device &Dev, LoadedKernel **Out,
                       const std::vector<uint8_t> &Object,
                       std::string *Error = nullptr);

/// Launches a loaded kernel with legacy-default-stream semantics: the
/// launch starts at the device makespan (after all prior work on every
/// stream) and its duration is charged to the default stream's timeline.
/// Memory effects are applied before return (functional-first model), so
/// results are immediately visible on the host.
GpuError gpuLaunchKernel(Device &Dev, const LoadedKernel &Kernel, Dim3 Grid,
                         Dim3 Block, const std::vector<KernelArg> &Args,
                         std::string *Error = nullptr);

// -- Streams and events ------------------------------------------------------
//
// Per-stream FIFO timelines that legally overlap; see Stream.h for the
// functional-first, timing-after model. Every *Async entry point accepts a
// null stream, which means "the device's default stream with legacy full-
// barrier semantics" — exactly the synchronous call.

/// Creates a new independent stream on \p Dev (hip/cudaStreamCreate).
GpuError gpuStreamCreate(Device &Dev, Stream **Out);

/// Drains \p S: a timing-model no-op (effects are already applied), kept
/// for API fidelity. Null \p S means the default stream.
GpuError gpuStreamSynchronize(Device &Dev, Stream *S);

/// Drains every stream on the device.
GpuError gpuDeviceSynchronize(Device &Dev);

/// Host -> device copy enqueued FIFO on \p S (effects applied eagerly,
/// cost charged to the stream's timeline).
GpuError gpuMemcpyHtoDAsync(Device &Dev, DevicePtr Dst, const void *Src,
                            uint64_t Bytes, Stream *S);

/// Device -> host copy enqueued FIFO on \p S.
GpuError gpuMemcpyDtoHAsync(Device &Dev, void *Dst, DevicePtr Src,
                            uint64_t Bytes, Stream *S);

/// Memset enqueued FIFO on \p S.
GpuError gpuMemsetAsync(Device &Dev, DevicePtr Dst, uint8_t Value,
                        uint64_t Bytes, Stream *S);

/// Launches \p Kernel FIFO on \p S: the launch starts at the stream's tail,
/// independent of other streams' timelines. Memory effects are still
/// applied in host enqueue order (deterministic functional simulation).
GpuError gpuLaunchKernelAsync(Device &Dev, const LoadedKernel &Kernel,
                              Dim3 Grid, Dim3 Block,
                              const std::vector<KernelArg> &Args, Stream *S,
                              std::string *Error = nullptr);

/// Stamps \p Ev with the completion time of all work enqueued on \p S so
/// far (hip/cudaEventRecord). Null \p S records the default stream.
GpuError gpuEventRecord(Device &Dev, Event &Ev, Stream *S);

/// Makes all later work on \p S start no earlier than \p Ev's stamp — the
/// happens-before edge (hip/cudaStreamWaitEvent). Cross-device event waits
/// are allowed: timelines share one global simulated-time coordinate.
GpuError gpuStreamWaitEvent(Stream *S, const Event &Ev);

/// Waits for \p Ev (timing no-op; InvalidValue when never recorded).
GpuError gpuEventSynchronize(const Event &Ev);

/// Elapsed simulated milliseconds from \p Start to \p End (like
/// hip/cudaEventElapsedTime). InvalidValue when either is unrecorded.
/// Events recorded on *different* devices still yield a well-defined delta
/// (all timelines share one global simulated-time coordinate), but the
/// query is counted in metrics::processRegistry() as
/// "gpu.event_cross_device" — real runtimes reject such pairs, so the
/// diagnostic makes accidental cross-device timing observable.
GpuError gpuEventElapsedTime(double *Ms, const Event &Start,
                             const Event &End);

} // namespace gpu
} // namespace proteus

#endif // PROTEUS_GPU_RUNTIME_H
