//===- JitRuntime.cpp - the Proteus JIT runtime library ---------------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//

#include "jit/JitRuntime.h"

#include "analysis/KernelAnalyzer.h"
#include "bitcode/ModuleIndex.h"
#include "capture/Capture.h"
#include "codegen/Compiler.h"
#include "fleet/RemoteBackend.h"
#include "ir/Context.h"
#include "ir/Module.h"
#include "ir/Verifier.h"
#include "support/Hashing.h"
#include "support/Timer.h"
#include "support/Trace.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <future>
#include "transforms/SpecializeArgs.h"

using namespace proteus;
using namespace proteus::gpu;

namespace {

void emitConfigWarning(std::vector<std::string> *Warnings, std::string Msg) {
  // Every rejected-but-defaulted value is also counted process-wide, so
  // tests and CI can assert that no configuration mistake slipped through
  // silently (the warn-don't-coerce contract).
  metrics::processRegistry().counter("config.errors").add();
  if (Warnings)
    Warnings->push_back(std::move(Msg));
  else
    std::fprintf(stderr, "proteus: warning: %s\n", Msg.c_str());
}

/// Identifies the exact pipeline composition that produced a cached object.
/// Bump PipelineVersion whenever the Tier-0 or Tier-1 pipeline changes
/// shape, so persisted artifacts built by an older pipeline are recompiled
/// instead of served as current.
constexpr uint64_t PipelineVersion = 1;

} // namespace

uint64_t proteus::jitPipelineFingerprint(CodeTier Tier,
                                         bool SymbolicGlobals) {
  FNV1aHash H;
  H.update(PipelineVersion);
  H.update(static_cast<uint8_t>(Tier));
  // Linkage mode is part of the pipeline identity: an object with baked
  // global addresses is only valid on the device it was linked against.
  H.update(static_cast<uint8_t>(SymbolicGlobals));
  return H.digest();
}

JitConfig JitConfig::fromEnvironment(std::vector<std::string> *Warnings) {
  JitConfig C;
  if (std::getenv("PROTEUS_NO_RCF"))
    C.EnableRCF = false;
  if (std::getenv("PROTEUS_NO_LAUNCH_BOUNDS"))
    C.EnableLaunchBounds = false;
  if (const char *Dir = std::getenv("PROTEUS_CACHE_DIR"))
    C.CacheDir = Dir;
  if (const char *Remote = std::getenv("PROTEUS_CACHE_REMOTE")) {
    std::string S = Remote;
    if (S == "off")
      C.CacheRemote = false;
    else if (S == "on")
      C.CacheRemote = true;
    else
      emitConfigWarning(Warnings,
                        "ignoring invalid PROTEUS_CACHE_REMOTE value '" + S +
                            "' (expected off|on)");
  }
  if (const char *Sock = std::getenv("PROTEUS_CACHE_SOCKET")) {
    std::string S = Sock;
    if (!S.empty())
      C.CacheSocket = S;
    else
      emitConfigWarning(Warnings, "ignoring empty PROTEUS_CACHE_SOCKET "
                                  "(expected a unix socket path)");
  }
  if (const char *Async = std::getenv("PROTEUS_ASYNC")) {
    std::string S = Async;
    if (S == "sync")
      C.Async = AsyncMode::Sync;
    else if (S == "block")
      C.Async = AsyncMode::Block;
    else if (S == "fallback")
      C.Async = AsyncMode::Fallback;
    else
      // Keep the default rather than silently running a mode the user did
      // not ask for (a typo like "blocking" used to select Sync).
      emitConfigWarning(Warnings, "ignoring invalid PROTEUS_ASYNC value '" +
                                      S + "' (expected sync|block|fallback)");
  }
  if (const char *W = std::getenv("PROTEUS_ASYNC_WORKERS")) {
    std::string S = W;
    bool AllDigits =
        !S.empty() && S.find_first_not_of("0123456789") == std::string::npos;
    unsigned long N = AllDigits ? std::strtoul(S.c_str(), nullptr, 10) : 0;
    if (AllDigits && N >= 1 && N <= 1024)
      C.AsyncWorkers = static_cast<unsigned>(N);
    else
      emitConfigWarning(Warnings,
                        "ignoring invalid PROTEUS_ASYNC_WORKERS value '" + S +
                            "' (expected an integer in [1, 1024])");
  }
  if (const char *Tier = std::getenv("PROTEUS_TIER")) {
    std::string S = Tier;
    if (S == "off")
      C.Tier = false;
    else if (S == "on")
      C.Tier = true;
    else
      emitConfigWarning(Warnings, "ignoring invalid PROTEUS_TIER value '" + S +
                                      "' (expected off|on)");
  }
  if (const char *Analyze = std::getenv("PROTEUS_ANALYZE")) {
    std::string S = Analyze;
    if (S == "off")
      C.Analyze = AnalyzeMode::Off;
    else if (S == "warn")
      C.Analyze = AnalyzeMode::Warn;
    else if (S == "error")
      C.Analyze = AnalyzeMode::Error;
    else
      emitConfigWarning(Warnings, "ignoring invalid PROTEUS_ANALYZE value '" +
                                      S + "' (expected off|warn|error)");
  }
  if (const char *V = std::getenv("PROTEUS_VERIFY_EACH")) {
    std::string S = V;
    if (S == "1")
      C.VerifyEachPass = true;
    else if (S == "0")
      C.VerifyEachPass = false;
    else
      emitConfigWarning(Warnings,
                        "ignoring invalid PROTEUS_VERIFY_EACH value '" + S +
                            "' (expected 0 or 1)");
  }
  if (const char *Cap = std::getenv("PROTEUS_CAPTURE")) {
    std::string S = Cap;
    if (S == "off")
      C.Capture = false;
    else if (S == "on")
      C.Capture = true;
    else
      emitConfigWarning(Warnings, "ignoring invalid PROTEUS_CAPTURE value '" +
                                      S + "' (expected off|on)");
  }
  if (const char *Dir = std::getenv("PROTEUS_CAPTURE_DIR")) {
    std::string S = Dir;
    if (!S.empty())
      C.CaptureDir = S;
    else
      emitConfigWarning(Warnings,
                        "ignoring empty PROTEUS_CAPTURE_DIR (expected a "
                        "directory path)");
  }
  if (const char *Dedup = std::getenv("PROTEUS_CAPTURE_DEDUP")) {
    std::string S = Dedup;
    if (S == "off")
      C.CaptureDedup = false;
    else if (S == "on")
      C.CaptureDedup = true;
    else
      emitConfigWarning(Warnings,
                        "ignoring invalid PROTEUS_CAPTURE_DEDUP value '" + S +
                            "' (expected off|on)");
  }
  if (const char *Ring = std::getenv("PROTEUS_CAPTURE_RING")) {
    std::string S = Ring;
    bool AllDigits =
        !S.empty() && S.find_first_not_of("0123456789") == std::string::npos;
    unsigned long N = AllDigits ? std::strtoul(S.c_str(), nullptr, 10) : 0;
    if (AllDigits && N >= 1 && N <= 65536)
      C.CaptureRing = static_cast<unsigned>(N);
    else
      emitConfigWarning(Warnings,
                        "ignoring invalid PROTEUS_CAPTURE_RING value '" + S +
                            "' (expected an integer in [1, 65536])");
  }
  if (const char *Tune = std::getenv("PROTEUS_TUNE")) {
    std::string S = Tune;
    if (S == "off")
      C.Tune = false;
    else if (S == "on")
      C.Tune = true;
    else
      emitConfigWarning(Warnings, "ignoring invalid PROTEUS_TUNE value '" + S +
                                      "' (expected off|on)");
  }
  if (const char *Policy = std::getenv("PROTEUS_POLICY")) {
    std::string S = Policy;
    if (S == "off")
      C.Policy = false;
    else if (S == "on")
      C.Policy = true;
    else
      emitConfigWarning(Warnings, "ignoring invalid PROTEUS_POLICY value '" +
                                      S + "' (expected off|on)");
  }
  if (const char *Budget = std::getenv("PROTEUS_TUNE_BUDGET")) {
    std::string S = Budget;
    bool AllDigits =
        !S.empty() && S.find_first_not_of("0123456789") == std::string::npos;
    unsigned long N = AllDigits ? std::strtoul(S.c_str(), nullptr, 10) : 0;
    if (AllDigits && N >= 1 && N <= 256)
      C.TuneBudget = static_cast<unsigned>(N);
    else
      emitConfigWarning(Warnings,
                        "ignoring invalid PROTEUS_TUNE_BUDGET value '" + S +
                            "' (expected an integer in [1, 256])");
  }
  C.Limits = CacheLimits::fromEnvironment(Warnings);
  return C;
}

const char *proteus::asyncModeName(JitConfig::AsyncMode M) {
  switch (M) {
  case JitConfig::AsyncMode::Sync:
    return "sync";
  case JitConfig::AsyncMode::Block:
    return "block";
  case JitConfig::AsyncMode::Fallback:
    return "fallback";
  }
  return "unknown";
}

const char *proteus::analyzeModeName(JitConfig::AnalyzeMode M) {
  switch (M) {
  case JitConfig::AnalyzeMode::Off:
    return "off";
  case JitConfig::AnalyzeMode::Warn:
    return "warn";
  case JitConfig::AnalyzeMode::Error:
    return "error";
  }
  return "unknown";
}

const char *proteus::tierModeName(bool TierEnabled) {
  return TierEnabled ? "on" : "off";
}

/// Result of one specialization compile, delivered to every waiter through
/// the in-flight table's shared future.
struct JitRuntime::CompileOutcome {
  GpuError Err = GpuError::Success;
  std::string Message;
  std::vector<uint8_t> Object;
};

/// One in-flight compilation: the owner fulfils the promise (inline in Sync
/// mode, on a worker otherwise); any number of launches hold the shared
/// future.
struct JitRuntime::InFlightCompile {
  std::promise<CompileOutcome> Promise;
  std::shared_future<CompileOutcome> Future{Promise.get_future().share()};
};

/// Builds the persistent-level backend for \p Config: the fleet service
/// client when PROTEUS_CACHE_REMOTE=on (socket from PROTEUS_CACHE_SOCKET,
/// defaulting to <CacheDir>/proteus-cached.sock, with the local directory
/// as its outage fallback), or null to let CodeCache build the default
/// sharded local backend.
static std::unique_ptr<fleet::CacheBackend>
makeCacheBackend(const JitConfig &Config) {
  if (!Config.CacheRemote || !Config.UsePersistentCache ||
      Config.CacheDir.empty())
    return nullptr;
  fleet::RemoteBackendOptions RO;
  RO.SocketPath = Config.CacheSocket.empty()
                      ? Config.CacheDir + "/proteus-cached.sock"
                      : Config.CacheSocket;
  RO.FallbackDir = Config.CacheDir;
  RO.Fallback = CodeCache::backendOptions(Config.Limits);
  return std::make_unique<fleet::RemoteCacheBackend>(std::move(RO));
}

JitRuntime::JitRuntime(Device &Dev, uint64_t ModuleId, JitConfig Config)
    : Dev(Dev), ModuleId(ModuleId), Config(Config),
      Cache(Config.UseMemoryCache, Config.UsePersistentCache,
            Config.CacheDir, Config.Limits, makeCacheBackend(Config)) {
  Devices.emplace_back(new DeviceState);
  Devices.back()->Dev = &Dev;
#define PROTEUS_JIT_STAT_REGISTER(Field, Name)                                 \
  Stat.Field = &Metrics.counter(Name);
  PROTEUS_JIT_COUNTERS(PROTEUS_JIT_STAT_REGISTER)
#undef PROTEUS_JIT_STAT_REGISTER
#define PROTEUS_JIT_STAT_REGISTER(Field, Name)                                 \
  Stat.Field = &Metrics.timer(Name);
  PROTEUS_JIT_TIMERS(PROTEUS_JIT_STAT_REGISTER)
#undef PROTEUS_JIT_STAT_REGISTER
  // The pool serves Block/Fallback launch-path compiles and, when tiering
  // is on, the low-priority Tier-1 promotion compiles — so Sync mode with
  // tiering still owns a pool (its Tier-0 compiles stay inline).
  if (this->Config.Async != JitConfig::AsyncMode::Sync || this->Config.Tier)
    Pool = std::make_unique<ThreadPool>(
        this->Config.AsyncWorkers ? this->Config.AsyncWorkers : 1u);
  if (this->Config.Capture)
    CaptureSess = std::make_unique<capture::CaptureSession>(
        this->Config.CaptureDir, this->Config.CaptureRing, Metrics);
  if (this->Config.Policy)
    PolicyState = std::make_unique<CompilationPolicy>();
}

JitRuntime::~JitRuntime() {
  if (Pool)
    Pool->shutdown(); // drain compiles that still reference this runtime
}

unsigned JitRuntime::attachDevice(Device &D) {
  for (unsigned I = 0; I != Devices.size(); ++I)
    if (Devices[I]->Dev == &D)
      return I;
  Devices.emplace_back(new DeviceState);
  Devices.back()->Dev = &D;
  Devices.back()->Index = static_cast<unsigned>(Devices.size() - 1);
  return Devices.back()->Index;
}

void JitRuntime::registerKernel(JitKernelInfo Info) {
  {
    // First registration wins: per-device program loads re-register the
    // same kernels, and the first device's bitcode location must stay
    // authoritative (fetchBitcode reads from that device).
    std::lock_guard<std::mutex> Lock(RegistryMutex);
    if (Kernels.count(Info.Symbol))
      return;
  }
  if (!Info.GenericObject.empty())
    Info.GenericArch = readObject(Info.GenericObject).Arch;
  // In Fallback mode the generic binary is loaded eagerly on the primary
  // device, at registration time, so the tier-0 path of a cold launch is a
  // plain kernel launch with no module load on it. Other devices load it
  // lazily in launchGeneric (matching arch only — a mixed pool's foreign
  // devices block on the compile instead).
  if (Config.Async == JitConfig::AsyncMode::Fallback &&
      !Info.GenericObject.empty() &&
      Info.GenericArch == Devices.front()->Dev->target().Arch) {
    DeviceState &DS = *Devices.front();
    std::lock_guard<std::mutex> Lock(DS.Lock);
    if (!DS.GenericLoaded.count(Info.Symbol)) {
      LoadedKernel *K = nullptr;
      if (gpuModuleLoad(*DS.Dev, &K, Info.GenericObject, nullptr) ==
          GpuError::Success)
        DS.GenericLoaded[Info.Symbol] = K;
      // On failure fall back to the lazy load in launchGeneric.
    }
  }
  std::lock_guard<std::mutex> Lock(RegistryMutex);
  Kernels.emplace(Info.Symbol, std::move(Info));
}

void JitRuntime::registerVar(const std::string &Symbol, DevicePtr Address) {
  std::lock_guard<std::mutex> Lock(RegistryMutex);
  GlobalAddresses[Symbol] = Address;
}

JitRuntimeStats JitRuntime::stats() const {
  JitRuntimeStats S;
#define PROTEUS_JIT_STAT_SNAPSHOT(Field, Name) S.Field = Stat.Field->value();
  PROTEUS_JIT_COUNTERS(PROTEUS_JIT_STAT_SNAPSHOT)
#undef PROTEUS_JIT_STAT_SNAPSHOT
#define PROTEUS_JIT_STAT_SNAPSHOT(Field, Name) S.Field = Stat.Field->seconds();
  PROTEUS_JIT_TIMERS(PROTEUS_JIT_STAT_SNAPSHOT)
#undef PROTEUS_JIT_STAT_SNAPSHOT
  for (const auto &[Name, Seconds] : Metrics.timerValues())
    if (Name.rfind("o3.pass.", 0) == 0)
      S.O3PassSeconds[Name.substr(8)] = Seconds;
  return S;
}

void JitRuntime::drain() {
  if (Pool)
    Pool->waitIdle();
  if (CaptureSess)
    CaptureSess->flush(); // every submitted capture persisted (or failed)
}

void JitRuntime::resetInMemoryState() {
  drain();
  // Ascending-ordinal visit, one device lock at a time (lock order).
  for (auto &DS : Devices) {
    std::lock_guard<std::mutex> Lock(DS->Lock);
    DS->Loaded.clear();
    DS->GenericLoaded.clear();
  }
  {
    std::lock_guard<std::mutex> Lock(OriginMutex);
    FirstLoadedOn.clear();
  }
  {
    std::lock_guard<std::mutex> Lock(IndexMutex);
    ModuleIndexes.clear();
  }
  {
    std::lock_guard<std::mutex> Lock(MemoMutex);
    HashMemo.clear();
  }
  Cache.clearMemory();
}

bool JitRuntime::buildKey(const JitKernelInfo &Info, Dim3 Block,
                          const std::vector<KernelArg> &Args, GpuArch Arch,
                          SpecializationKey &Out, std::string *Error) const {
  SpecializationKey Key;
  Key.ModuleId = ModuleId;
  Key.KernelSymbol = Info.Symbol;
  Key.Arch = Arch;
  if (Config.EnableRCF) {
    for (uint32_t OneBased : Info.AnnotatedArgs) {
      if (OneBased == 0 || OneBased > Args.size()) {
        // An out-of-range annotation means the launch and the annotation
        // disagree about the kernel's signature; folding a garbage value
        // (or silently not specializing) would be worse than failing.
        Stat.AnnotationRangeErrors->add();
        trace::instant("jit.annotation_range_error");
        if (Error)
          *Error = "jit-annotated argument index " +
                   std::to_string(OneBased) + " of kernel @" + Info.Symbol +
                   " is out of range: launch provided " +
                   std::to_string(Args.size()) +
                   " argument(s) (indices are 1-based)";
        return false;
      }
      uint32_t Idx = OneBased - 1;
      Key.FoldedArgs.push_back(RuntimeArgValue{Idx, Args[Idx].Bits});
    }
  }
  if (Config.EnableLaunchBounds)
    Key.LaunchBoundsThreads = static_cast<uint32_t>(Block.count());
  Out = std::move(Key);
  return true;
}

GpuError JitRuntime::fetchBitcode(const JitKernelInfo &Info,
                                  std::vector<uint8_t> &Out,
                                  std::string *Error) {
  trace::Span Sp("jit.fetch_bitcode", "jit");
  metrics::ScopedTimer FetchT(*Stat.BitcodeFetchSeconds);
  if (!Info.HostBitcode.empty()) {
    Out = Info.HostBitcode;
  } else if (Info.DeviceBitcodeAddr) {
    // Read back from the device whose program load uploaded the bitcode.
    DeviceState *BDS = Devices.front().get();
    for (auto &DS : Devices)
      if (DS->Dev == Info.BitcodeDevice)
        BDS = DS.get();
    Out.resize(Info.DeviceBitcodeSize);
    GpuError E;
    {
      std::lock_guard<std::mutex> Lock(BDS->Lock);
      E = gpuMemcpyDtoH(*BDS->Dev, Out.data(), Info.DeviceBitcodeAddr,
                        Info.DeviceBitcodeSize);
    }
    if (E != GpuError::Success) {
      if (Error)
        *Error = "failed to read __jit_bc_" + Info.Symbol +
                 " from device memory";
      return E;
    }
  } else {
    if (Error)
      *Error = "no bitcode registered for @" + Info.Symbol;
    return GpuError::InvalidValue;
  }
  return GpuError::Success;
}

std::shared_ptr<const KernelModuleIndex>
JitRuntime::getOrBuildIndex(const std::string &Symbol,
                            const std::vector<uint8_t> &Bitcode,
                            std::string *Error) {
  {
    std::lock_guard<std::mutex> Lock(IndexMutex);
    auto It = ModuleIndexes.find(Symbol);
    if (It != ModuleIndexes.end())
      return It->second;
  }
  if (Bitcode.empty()) {
    if (Error)
      *Error = "no parsed module index for @" + Symbol +
               " and no bitcode to build one";
    return nullptr;
  }
  // Parse outside the lock: first compiles of different kernels must not
  // serialize on parsing. Racing builders of the same kernel both parse;
  // the first insert wins and the loser's copy is dropped.
  std::string ParseError;
  Stat.BitcodeParses->add();
  std::shared_ptr<const KernelModuleIndex> Index = [&] {
    trace::Span Sp("compile.parse", "jit");
    metrics::ScopedTimer T(*Stat.BitcodeParseSeconds);
    return KernelModuleIndex::create(Bitcode, ParseError);
  }();
  if (!Index) {
    if (Error)
      *Error = "corrupt kernel bitcode for @" + Symbol + ": " + ParseError;
    return nullptr;
  }
  // Defensive mode: verify everything the bitcode contained, before any
  // pruned materialization can drop an unreachable-but-broken function.
  // Failures are not cached — each retry re-parses and re-reports.
  if (Config.VerifyIR) {
    pir::VerifyResult VR = pir::verifyModule(Index->prototype());
    if (!VR.ok()) {
      if (Error)
        *Error = "kernel bitcode for @" + Symbol + " failed verification:\n" +
                 VR.message();
      return nullptr;
    }
  }
  std::lock_guard<std::mutex> Lock(IndexMutex);
  auto [It, Inserted] = ModuleIndexes.emplace(Symbol, std::move(Index));
  (void)Inserted;
  return It->second;
}

JitRuntime::CompileOutcome
JitRuntime::compileSpecialization(const std::string &Symbol,
                                  std::vector<uint8_t> Bitcode,
                                  const SpecializationKey &Key,
                                  uint64_t Hash, CodeTier Tier,
                                  const O3Options *O3Override) {
  CompileOutcome Out;
  const bool Tier0 = Tier == CodeTier::Tier0;

  // Fleet-wide compile dedup: claim the specialization hash across every
  // process sharing the cache (lock file locally, Acquire RPC against the
  // shared cache service). Exactly one claimant compiles; the rest wait for
  // its publish and load that object instead of burning a redundant
  // compile. Variant-tuning trials (O3Override) are exempt — the tuner
  // needs the actual trial object, not whatever someone else published.
  struct ClaimGuard {
    CodeCache *C = nullptr;
    uint64_t Hash = 0;
    ~ClaimGuard() {
      if (C)
        C->endCompile(Hash);
    }
  } Claim;
  if (!O3Override) {
    if (Cache.beginCompile(Hash) == fleet::CompileClaim::Owner) {
      Claim.C = &Cache;
      Claim.Hash = Hash;
      // Double-checked claim: another process may have published between
      // this caller's cache miss and the claim acquisition. Serve that
      // entry (under the same tier/pipeline rules as a waited-for publish)
      // instead of recompiling it.
      if (std::optional<CachedCode> CC = Cache.lookupEntry(Hash)) {
        bool TierOk = Tier == CodeTier::Tier0 || CC->Tier == CodeTier::Final;
        if (TierOk && CC->PipelineFingerprint ==
                          jitPipelineFingerprint(CC->Tier, symbolicGlobals())) {
          Stat.FleetServedCompiles->add();
          trace::instant("jit.fleet_served", "jit");
          Out.Object = std::move(CC->Object);
          return Out;
        }
      }
    } else {
      Stat.FleetDedupWaits->add();
      trace::instant("jit.fleet_wait", "jit");
      if (std::optional<CachedCode> CC = Cache.waitRemoteCompile(Hash)) {
        // Another process published while we waited. Serve it only if it
        // came from the current pipeline and its tier satisfies the
        // request (a Tier-0 baseline never substitutes for a Final
        // compile).
        bool TierOk = Tier == CodeTier::Tier0 || CC->Tier == CodeTier::Final;
        if (TierOk && CC->PipelineFingerprint ==
                          jitPipelineFingerprint(CC->Tier, symbolicGlobals())) {
          Stat.FleetServedCompiles->add();
          trace::instant("jit.fleet_served", "jit");
          Out.Object = std::move(CC->Object);
          return Out;
        }
        // Unusable publish (stale pipeline / insufficient tier): fall
        // through and compile locally, unclaimed — the atomic publish
        // tolerates the duplicate.
      } else {
        // waitRemoteCompile re-acquired the claim (the previous owner
        // died) or timed out; either way this caller compiles and must
        // release.
        Claim.C = &Cache;
        Claim.Hash = Hash;
      }
    }
  }

  if (Tier0)
    Stat.Tier0Compiles->add();
  else
    Stat.Compilations->add();
  trace::Span CompileSp(Tier0 ? "jit.compile.tier0" : "jit.compile", "jit");

  // Stage timers are RAII-scoped (metrics::ScopedTimer) so every exit path
  // — including the error returns below — records the time spent. The old
  // accumulate-locals-then-publish-at-the-end scheme dropped the parse and
  // link timings whenever a compile failed.

  // (1) Materialize the kernel module from the parse-once index: the
  // bitcode is parsed at most once per kernel and runtime lifetime; each
  // compile clones only the launched kernel's reachable call closure into
  // a fresh context it owns exclusively.
  std::string IndexError;
  std::shared_ptr<const KernelModuleIndex> Index =
      getOrBuildIndex(Symbol, Bitcode, &IndexError);
  if (!Index) {
    Out.Err = GpuError::InvalidValue;
    Out.Message = std::move(IndexError);
    return Out;
  }
  pir::Context Ctx;
  std::unique_ptr<pir::Module> MOwner = [&] {
    trace::Span Sp("compile.materialize", "jit");
    metrics::ScopedTimer T(*Stat.BitcodeParseSeconds);
    uint64_t Pruned = 0;
    std::unique_ptr<pir::Module> M = Index->materialize(Ctx, Symbol, &Pruned);
    if (M)
      Stat.PrunedFunctions->add(Pruned);
    return M;
  }();
  if (!MOwner) {
    Out.Err = GpuError::InvalidValue;
    Out.Message = "bitcode for @" + Symbol + " does not contain the kernel";
    return Out;
  }
  pir::Module &M = *MOwner;
  pir::Function *F = M.getFunction(Symbol);
  if (!F || !F->isKernel()) {
    Out.Err = GpuError::InvalidValue;
    Out.Message = "bitcode for @" + Symbol + " does not contain the kernel";
    return Out;
  }
  // (2) Link device globals. Single-device mode replaces references with
  // their resolved device addresses (so JIT code shares state with AOT
  // code, and O3 can fold the constant addresses): addresses registered
  // through __jit_register_var are snapshotted; unknown symbols fall back
  // to the vendor runtime's table (a device operation, taken under the
  // primary device's lock). Multi-device mode keeps the references
  // symbolic — one object serves every same-arch device, and the backend
  // emits load-time relocations the loader resolves against each device's
  // own symbol table.
  if (!symbolicGlobals()) {
    std::map<std::string, DevicePtr> Globals;
    {
      std::lock_guard<std::mutex> Lock(RegistryMutex);
      Globals = GlobalAddresses;
    }
    trace::Span Sp("compile.link_globals", "jit");
    metrics::ScopedTimer T(*Stat.LinkGlobalsSeconds);
    for (const auto &G : M.globals()) {
      if (!G->hasUses())
        continue;
      auto AIt = Globals.find(G->getName());
      DevicePtr Addr = AIt != Globals.end() ? AIt->second : 0;
      if (!Addr) {
        DeviceState &DS = *Devices.front();
        std::lock_guard<std::mutex> Lock(DS.Lock);
        gpuGetSymbolAddress(*DS.Dev, &Addr, G->getName());
      }
      if (!Addr) {
        Out.Err = GpuError::NotFound;
        Out.Message = "cannot link device global @" + G->getName();
        return Out;
      }
      G->replaceAllUsesWith(Ctx.getConstantPtr(Addr));
    }
  }

  // (3) Specialize.
  {
    trace::Span Sp("compile.specialize", "jit");
    metrics::ScopedTimer T(*Stat.SpecializeSeconds);
    if (Config.EnableRCF && !Key.FoldedArgs.empty())
      specializeArguments(*F, Key.FoldedArgs);
    if (Config.EnableLaunchBounds)
      specializeLaunchBounds(*F, Key.LaunchBoundsThreads);
  }

  // (4) Aggressive O3, with per-pass attribution: the pass manager's timing
  // hook feeds one "o3.pass.<name>" timer per pass (surfaced through
  // JitRuntimeStats::O3PassSeconds), and each pass invocation emits an
  // "o3.<name>" trace span. In verify-each mode (PROTEUS_VERIFY_EACH=1) a
  // post-pass hook re-verifies the IR after every pass invocation and
  // attributes the first breakage to the offending pass by name — failing
  // this compile rather than emitting a miscompiled kernel (and rather than
  // aborting the process like the PassManager's own test-mode VerifyEach).
  std::string VerifyEachFailure;
  {
    trace::Span Sp("compile.o3", "jit");
    metrics::ScopedTimer T(*Stat.OptimizeSeconds);
    // Tier-0 swaps in the fast preset (inline + mem2reg + one InstCombine
    // + DCE, single iteration) while keeping every other O3 knob. The
    // variant manager overrides the whole knob set when compiling a trial
    // or a tuned winner.
    O3Options O3Opts = O3Override ? *O3Override : Config.O3;
    if (Tier0)
      O3Opts.Preset = O3Preset::Fast;
    std::unique_ptr<PassManager> PM = buildO3Pipeline(O3Opts);
    PM->setTimingHook([this](const std::string &PassName, double Seconds) {
      Metrics.timer("o3.pass." + PassName).addSeconds(Seconds);
    });
    if (Config.VerifyEachPass)
      PM->setPostPassHook([&](const std::string &PassName, pir::Function &Fn) {
        metrics::ScopedTimer VT(*Stat.VerifyEachSeconds);
        if (!VerifyEachFailure.empty())
          return; // the first broken pass is the actionable one
        pir::VerifyResult VR = pir::verifyFunction(Fn);
        if (!VR.ok()) {
          Stat.VerifyFailures->add();
          trace::instant("jit.verify_each_failure");
          VerifyEachFailure = "pass '" + PassName + "' broke function @" +
                              Fn.getName() + ":\n" + VR.message();
        }
      });
    PM->run(M);
  }
  if (!VerifyEachFailure.empty()) {
    Out.Err = GpuError::InvalidValue;
    Out.Message = "verify-each: " + VerifyEachFailure;
    return Out;
  }

  // (4b) Kernel sanitizer: the JIT sees the exact specialized, optimized
  // kernel that is about to run on-device, so this is where GPU-semantics
  // bugs (divergent barriers, shared-scratch races/OOB/uninitialized
  // reads) are reported — as warnings, or as a launch failure in
  // AnalyzeMode::Error.
  if (Config.Analyze != JitConfig::AnalyzeMode::Off) {
    trace::Span Sp("compile.analyze", "jit");
    metrics::ScopedTimer T(*Stat.AnalyzeSeconds);
    pir::analysis::AnalysisReport AR = pir::analysis::analyzeKernel(*F);
    if (!AR.clean()) {
      Stat.AnalysisDiagnostics->add(AR.Diags.size());
      trace::instant("jit.analysis_diagnostic");
      if (Config.Analyze == JitConfig::AnalyzeMode::Error) {
        Stat.AnalysisRejects->add();
        Out.Err = GpuError::InvalidValue;
        Out.Message = "kernel @" + Symbol + " failed launch-time analysis (" +
                      std::to_string(AR.Diags.size()) + " finding(s)):\n" +
                      AR.message();
        return Out;
      }
      for (const pir::analysis::LintDiagnostic &D : AR.Diags)
        std::fprintf(stderr, "proteus: warning: %s\n", D.render().c_str());
    }
  }

  // (5) Backend (includes the PTX assembler detour on nvptx-sim). Tier-0
  // uses the single-pass register allocator.
  BackendStats BS;
  {
    trace::Span Sp("compile.backend", "jit");
    metrics::ScopedTimer T(*Stat.BackendSeconds);
    BackendOptions BO;
    BO.RegAlloc.Fast = Tier0;
    // The backend target comes from the specialization key, not from any
    // particular device: the object is compiled once per arch and loaded
    // onto every device of that arch.
    Out.Object = compileKernelToObject(*F, getTarget(Key.Arch), &BS, BO);
  }

  // (5b) Bottleneck classification: the JIT sees the final specialized,
  // optimized IR and the allocator's spill feedback together, so this is
  // the one point where a trustworthy roofline verdict exists. Recorded on
  // the policy store for the variant manager's pruning and persisted with
  // any later tuning decision.
  if (PolicyState) {
    pir::analysis::RegPressureFeedback Reg;
    Reg.RegsUsed = BS.RA.RegsUsed;
    Reg.SpillSlots = BS.RA.SpillSlots;
    Reg.SpillLoads = BS.RA.SpillLoads;
    Reg.SpillStores = BS.RA.SpillStores;
    Reg.RegisterBudget = BS.RegisterBudget;
    pir::analysis::RooflineReport RR =
        pir::analysis::classifyKernel(*F, getTarget(Key.Arch), &Reg);
    PolicyVerdict V;
    V.Class = RR.Class;
    V.ArithmeticIntensity = RR.ArithmeticIntensity;
    V.RidgeFlopsPerByte = RR.Model.ridgeFlopsPerByte();
    PolicyState->recordVerdict(Symbol, Key.Arch, V);
    Stat.PolicyClassified->add();
  }

  // (6) Publish: insert into both cache levels before the in-flight entry
  // is retired, so no launch can miss both. The tier tag and pipeline
  // fingerprint travel with the entry (including its persisted form), so
  // a Tier-0 baseline is never mistaken for a final artifact later — and
  // a baked-address object is never served in symbolic-globals mode.
  Cache.insert(Hash, Out.Object, Tier,
               jitPipelineFingerprint(Tier, symbolicGlobals()));
  return Out;
}

uint64_t JitRuntime::lookupSpecHash(const std::string &Symbol,
                                    const SpecializationKey &Key) {
  // Memo key: only the hash inputs that vary per launch. ModuleId and each
  // kernel's annotated-argument indices are fixed for the runtime's
  // lifetime, so they are implied by the symbol — but Arch is not: a
  // heterogeneous device pool launches the same symbol for several
  // architectures through one runtime.
  std::vector<uint64_t> MemoKey;
  MemoKey.reserve(Key.FoldedArgs.size() + 2);
  MemoKey.push_back(static_cast<uint64_t>(Key.Arch));
  for (const RuntimeArgValue &V : Key.FoldedArgs)
    MemoKey.push_back(V.Bits);
  MemoKey.push_back(Key.LaunchBoundsThreads);
  {
    std::lock_guard<std::mutex> Lock(MemoMutex);
    auto KIt = HashMemo.find(Symbol);
    if (KIt != HashMemo.end()) {
      auto It = KIt->second.find(MemoKey);
      if (It != KIt->second.end()) {
        Stat.HashMemoHits->add();
        return It->second;
      }
    }
  }
  uint64_t Hash = computeSpecializationHash(Key);
  std::lock_guard<std::mutex> Lock(MemoMutex);
  HashMemo[Symbol].emplace(std::move(MemoKey), Hash);
  return Hash;
}

void JitRuntime::scheduleTier1Promotion(const JitKernelInfo &Info,
                                        const SpecializationKey &Key,
                                        uint64_t Hash) {
  if (!Pool)
    return;
  // Critical-path gate: a kernel with timeline slack cannot shorten the
  // run, so its Tier-0 binary is already good enough — skip the background
  // promotion compile entirely.
  if (PolicyState && !PolicyState->shouldPromote(Info.Symbol)) {
    Stat.PolicyTierDemotions->add();
    trace::instant("jit.policy_tier_demotion");
    return;
  }
  {
    std::lock_guard<std::mutex> Lock(InFlightMutex);
    if (!PromotionsInFlight.insert(Hash).second)
      return; // a promotion for this specialization is already in flight
  }
  auto Unschedule = [this, Hash] {
    std::lock_guard<std::mutex> Lock(InFlightMutex);
    PromotionsInFlight.erase(Hash);
  };
  // The promotion compile materializes from the module index; when this
  // runtime has not parsed the kernel yet (a persisted Tier-0 entry served
  // on a fresh process), fetch the bitcode here — the NVIDIA readback is a
  // device operation that must not run on a worker.
  std::vector<uint8_t> Bitcode;
  bool HaveIndex;
  {
    std::lock_guard<std::mutex> Lock(IndexMutex);
    HaveIndex = ModuleIndexes.count(Info.Symbol) != 0;
  }
  if (!HaveIndex &&
      fetchBitcode(Info, Bitcode, nullptr) != GpuError::Success) {
    Unschedule();
    return; // keep serving Tier-0; a later cold lookup may retry
  }
  trace::instant("jit.tier1_schedule");
  bool Enqueued = Pool->enqueue(
      [this, Symbol = Info.Symbol, Key, Hash, Unschedule,
       BC = std::move(Bitcode)]() mutable {
        CompileOutcome O = compileSpecialization(Symbol, std::move(BC), Key,
                                                 Hash, CodeTier::Final);
        if (O.Err == GpuError::Success) {
          // Hot-swap: load the promoted binary and atomically replace the
          // Tier-0 mapping on every device currently holding this
          // specialization, so the next launch on any of them runs Tier-1
          // code. Devices are visited in ascending ordinal, one lock at a
          // time (lock order); a racing launch either still maps Tier-0
          // (correct, just unpromoted) or already sees the new kernel.
          bool Promoted = false;
          unsigned Origin = recordLoadOrigin(Hash, 0);
          for (unsigned I = 0; I != Devices.size(); ++I) {
            DeviceState &DS = *Devices[I];
            std::lock_guard<std::mutex> Lock(DS.Lock);
            // The origin device is always promoted — the racing launch
            // that triggered this promotion may not have finished its own
            // Tier-0 load yet. Other devices only when they hold the
            // specialization.
            if (I != Origin && !DS.Loaded.count(Hash))
              continue;
            LoadedKernel *K = nullptr;
            if (gpuModuleLoad(*DS.Dev, &K, O.Object, nullptr) ==
                GpuError::Success) {
              DS.Loaded[Hash] = K;
              Promoted = true;
              if (I != Origin)
                Stat.CrossDeviceLoads->add();
            }
          }
          if (Promoted) {
            // One promotion per specialization, however many devices the
            // hot-swap reached.
            Stat.Tier1Promotions->add();
            trace::instant("jit.tier1_promotion");
          }
        }
        // A failed promotion keeps the Tier-0 entry: correct code, just
        // not final.
        Unschedule();
      },
      ThreadPool::Priority::Low);
  if (!Enqueued)
    Unschedule(); // pool is shutting down
}

void JitRuntime::completeJob(uint64_t Hash,
                             const std::shared_ptr<InFlightCompile> &Job,
                             CompileOutcome Outcome) {
  // Publish the result to waiters first; the cache entry (on success) was
  // already inserted, so a launch that finds neither the in-flight job nor
  // the table entry still finds the object in the cache.
  Job->Promise.set_value(std::move(Outcome));
  std::lock_guard<std::mutex> Lock(InFlightMutex);
  InFlight.erase(Hash);
}

std::optional<GpuError>
JitRuntime::launchGeneric(DeviceState &DS, const JitKernelInfo &Info,
                          Dim3 Grid, Dim3 Block,
                          const std::vector<KernelArg> &Args, Stream *S,
                          std::string *Error) {
  std::lock_guard<std::mutex> Lock(DS.Lock);
  LoadedKernel *K = nullptr;
  if (auto It = DS.GenericLoaded.find(Info.Symbol);
      It != DS.GenericLoaded.end()) {
    K = It->second;
  } else {
    // No tier-0 binary — or one compiled for a different architecture than
    // this device runs — means the caller must wait on the compile instead.
    if (Info.GenericObject.empty() ||
        Info.GenericArch != DS.Dev->target().Arch)
      return std::nullopt;
    std::string LoadErr;
    if (gpuModuleLoad(*DS.Dev, &K, Info.GenericObject, &LoadErr) !=
        GpuError::Success) {
      if (Error)
        *Error = "failed to load generic binary for @" + Info.Symbol + ": " +
                 LoadErr;
      return GpuError::LaunchFailure;
    }
    DS.GenericLoaded[Info.Symbol] = K;
  }
  Stat.FallbackLaunches->add();
  trace::instant("jit.fallback_launch");
  trace::Span Sp("jit.kernel_launch", "jit");
  return gpuLaunchKernelAsync(*DS.Dev, *K, Grid, Block, Args, S, Error);
}

unsigned JitRuntime::recordLoadOrigin(uint64_t Hash, unsigned Ordinal) {
  std::lock_guard<std::mutex> Lock(OriginMutex);
  auto [It, Inserted] = FirstLoadedOn.emplace(Hash, Ordinal);
  (void)Inserted;
  return It->second;
}

GpuError JitRuntime::loadAndLaunch(
    DeviceState &DS, uint64_t Hash, const std::vector<uint8_t> &Object,
    const JitKernelInfo &Info,
    const std::shared_ptr<const KernelModuleIndex> &CaptureIndex, Dim3 Grid,
    Dim3 Block, const std::vector<KernelArg> &Args, Stream *S,
    std::string *Error) {
  std::lock_guard<std::mutex> Lock(DS.Lock);
  LoadedKernel *K = nullptr;
  if (auto It = DS.Loaded.find(Hash); It != DS.Loaded.end()) {
    K = It->second;
  } else {
    trace::Span Sp("jit.module_load", "jit");
    std::string LoadError;
    if (gpuModuleLoad(*DS.Dev, &K, Object, &LoadError) != GpuError::Success) {
      if (Error)
        *Error = "failed to load JIT object for @" + Info.Symbol + ": " +
                 LoadError;
      return GpuError::LaunchFailure;
    }
    DS.Loaded[Hash] = K;
    // Cross-device accounting: the first device to load a specialization
    // is its origin; any other device loading the same object reused the
    // per-arch compile instead of triggering its own.
    unsigned Origin = recordLoadOrigin(Hash, DS.Index);
    if (Origin != DS.Index) {
      Stat.CrossDeviceLoads->add();
      Stat.PerArchCompileReuse->add();
      trace::instant("jit.cross_device_load");
    }
  }
  return launchLoaded(DS, *K, Info, Hash, CaptureIndex, Grid, Block, Args, S,
                      Error);
}

GpuError JitRuntime::launchLoaded(
    DeviceState &DS, LoadedKernel &K, const JitKernelInfo &Info,
    uint64_t Hash,
    const std::shared_ptr<const KernelModuleIndex> &CaptureIndex, Dim3 Grid,
    Dim3 Block, const std::vector<KernelArg> &Args, Stream *S,
    std::string *Error) {
  trace::Span Sp("jit.kernel_launch", "jit");
  // Skip capture when it is off, the kernel's closure is unavailable, this
  // launch shape was already recorded (dedup mode counts capture.dedup), or
  // the ring is full (tryReserve counts the drop) — the launch itself must
  // never block or fail on account of capture.
  uint64_t DedupKey = 0;
  if (CaptureSess && Config.CaptureDedup) {
    FNV1aHash KeyHash;
    KeyHash.update(Hash);
    KeyHash.update(Grid.X);
    KeyHash.update(Grid.Y);
    KeyHash.update(Grid.Z);
    KeyHash.update(Block.X);
    KeyHash.update(Block.Y);
    KeyHash.update(Block.Z);
    for (const KernelArg &Arg : Args)
      KeyHash.update(Arg.Bits);
    DedupKey = KeyHash.digest();
    if (DedupKey == 0) // 0 means "capture every launch" to the session
      DedupKey = 1;
  }
  if (!CaptureSess || !CaptureIndex || !CaptureSess->tryReserve(DedupKey))
    return gpuLaunchKernelAsync(*DS.Dev, K, Grid, Block, Args, S, Error);

  capture::PendingRecord Rec;
  Rec.Index = CaptureIndex;
  capture::CaptureArtifact &A = Rec.Artifact;
  A.ModuleId = ModuleId;
  A.KernelSymbol = Info.Symbol;
  A.Arch = DS.Dev->target().Arch;
  A.Grid = Grid;
  A.Block = Block;
  A.ArgBits.reserve(Args.size());
  for (const KernelArg &Arg : Args)
    A.ArgBits.push_back(Arg.Bits);
  A.AnnotatedArgs = Info.AnnotatedArgs;
  A.EnableRCF = Config.EnableRCF;
  A.EnableLaunchBounds = Config.EnableLaunchBounds;
  A.TierMode = Config.Tier;
  A.SpecializationHash = Hash;
  A.PipelineFingerprint =
      jitPipelineFingerprint(CodeTier::Final, symbolicGlobals());
  A.DeviceMemoryBytes = DS.Dev->memory().size();
  // Snapshot candidates: every argument's raw bits (non-pointer values that
  // fall outside any allocation are skipped by snapshotRegions; a scalar
  // that happens to alias an allocation is over-captured, which is safe)
  // plus the device addresses of the kernel closure's globals.
  std::vector<uint64_t> Candidates = A.ArgBits;
  for (const std::string &G : CaptureIndex->closureGlobalNames(Info.Symbol)) {
    DevicePtr Addr = DS.Dev->getSymbolAddress(G);
    if (Addr) {
      A.Globals.push_back({G, Addr});
      Candidates.push_back(Addr);
    }
  }
  A.Regions = capture::snapshotRegions(*DS.Dev, Candidates);

  GpuError E = gpuLaunchKernelAsync(*DS.Dev, K, Grid, Block, Args, S, Error);
  if (E != GpuError::Success) {
    // A failed launch has no output state worth replaying; return the ring
    // slot without persisting anything (counted as capture.skips) and
    // un-mark the shape so a later successful launch can capture it.
    CaptureSess->release(DedupKey);
    return E;
  }
  // The simulator applies memory effects synchronously in host enqueue
  // order, even on async streams, so the post snapshot here is exact.
  capture::fillPostBytes(*DS.Dev, A.Regions);
  CaptureSess->submit(std::move(Rec));
  return E;
}

GpuError JitRuntime::launchKernel(const std::string &Symbol, Dim3 Grid,
                                  Dim3 Block,
                                  const std::vector<KernelArg> &Args,
                                  std::string *Error) {
  return launchKernelOn(0, Symbol, Grid, Block, Args, nullptr, Error);
}

GpuError JitRuntime::launchKernelOn(unsigned DeviceIndex,
                                    const std::string &Symbol, Dim3 Grid,
                                    Dim3 Block,
                                    const std::vector<KernelArg> &Args,
                                    Stream *S, std::string *Error) {
  if (DeviceIndex >= Devices.size()) {
    if (Error)
      *Error = "device index " + std::to_string(DeviceIndex) +
               " out of range (" + std::to_string(Devices.size()) +
               " device(s) attached)";
    return GpuError::InvalidValue;
  }
  DeviceState &DS = *Devices[DeviceIndex];
  if (S && &S->device() != DS.Dev) {
    if (Error)
      *Error = "stream does not belong to device " +
               std::to_string(DeviceIndex);
    return GpuError::InvalidValue;
  }
  trace::Span LaunchSp("jit.launch", "jit");
  Stat.Launches->add();
  if (S)
    Stat.StreamLaunches->add();
  const JitKernelInfo *Info = nullptr;
  {
    std::lock_guard<std::mutex> Lock(RegistryMutex);
    auto KIt = Kernels.find(Symbol);
    if (KIt != Kernels.end())
      Info = &KIt->second; // map nodes are stable; registration precedes launches
  }
  if (!Info) {
    if (Error)
      *Error = "kernel @" + Symbol + " is not registered for JIT";
    return GpuError::NotFound;
  }

  SpecializationKey Key;
  {
    trace::Span Sp("jit.build_key", "jit");
    if (!buildKey(*Info, Block, Args, DS.Dev->target().Arch, Key, Error))
      return GpuError::InvalidValue;
  }
  uint64_t Hash = lookupSpecHash(Symbol, Key);

  // Capture needs the kernel's module index (the pruned-bitcode source) in
  // hand before any device lock is taken: building it may fetch bitcode,
  // and the NVIDIA readback locks the bitcode-holding device. Once built
  // the index is a map lookup; failure just means this launch goes
  // uncaptured.
  std::shared_ptr<const KernelModuleIndex> CaptureIndex;
  if (CaptureSess) {
    CaptureIndex = getOrBuildIndex(Symbol, {}, nullptr);
    if (!CaptureIndex) {
      std::vector<uint8_t> Bitcode;
      if (fetchBitcode(*Info, Bitcode, nullptr) == GpuError::Success)
        CaptureIndex = getOrBuildIndex(Symbol, Bitcode, nullptr);
    }
  }

  // --- Already loaded on this device? ---------------------------------------
  {
    std::lock_guard<std::mutex> Lock(DS.Lock);
    if (auto LIt = DS.Loaded.find(Hash); LIt != DS.Loaded.end())
      return launchLoaded(DS, *LIt->second, *Info, Hash, CaptureIndex, Grid,
                          Block, Args, S, Error);
  }

  // --- Cache lookup + in-flight dedup, atomically ----------------------------
  // Checking the in-flight table and the cache under one lock closes the
  // window where a finished compile has been retired from the table but a
  // racing launch misses the cache: compiles insert into the cache before
  // erasing their table entry.
  std::shared_ptr<InFlightCompile> Job;
  bool Owner = false;
  std::optional<std::vector<uint8_t>> Object;
  bool PromoteServed = false; // serving a Tier-0 entry: promote it
  {
    std::lock_guard<std::mutex> Lock(InFlightMutex);
    auto JIt = InFlight.find(Hash);
    if (JIt != InFlight.end()) {
      Job = JIt->second;
    } else {
      {
        trace::Span Sp("jit.cache_lookup", "jit");
        metrics::ScopedTimer T(*Stat.CacheLookupSeconds);
        if (std::optional<CachedCode> CC = Cache.lookupEntry(Hash)) {
          if (CC->PipelineFingerprint !=
              jitPipelineFingerprint(CC->Tier, symbolicGlobals())) {
            // Produced by a different pipeline composition: recompile
            // instead of serving a stale artifact (the insert replaces
            // the entry in place).
            trace::instant("jit.stale_pipeline_entry");
          } else if (CC->Tier == CodeTier::Tier0) {
            if (Config.Tier) {
              // A Tier-0 baseline (typically persisted by a previous run
              // that exited before promoting): serve it now, promote it
              // in the background.
              Object = std::move(CC->Object);
              PromoteServed = !PromotionsInFlight.count(Hash);
            }
            // Tiering off: treat the baseline as a miss and compile the
            // final artifact on the spot, overwriting the entry.
          } else {
            Object = std::move(CC->Object);
          }
        }
      }
      if (!Object) {
        Job = std::make_shared<InFlightCompile>();
        InFlight.emplace(Hash, Job);
        Owner = true;
      }
    }
  }
  if (PromoteServed)
    scheduleTier1Promotion(*Info, Key, Hash);

  if (!Object) {
    // With tiering on a miss is served by the fast Tier-0 pipeline and the
    // full compile is promoted in the background afterwards.
    const CodeTier MissTier =
        Config.Tier ? CodeTier::Tier0 : CodeTier::Final;
    if (Owner) {
      // The bitcode fetch stays on the launching thread: the NVIDIA path
      // reads __jit_bc_<sym> back from device memory, a device operation.
      // When the kernel's module index is already built the bitcode is
      // not needed at all.
      std::vector<uint8_t> Bitcode;
      bool HaveIndex;
      {
        std::lock_guard<std::mutex> Lock(IndexMutex);
        HaveIndex = ModuleIndexes.count(Symbol) != 0;
      }
      if (!HaveIndex) {
        std::string FetchError;
        GpuError FE = fetchBitcode(*Info, Bitcode, &FetchError);
        if (FE != GpuError::Success) {
          completeJob(Hash, Job, CompileOutcome{FE, FetchError, {}});
          if (Error)
            *Error = FetchError;
          return FE;
        }
      }
      if (Config.Async == JitConfig::AsyncMode::Sync) {
        // Sync: compile inline; the full cost is launch-visible (with
        // tiering on, only the Tier-0 cost).
        CompileOutcome O;
        {
          Timer VisT;
          metrics::ScopedTimer T(*Stat.LaunchBlockedSeconds);
          O = compileSpecialization(Symbol, std::move(Bitcode), Key, Hash,
                                    MissTier);
          if (Config.Tier)
            Stat.Tier0VisibleSeconds->addSeconds(VisT.seconds());
        }
        GpuError CE = O.Err;
        if (CE != GpuError::Success) {
          if (Error)
            *Error = O.Message;
          completeJob(Hash, Job, std::move(O));
          return CE;
        }
        Object = O.Object;
        completeJob(Hash, Job, std::move(O));
        if (Config.Tier)
          scheduleTier1Promotion(*Info, Key, Hash);
      } else {
        Stat.AsyncCompiles->add();
        Timer QueueT;
        Pool->enqueue([this, Info, Symbol, Key, Hash, Job, QueueT, MissTier,
                       BC = std::move(Bitcode)]() mutable {
          Stat.QueueWaitSeconds->addSeconds(QueueT.seconds());
          CompileOutcome O = compileSpecialization(Symbol, std::move(BC),
                                                   Key, Hash, MissTier);
          bool Ok = O.Err == GpuError::Success;
          completeJob(Hash, Job, std::move(O));
          if (Ok && MissTier == CodeTier::Tier0)
            scheduleTier1Promotion(*Info, Key, Hash);
        });
      }
    } else {
      Stat.DedupedWaits->add();
      trace::instant("jit.deduped_wait");
    }

    if (!Object && Config.Async == JitConfig::AsyncMode::Fallback) {
      bool Ready = Job->Future.wait_for(std::chrono::seconds(0)) ==
                   std::future_status::ready;
      if (Ready) {
        const CompileOutcome &O = Job->Future.get();
        if (O.Err != GpuError::Success) {
          if (Error)
            *Error = O.Message;
          return O.Err;
        }
        Object = O.Object;
      } else if (std::optional<GpuError> GE =
                     launchGeneric(DS, *Info, Grid, Block, Args, S, Error)) {
        // Tier-0 launch; the specialized binary is hot-swapped in by a
        // later launch once the background compile lands in the cache.
        return *GE;
      }
      // No generic binary available: degrade to blocking on the future.
    }

    if (!Object) {
      const CompileOutcome *O;
      {
        trace::Span Sp("jit.inflight_wait", "jit");
        Timer VisT;
        metrics::ScopedTimer T(*Stat.LaunchBlockedSeconds);
        O = &Job->Future.get();
        // With tiering on, every in-flight launch-path compile is Tier-0,
        // so the wait is Tier-0-visible time.
        if (Config.Tier)
          Stat.Tier0VisibleSeconds->addSeconds(VisT.seconds());
      }
      if (O->Err != GpuError::Success) {
        if (Error)
          *Error = O->Message;
        return O->Err;
      }
      Object = O->Object;
    }
  }

  // --- Load and launch ---------------------------------------------------------
  return loadAndLaunch(DS, Hash, *Object, *Info, CaptureIndex, Grid, Block,
                       Args, S, Error);
}

int JitRuntime::deviceIndexOf(const Device &D) const {
  for (unsigned I = 0; I != Devices.size(); ++I)
    if (Devices[I]->Dev == &D)
      return static_cast<int>(I);
  return -1;
}

std::optional<TuningDecision> JitRuntime::lookupTuningDecision(uint64_t Key) {
  std::optional<TuningDecision> D = Cache.lookupTuningDecision(Key);
  if (D) {
    Stat.TunerCacheHits->add();
    trace::instant("jit.tuner_cache_hit");
  }
  return D;
}

void JitRuntime::storeTuningDecision(uint64_t Key, const TuningDecision &D) {
  Cache.storeTuningDecision(Key, D);
}

GpuError JitRuntime::installOnTargets(const std::string &Symbol, Dim3 Block,
                                      const std::vector<KernelArg> &Args,
                                      const O3Options *O3Override,
                                      const std::vector<unsigned> &Targets,
                                      bool ReuseCached,
                                      unsigned *CompiledArches,
                                      unsigned *ReusedArches, bool *AnyLoaded,
                                      std::string *Error) {
  const JitKernelInfo *Info = nullptr;
  {
    std::lock_guard<std::mutex> Lock(RegistryMutex);
    auto KIt = Kernels.find(Symbol);
    if (KIt != Kernels.end())
      Info = &KIt->second;
  }
  if (!Info) {
    if (Error)
      *Error = "kernel @" + Symbol + " is not registered for JIT";
    return GpuError::NotFound;
  }

  // One compile (or cache fetch) per distinct architecture in the target
  // set; like the launch path, the same object then serves every device of
  // that arch. Devices are visited in ascending ordinal, one lock at a
  // time (lock order), and the load replaces any previous mapping for the
  // specialization — the Tier-1 hot-swap semantic, so a Tier-0 binary a
  // racing launch installed can never outlive this install.
  std::map<GpuArch, std::pair<uint64_t, std::vector<uint8_t>>> PerArch;
  for (unsigned T : Targets) {
    DeviceState &DS = *Devices[T];
    GpuArch Arch = DS.Dev->target().Arch;
    auto AIt = PerArch.find(Arch);
    if (AIt == PerArch.end()) {
      SpecializationKey Key;
      std::string KeyError;
      if (!buildKey(*Info, Block, Args, Arch, Key, &KeyError)) {
        if (Error)
          *Error = KeyError;
        return GpuError::InvalidValue;
      }
      uint64_t Hash = lookupSpecHash(Symbol, Key);
      std::optional<std::vector<uint8_t>> Object;
      if (ReuseCached) {
        // Only a final-tier entry from the current pipeline qualifies: the
        // warm path must not pin a Tier-0 baseline or a stale artifact —
        // in particular, a retarget racing an in-flight Tier-1 promotion
        // recompiles rather than loading the Tier-0 placeholder.
        if (std::optional<CachedCode> CC = Cache.lookupEntry(Hash))
          if (CC->Tier == CodeTier::Final &&
              CC->PipelineFingerprint ==
                  jitPipelineFingerprint(CodeTier::Final, symbolicGlobals())) {
            Object = std::move(CC->Object);
            if (ReusedArches)
              ++*ReusedArches;
          }
      }
      if (!Object) {
        std::vector<uint8_t> Bitcode;
        bool HaveIndex;
        {
          std::lock_guard<std::mutex> Lock(IndexMutex);
          HaveIndex = ModuleIndexes.count(Symbol) != 0;
        }
        if (!HaveIndex) {
          std::string FetchError;
          GpuError FE = fetchBitcode(*Info, Bitcode, &FetchError);
          if (FE != GpuError::Success) {
            if (Error)
              *Error = FetchError;
            return FE;
          }
        }
        CompileOutcome O = compileSpecialization(
            Symbol, std::move(Bitcode), Key, Hash, CodeTier::Final, O3Override);
        if (O.Err != GpuError::Success) {
          if (Error)
            *Error = O.Message;
          return O.Err;
        }
        Object = std::move(O.Object);
        if (CompiledArches)
          ++*CompiledArches;
      }
      AIt = PerArch.emplace(Arch, std::make_pair(Hash, std::move(*Object)))
                .first;
    }
    const uint64_t Hash = AIt->second.first;
    const std::vector<uint8_t> &Object = AIt->second.second;
    unsigned Origin = recordLoadOrigin(Hash, T);
    std::lock_guard<std::mutex> Lock(DS.Lock);
    LoadedKernel *K = nullptr;
    std::string LoadError;
    trace::Span Sp("jit.module_load", "jit");
    if (gpuModuleLoad(*DS.Dev, &K, Object, &LoadError) != GpuError::Success) {
      if (Error)
        *Error = "failed to load JIT object for @" + Info->Symbol + ": " +
                 LoadError;
      return GpuError::LaunchFailure;
    }
    DS.Loaded[Hash] = K;
    if (AnyLoaded)
      *AnyLoaded = true;
    if (T != Origin) {
      Stat.CrossDeviceLoads->add();
      Stat.PerArchCompileReuse->add();
    }
  }
  return GpuError::Success;
}

GpuError JitRuntime::installFinalTier(const std::string &Symbol, Dim3 Block,
                                      const std::vector<KernelArg> &Args,
                                      const O3Options *O3Override,
                                      int DeviceIndex, bool ReuseCached,
                                      std::string *Error) {
  if (DeviceIndex >= static_cast<int>(Devices.size())) {
    Stat.TunerErrors->add();
    if (Error)
      *Error = "device index " + std::to_string(DeviceIndex) +
               " out of range (" + std::to_string(Devices.size()) +
               " device(s) attached)";
    return GpuError::InvalidValue;
  }
  std::vector<unsigned> Targets;
  if (DeviceIndex >= 0)
    Targets.push_back(static_cast<unsigned>(DeviceIndex));
  else
    for (unsigned I = 0; I != Devices.size(); ++I)
      Targets.push_back(I);

  bool AnyLoaded = false;
  GpuError E = installOnTargets(Symbol, Block, Args, O3Override, Targets,
                                ReuseCached, nullptr, nullptr, &AnyLoaded,
                                Error);
  if (E != GpuError::Success) {
    Stat.TunerErrors->add();
    return E;
  }
  if (AnyLoaded && O3Override) {
    // One promotion per tuning decision, however many devices (and arches)
    // the install reached.
    Stat.TunerPromotions->add();
    trace::instant("jit.tuner_promotion");
  }
  return GpuError::Success;
}

GpuError JitRuntime::retargetKernel(const std::string &Symbol, Dim3 Block,
                                    const std::vector<KernelArg> &Args,
                                    unsigned DeviceIndex, bool *ReusedCache,
                                    std::string *Error) {
  if (DeviceIndex >= Devices.size()) {
    if (Error)
      *Error = "device index " + std::to_string(DeviceIndex) +
               " out of range (" + std::to_string(Devices.size()) +
               " device(s) attached)";
    return GpuError::InvalidValue;
  }
  unsigned Compiled = 0, Reused = 0;
  GpuError E = installOnTargets(Symbol, Block, Args, /*O3Override=*/nullptr,
                                {DeviceIndex}, /*ReuseCached=*/true, &Compiled,
                                &Reused, /*AnyLoaded=*/nullptr, Error);
  if (E != GpuError::Success)
    return E;
  Stat.RetargetCompiles->add(Compiled);
  Stat.RetargetCacheReuse->add(Reused);
  if (ReusedCache)
    *ReusedCache = Reused > 0;
  trace::instant("sched.retarget");
  return GpuError::Success;
}

void JitRuntime::withDeviceLocked(
    unsigned DeviceIndex, const std::function<void(Device &)> &Fn) {
  DeviceState &DS = *Devices[DeviceIndex];
  std::lock_guard<std::mutex> Lock(DS.Lock);
  Fn(*DS.Dev);
}
