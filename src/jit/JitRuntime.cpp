//===- JitRuntime.cpp - the Proteus JIT runtime library ---------------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//

#include "jit/JitRuntime.h"

#include "bitcode/Bitcode.h"
#include "codegen/Compiler.h"
#include "ir/Context.h"
#include "ir/Module.h"
#include "ir/Verifier.h"
#include "support/Timer.h"

#include <cstdlib>
#include "transforms/SpecializeArgs.h"

using namespace proteus;
using namespace proteus::gpu;

JitConfig JitConfig::fromEnvironment() {
  JitConfig C;
  if (std::getenv("PROTEUS_NO_RCF"))
    C.EnableRCF = false;
  if (std::getenv("PROTEUS_NO_LAUNCH_BOUNDS"))
    C.EnableLaunchBounds = false;
  if (const char *Dir = std::getenv("PROTEUS_CACHE_DIR"))
    C.CacheDir = Dir;
  C.Limits = CacheLimits::fromEnvironment();
  return C;
}

JitRuntime::JitRuntime(Device &Dev, uint64_t ModuleId, JitConfig Config)
    : Dev(Dev), ModuleId(ModuleId), Config(Config),
      Cache(Config.UseMemoryCache, Config.UsePersistentCache,
            Config.CacheDir, Config.Limits) {}

void JitRuntime::registerKernel(JitKernelInfo Info) {
  Kernels[Info.Symbol] = std::move(Info);
}

void JitRuntime::registerVar(const std::string &Symbol, DevicePtr Address) {
  GlobalAddresses[Symbol] = Address;
}

void JitRuntime::resetInMemoryState() {
  Cache.clearMemory();
  Loaded.clear();
}

GpuError JitRuntime::launchKernel(const std::string &Symbol, Dim3 Grid,
                                  Dim3 Block,
                                  const std::vector<KernelArg> &Args,
                                  std::string *Error) {
  ++Stats.Launches;
  auto KIt = Kernels.find(Symbol);
  if (KIt == Kernels.end()) {
    if (Error)
      *Error = "kernel @" + Symbol + " is not registered for JIT";
    return GpuError::NotFound;
  }
  const JitKernelInfo &Info = KIt->second;

  // --- Build the specialization key ----------------------------------------
  SpecializationKey Key;
  Key.ModuleId = ModuleId;
  Key.KernelSymbol = Symbol;
  Key.Arch = Dev.target().Arch;
  if (Config.EnableRCF) {
    for (uint32_t OneBased : Info.AnnotatedArgs) {
      uint32_t Idx = OneBased - 1;
      if (Idx < Args.size())
        Key.FoldedArgs.push_back(RuntimeArgValue{Idx, Args[Idx].Bits});
    }
  }
  if (Config.EnableLaunchBounds)
    Key.LaunchBoundsThreads = static_cast<uint32_t>(Block.count());
  uint64_t Hash = computeSpecializationHash(Key);

  // --- Already loaded? -------------------------------------------------------
  if (auto LIt = Loaded.find(Hash); LIt != Loaded.end())
    return gpuLaunchKernel(Dev, *LIt->second, Grid, Block, Args, Error);

  // --- Cache lookup -----------------------------------------------------------
  Timer LookupT;
  std::optional<std::vector<uint8_t>> Object = Cache.lookup(Hash);
  Stats.CacheLookupSeconds += LookupT.seconds();

  if (!Object) {
    // --- Compile the specialization -----------------------------------------
    ++Stats.Compilations;

    // (1) Obtain bitcode.
    Timer FetchT;
    std::vector<uint8_t> Bitcode;
    if (!Info.HostBitcode.empty()) {
      Bitcode = Info.HostBitcode;
    } else if (Info.DeviceBitcodeAddr) {
      Bitcode.resize(Info.DeviceBitcodeSize);
      GpuError E = gpuMemcpyDtoH(Dev, Bitcode.data(),
                                 Info.DeviceBitcodeAddr,
                                 Info.DeviceBitcodeSize);
      if (E != GpuError::Success) {
        if (Error)
          *Error = "failed to read __jit_bc_" + Symbol +
                   " from device memory";
        return E;
      }
    } else {
      if (Error)
        *Error = "no bitcode registered for @" + Symbol;
      return GpuError::InvalidValue;
    }
    Stats.BitcodeFetchSeconds += FetchT.seconds();

    // (2) Parse bitcode.
    Timer ParseT;
    pir::Context Ctx;
    proteus::BitcodeReadResult BR = readBitcode(Ctx, Bitcode);
    Stats.BitcodeParseSeconds += ParseT.seconds();
    if (!BR) {
      if (Error)
        *Error = "corrupt kernel bitcode for @" + Symbol + ": " + BR.Error;
      return GpuError::InvalidValue;
    }
    pir::Module &M = *BR.M;
    pir::Function *F = M.getFunction(Symbol);
    if (!F || !F->isKernel()) {
      if (Error)
        *Error = "bitcode for @" + Symbol + " does not contain the kernel";
      return GpuError::InvalidValue;
    }
    if (Config.VerifyIR) {
      pir::VerifyResult VR = pir::verifyModule(M);
      if (!VR.ok()) {
        if (Error)
          *Error = "kernel bitcode for @" + Symbol +
                   " failed verification:\n" + VR.message();
        return GpuError::InvalidValue;
      }
    }

    // (3) Link device globals: replace references with their resolved
    // device addresses so JIT code shares state with AOT code.
    Timer LinkT;
    for (const auto &G : M.globals()) {
      if (!G->hasUses())
        continue;
      auto AIt = GlobalAddresses.find(G->getName());
      DevicePtr Addr =
          AIt != GlobalAddresses.end() ? AIt->second : 0;
      if (!Addr) {
        // Fall back to the vendor runtime's symbol table.
        gpuGetSymbolAddress(Dev, &Addr, G->getName());
      }
      if (!Addr) {
        if (Error)
          *Error = "cannot link device global @" + G->getName();
        return GpuError::NotFound;
      }
      G->replaceAllUsesWith(Ctx.getConstantPtr(Addr));
    }
    Stats.LinkGlobalsSeconds += LinkT.seconds();

    // (4) Specialize.
    Timer SpecT;
    if (Config.EnableRCF && !Key.FoldedArgs.empty())
      specializeArguments(*F, Key.FoldedArgs);
    if (Config.EnableLaunchBounds)
      specializeLaunchBounds(*F, Key.LaunchBoundsThreads);
    Stats.SpecializeSeconds += SpecT.seconds();

    // (5) Aggressive O3.
    Timer OptT;
    runO3(M, Config.O3);
    Stats.OptimizeSeconds += OptT.seconds();

    // (6) Backend (includes the PTX assembler detour on nvptx-sim).
    Timer BackT;
    BackendStats BS;
    Object = compileKernelToObject(*F, Dev.target(), &BS);
    Stats.BackendSeconds += BackT.seconds();

    Cache.insert(Hash, *Object);
  }

  // --- Load and launch ---------------------------------------------------------
  LoadedKernel *K = nullptr;
  std::string LoadError;
  GpuError E = gpuModuleLoad(Dev, &K, *Object, &LoadError);
  if (E != GpuError::Success) {
    if (Error)
      *Error = "failed to load JIT object for @" + Symbol + ": " + LoadError;
    return E;
  }
  Loaded[Hash] = K;
  return gpuLaunchKernel(Dev, *K, Grid, Block, Args, Error);
}
