//===- JitRuntime.cpp - the Proteus JIT runtime library ---------------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//

#include "jit/JitRuntime.h"

#include "bitcode/Bitcode.h"
#include "codegen/Compiler.h"
#include "ir/Context.h"
#include "ir/Module.h"
#include "ir/Verifier.h"
#include "support/Timer.h"

#include <chrono>
#include <cstdlib>
#include <future>
#include "transforms/SpecializeArgs.h"

using namespace proteus;
using namespace proteus::gpu;

JitConfig JitConfig::fromEnvironment() {
  JitConfig C;
  if (std::getenv("PROTEUS_NO_RCF"))
    C.EnableRCF = false;
  if (std::getenv("PROTEUS_NO_LAUNCH_BOUNDS"))
    C.EnableLaunchBounds = false;
  if (const char *Dir = std::getenv("PROTEUS_CACHE_DIR"))
    C.CacheDir = Dir;
  if (const char *Async = std::getenv("PROTEUS_ASYNC")) {
    std::string S = Async;
    if (S == "block")
      C.Async = AsyncMode::Block;
    else if (S == "fallback")
      C.Async = AsyncMode::Fallback;
    else
      C.Async = AsyncMode::Sync;
  }
  if (const char *W = std::getenv("PROTEUS_ASYNC_WORKERS"))
    if (unsigned N = static_cast<unsigned>(std::strtoul(W, nullptr, 10)))
      C.AsyncWorkers = N;
  C.Limits = CacheLimits::fromEnvironment();
  return C;
}

const char *proteus::asyncModeName(JitConfig::AsyncMode M) {
  switch (M) {
  case JitConfig::AsyncMode::Sync:
    return "sync";
  case JitConfig::AsyncMode::Block:
    return "block";
  case JitConfig::AsyncMode::Fallback:
    return "fallback";
  }
  return "unknown";
}

/// Result of one specialization compile, delivered to every waiter through
/// the in-flight table's shared future.
struct JitRuntime::CompileOutcome {
  GpuError Err = GpuError::Success;
  std::string Message;
  std::vector<uint8_t> Object;
};

/// One in-flight compilation: the owner fulfils the promise (inline in Sync
/// mode, on a worker otherwise); any number of launches hold the shared
/// future.
struct JitRuntime::InFlightCompile {
  std::promise<CompileOutcome> Promise;
  std::shared_future<CompileOutcome> Future{Promise.get_future().share()};
};

JitRuntime::JitRuntime(Device &Dev, uint64_t ModuleId, JitConfig Config)
    : Dev(Dev), ModuleId(ModuleId), Config(Config),
      Cache(Config.UseMemoryCache, Config.UsePersistentCache,
            Config.CacheDir, Config.Limits) {
  if (this->Config.Async != JitConfig::AsyncMode::Sync)
    Pool = std::make_unique<ThreadPool>(
        this->Config.AsyncWorkers ? this->Config.AsyncWorkers : 1u);
}

JitRuntime::~JitRuntime() {
  if (Pool)
    Pool->shutdown(); // drain compiles that still reference this runtime
}

void JitRuntime::registerKernel(JitKernelInfo Info) {
  // In Fallback mode the generic binary is loaded eagerly, at registration
  // time, so the tier-0 path of a cold launch is a plain kernel launch with
  // no module load on it.
  if (Config.Async == JitConfig::AsyncMode::Fallback &&
      !Info.GenericObject.empty()) {
    std::lock_guard<std::mutex> Lock(DevMutex);
    if (!GenericLoaded.count(Info.Symbol)) {
      LoadedKernel *K = nullptr;
      if (gpuModuleLoad(Dev, &K, Info.GenericObject, nullptr) ==
          GpuError::Success)
        GenericLoaded[Info.Symbol] = K;
      // On failure fall back to the lazy load in launchGeneric.
    }
  }
  std::lock_guard<std::mutex> Lock(RegistryMutex);
  Kernels[Info.Symbol] = std::move(Info);
}

void JitRuntime::registerVar(const std::string &Symbol, DevicePtr Address) {
  std::lock_guard<std::mutex> Lock(RegistryMutex);
  GlobalAddresses[Symbol] = Address;
}

JitRuntimeStats JitRuntime::stats() const {
  std::lock_guard<std::mutex> Lock(StatsMutex);
  return Stats;
}

void JitRuntime::drain() {
  if (Pool)
    Pool->waitIdle();
}

void JitRuntime::resetInMemoryState() {
  drain();
  {
    std::lock_guard<std::mutex> Lock(DevMutex);
    Loaded.clear();
    GenericLoaded.clear();
  }
  Cache.clearMemory();
}

SpecializationKey
JitRuntime::buildKey(const JitKernelInfo &Info, Dim3 Block,
                     const std::vector<KernelArg> &Args) const {
  SpecializationKey Key;
  Key.ModuleId = ModuleId;
  Key.KernelSymbol = Info.Symbol;
  Key.Arch = Dev.target().Arch;
  if (Config.EnableRCF) {
    for (uint32_t OneBased : Info.AnnotatedArgs) {
      uint32_t Idx = OneBased - 1;
      if (Idx < Args.size())
        Key.FoldedArgs.push_back(RuntimeArgValue{Idx, Args[Idx].Bits});
    }
  }
  if (Config.EnableLaunchBounds)
    Key.LaunchBoundsThreads = static_cast<uint32_t>(Block.count());
  return Key;
}

GpuError JitRuntime::fetchBitcode(const JitKernelInfo &Info,
                                  std::vector<uint8_t> &Out,
                                  std::string *Error) {
  Timer FetchT;
  if (!Info.HostBitcode.empty()) {
    Out = Info.HostBitcode;
  } else if (Info.DeviceBitcodeAddr) {
    Out.resize(Info.DeviceBitcodeSize);
    GpuError E;
    {
      std::lock_guard<std::mutex> Lock(DevMutex);
      E = gpuMemcpyDtoH(Dev, Out.data(), Info.DeviceBitcodeAddr,
                        Info.DeviceBitcodeSize);
    }
    if (E != GpuError::Success) {
      if (Error)
        *Error = "failed to read __jit_bc_" + Info.Symbol +
                 " from device memory";
      return E;
    }
  } else {
    if (Error)
      *Error = "no bitcode registered for @" + Info.Symbol;
    return GpuError::InvalidValue;
  }
  std::lock_guard<std::mutex> Lock(StatsMutex);
  Stats.BitcodeFetchSeconds += FetchT.seconds();
  return GpuError::Success;
}

JitRuntime::CompileOutcome
JitRuntime::compileSpecialization(const std::string &Symbol,
                                  std::vector<uint8_t> Bitcode,
                                  const SpecializationKey &Key,
                                  uint64_t Hash) {
  CompileOutcome Out;
  {
    std::lock_guard<std::mutex> Lock(StatsMutex);
    ++Stats.Compilations;
  }

  // (1) Parse bitcode.
  Timer ParseT;
  pir::Context Ctx;
  proteus::BitcodeReadResult BR = readBitcode(Ctx, Bitcode);
  double ParseSeconds = ParseT.seconds();
  if (!BR) {
    Out.Err = GpuError::InvalidValue;
    Out.Message = "corrupt kernel bitcode for @" + Symbol + ": " + BR.Error;
    std::lock_guard<std::mutex> Lock(StatsMutex);
    Stats.BitcodeParseSeconds += ParseSeconds;
    return Out;
  }
  pir::Module &M = *BR.M;
  pir::Function *F = M.getFunction(Symbol);
  if (!F || !F->isKernel()) {
    Out.Err = GpuError::InvalidValue;
    Out.Message = "bitcode for @" + Symbol + " does not contain the kernel";
    return Out;
  }
  if (Config.VerifyIR) {
    pir::VerifyResult VR = pir::verifyModule(M);
    if (!VR.ok()) {
      Out.Err = GpuError::InvalidValue;
      Out.Message = "kernel bitcode for @" + Symbol +
                    " failed verification:\n" + VR.message();
      return Out;
    }
  }

  // (2) Link device globals: replace references with their resolved device
  // addresses so JIT code shares state with AOT code. Addresses registered
  // through __jit_register_var are snapshotted; unknown symbols fall back
  // to the vendor runtime's table (a device operation, taken under the
  // device lock).
  std::map<std::string, DevicePtr> Globals;
  {
    std::lock_guard<std::mutex> Lock(RegistryMutex);
    Globals = GlobalAddresses;
  }
  Timer LinkT;
  for (const auto &G : M.globals()) {
    if (!G->hasUses())
      continue;
    auto AIt = Globals.find(G->getName());
    DevicePtr Addr = AIt != Globals.end() ? AIt->second : 0;
    if (!Addr) {
      std::lock_guard<std::mutex> Lock(DevMutex);
      gpuGetSymbolAddress(Dev, &Addr, G->getName());
    }
    if (!Addr) {
      Out.Err = GpuError::NotFound;
      Out.Message = "cannot link device global @" + G->getName();
      return Out;
    }
    G->replaceAllUsesWith(Ctx.getConstantPtr(Addr));
  }
  double LinkSeconds = LinkT.seconds();

  // (3) Specialize.
  Timer SpecT;
  if (Config.EnableRCF && !Key.FoldedArgs.empty())
    specializeArguments(*F, Key.FoldedArgs);
  if (Config.EnableLaunchBounds)
    specializeLaunchBounds(*F, Key.LaunchBoundsThreads);
  double SpecSeconds = SpecT.seconds();

  // (4) Aggressive O3.
  Timer OptT;
  runO3(M, Config.O3);
  double OptSeconds = OptT.seconds();

  // (5) Backend (includes the PTX assembler detour on nvptx-sim).
  Timer BackT;
  BackendStats BS;
  Out.Object = compileKernelToObject(*F, Dev.target(), &BS);
  double BackSeconds = BackT.seconds();

  // (6) Publish: insert into both cache levels before the in-flight entry
  // is retired, so no launch can miss both.
  Cache.insert(Hash, Out.Object);

  std::lock_guard<std::mutex> Lock(StatsMutex);
  Stats.BitcodeParseSeconds += ParseSeconds;
  Stats.LinkGlobalsSeconds += LinkSeconds;
  Stats.SpecializeSeconds += SpecSeconds;
  Stats.OptimizeSeconds += OptSeconds;
  Stats.BackendSeconds += BackSeconds;
  return Out;
}

void JitRuntime::completeJob(uint64_t Hash,
                             const std::shared_ptr<InFlightCompile> &Job,
                             CompileOutcome Outcome) {
  // Publish the result to waiters first; the cache entry (on success) was
  // already inserted, so a launch that finds neither the in-flight job nor
  // the table entry still finds the object in the cache.
  Job->Promise.set_value(std::move(Outcome));
  std::lock_guard<std::mutex> Lock(InFlightMutex);
  InFlight.erase(Hash);
}

std::optional<GpuError>
JitRuntime::launchGeneric(const JitKernelInfo &Info, Dim3 Grid, Dim3 Block,
                          const std::vector<KernelArg> &Args,
                          std::string *Error) {
  std::lock_guard<std::mutex> Lock(DevMutex);
  LoadedKernel *K = nullptr;
  if (auto It = GenericLoaded.find(Info.Symbol); It != GenericLoaded.end()) {
    K = It->second;
  } else {
    if (Info.GenericObject.empty())
      return std::nullopt; // no tier-0 binary: caller must wait instead
    std::string LoadErr;
    if (gpuModuleLoad(Dev, &K, Info.GenericObject, &LoadErr) !=
        GpuError::Success) {
      if (Error)
        *Error = "failed to load generic binary for @" + Info.Symbol + ": " +
                 LoadErr;
      return GpuError::LaunchFailure;
    }
    GenericLoaded[Info.Symbol] = K;
  }
  {
    std::lock_guard<std::mutex> SLock(StatsMutex);
    ++Stats.FallbackLaunches;
  }
  return gpuLaunchKernel(Dev, *K, Grid, Block, Args, Error);
}

GpuError JitRuntime::loadAndLaunch(uint64_t Hash,
                                   const std::vector<uint8_t> &Object,
                                   const std::string &Symbol, Dim3 Grid,
                                   Dim3 Block,
                                   const std::vector<KernelArg> &Args,
                                   std::string *Error) {
  std::lock_guard<std::mutex> Lock(DevMutex);
  LoadedKernel *K = nullptr;
  if (auto It = Loaded.find(Hash); It != Loaded.end()) {
    K = It->second;
  } else {
    std::string LoadError;
    if (gpuModuleLoad(Dev, &K, Object, &LoadError) != GpuError::Success) {
      if (Error)
        *Error = "failed to load JIT object for @" + Symbol + ": " +
                 LoadError;
      return GpuError::LaunchFailure;
    }
    Loaded[Hash] = K;
  }
  return gpuLaunchKernel(Dev, *K, Grid, Block, Args, Error);
}

GpuError JitRuntime::launchKernel(const std::string &Symbol, Dim3 Grid,
                                  Dim3 Block,
                                  const std::vector<KernelArg> &Args,
                                  std::string *Error) {
  {
    std::lock_guard<std::mutex> Lock(StatsMutex);
    ++Stats.Launches;
  }
  const JitKernelInfo *Info = nullptr;
  {
    std::lock_guard<std::mutex> Lock(RegistryMutex);
    auto KIt = Kernels.find(Symbol);
    if (KIt != Kernels.end())
      Info = &KIt->second; // map nodes are stable; registration precedes launches
  }
  if (!Info) {
    if (Error)
      *Error = "kernel @" + Symbol + " is not registered for JIT";
    return GpuError::NotFound;
  }

  SpecializationKey Key = buildKey(*Info, Block, Args);
  uint64_t Hash = computeSpecializationHash(Key);

  // --- Already loaded? -------------------------------------------------------
  {
    std::lock_guard<std::mutex> Lock(DevMutex);
    if (auto LIt = Loaded.find(Hash); LIt != Loaded.end())
      return gpuLaunchKernel(Dev, *LIt->second, Grid, Block, Args, Error);
  }

  // --- Cache lookup + in-flight dedup, atomically ----------------------------
  // Checking the in-flight table and the cache under one lock closes the
  // window where a finished compile has been retired from the table but a
  // racing launch misses the cache: compiles insert into the cache before
  // erasing their table entry.
  std::shared_ptr<InFlightCompile> Job;
  bool Owner = false;
  std::optional<std::vector<uint8_t>> Object;
  {
    std::lock_guard<std::mutex> Lock(InFlightMutex);
    auto JIt = InFlight.find(Hash);
    if (JIt != InFlight.end()) {
      Job = JIt->second;
    } else {
      Timer LookupT;
      Object = Cache.lookup(Hash);
      double LookupSeconds = LookupT.seconds();
      {
        std::lock_guard<std::mutex> SLock(StatsMutex);
        Stats.CacheLookupSeconds += LookupSeconds;
      }
      if (!Object) {
        Job = std::make_shared<InFlightCompile>();
        InFlight.emplace(Hash, Job);
        Owner = true;
      }
    }
  }

  if (!Object) {
    if (Owner) {
      // The bitcode fetch stays on the launching thread: the NVIDIA path
      // reads __jit_bc_<sym> back from device memory, a device operation.
      std::vector<uint8_t> Bitcode;
      std::string FetchError;
      GpuError FE = fetchBitcode(*Info, Bitcode, &FetchError);
      if (FE != GpuError::Success) {
        completeJob(Hash, Job, CompileOutcome{FE, FetchError, {}});
        if (Error)
          *Error = FetchError;
        return FE;
      }
      if (!Pool) {
        // Sync: compile inline; the full cost is launch-visible.
        Timer InlineT;
        CompileOutcome O =
            compileSpecialization(Symbol, std::move(Bitcode), Key, Hash);
        double InlineSeconds = InlineT.seconds();
        {
          std::lock_guard<std::mutex> SLock(StatsMutex);
          Stats.LaunchBlockedSeconds += InlineSeconds;
        }
        GpuError CE = O.Err;
        if (CE != GpuError::Success) {
          if (Error)
            *Error = O.Message;
          completeJob(Hash, Job, std::move(O));
          return CE;
        }
        Object = O.Object;
        completeJob(Hash, Job, std::move(O));
      } else {
        {
          std::lock_guard<std::mutex> SLock(StatsMutex);
          ++Stats.AsyncCompiles;
        }
        Timer QueueT;
        Pool->enqueue([this, Symbol, Key, Hash, Job, QueueT,
                       BC = std::move(Bitcode)]() mutable {
          double Queued = QueueT.seconds();
          {
            std::lock_guard<std::mutex> SLock(StatsMutex);
            Stats.QueueWaitSeconds += Queued;
          }
          completeJob(Hash, Job,
                      compileSpecialization(Symbol, std::move(BC), Key,
                                            Hash));
        });
      }
    } else {
      std::lock_guard<std::mutex> SLock(StatsMutex);
      ++Stats.DedupedWaits;
    }

    if (!Object && Config.Async == JitConfig::AsyncMode::Fallback) {
      bool Ready = Job->Future.wait_for(std::chrono::seconds(0)) ==
                   std::future_status::ready;
      if (Ready) {
        const CompileOutcome &O = Job->Future.get();
        if (O.Err != GpuError::Success) {
          if (Error)
            *Error = O.Message;
          return O.Err;
        }
        Object = O.Object;
      } else if (std::optional<GpuError> GE =
                     launchGeneric(*Info, Grid, Block, Args, Error)) {
        // Tier-0 launch; the specialized binary is hot-swapped in by a
        // later launch once the background compile lands in the cache.
        return *GE;
      }
      // No generic binary available: degrade to blocking on the future.
    }

    if (!Object) {
      Timer WaitT;
      const CompileOutcome &O = Job->Future.get();
      double Waited = WaitT.seconds();
      {
        std::lock_guard<std::mutex> SLock(StatsMutex);
        Stats.LaunchBlockedSeconds += Waited;
      }
      if (O.Err != GpuError::Success) {
        if (Error)
          *Error = O.Message;
        return O.Err;
      }
      Object = O.Object;
    }
  }

  // --- Load and launch ---------------------------------------------------------
  return loadAndLaunch(Hash, *Object, Symbol, Grid, Block, Args, Error);
}
