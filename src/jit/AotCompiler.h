//===- AotCompiler.h - AOT split compilation with JIT extensions -*- C++ -*-===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ahead-of-time "split compilation" of a device module (paper section 2),
/// with the Proteus plugin extensions of section 3.2 when enabled:
///
///  * Device path: run the O3 pipeline and the backend per kernel, producing
///    the device image. For every annotate("jit", ...) kernel, extract the
///    *unoptimized* kernel bitcode (kernel + transitive callees + globals)
///    and embed it — on amdgcn-sim into a named image section
///    .jit.<kernel>, on nvptx-sim as a data-segment device global
///    __jit_bc_<kernel> that the JIT runtime must read back from device
///    memory before compiling (the extra cost the paper measures).
///
///  * Host path: record which kernels have their launches redirected to
///    __jit_launch_kernel (LoadedProgram performs that dispatch) and which
///    device globals must be registered with the JIT runtime
///    (__jit_register_var).
///
//===----------------------------------------------------------------------===//

#ifndef PROTEUS_JIT_AOTCOMPILER_H
#define PROTEUS_JIT_AOTCOMPILER_H

#include "codegen/Compiler.h"
#include "transforms/O3Pipeline.h"

#include <map>
#include <memory>
#include <set>

namespace pir {
class Module;
} // namespace pir

namespace proteus {

/// AOT compilation options.
struct AotOptions {
  GpuArch Arch = GpuArch::AmdGcnSim;
  /// Enable the Proteus plugin extensions (annotation parsing, bitcode
  /// extraction, launch redirection).
  bool EnableProteusExtensions = false;
  O3Options O3;
};

/// A device global carried in the image.
struct ImageGlobal {
  std::string Name;
  uint64_t Bytes = 0;
  std::vector<uint8_t> Init;
};

/// The device image embedded into the (conceptual) host executable.
struct DeviceImage {
  GpuArch Arch = GpuArch::AmdGcnSim;
  /// AOT-compiled kernel binaries by symbol.
  std::map<std::string, std::vector<uint8_t>> KernelObjects;
  /// amdgcn-sim: named sections ".jit.<symbol>" holding kernel bitcode,
  /// directly readable by the host-side JIT runtime.
  std::map<std::string, std::vector<uint8_t>> JitSections;
  /// nvptx-sim: data-segment globals "__jit_bc_<symbol>"; uploaded to device
  /// memory at load, pulled back by the JIT runtime before compilation.
  std::map<std::string, std::vector<uint8_t>> JitDataGlobals;
  std::vector<ImageGlobal> Globals;

  uint64_t totalBytes() const;
};

/// Wall-clock cost breakdown of the AOT build (Figure 5's measurements).
struct AotStats {
  double FrontendSeconds = 0;   // parsing/IR construction (host+device)
  double OptimizeSeconds = 0;   // O3 pipeline
  double BackendSeconds = 0;    // per-kernel code generation
  double ExtensionSeconds = 0;  // Proteus plugin: annotations + extraction
  double LinkSeconds = 0;       // static linking of the JIT runtime library

  double total() const {
    return FrontendSeconds + OptimizeSeconds + BackendSeconds +
           ExtensionSeconds + LinkSeconds;
  }
};

/// The build product: image + host-side dispatch metadata.
struct CompiledProgram {
  DeviceImage Image;
  uint64_t ModuleId = 0;
  /// Kernels whose launches were redirected to the JIT entry point.
  std::set<std::string> JitKernels;
  /// Annotation argument indices per JIT kernel (1-based, as written).
  std::map<std::string, std::vector<uint32_t>> JitArgIndices;
  AotStats Stats;
};

/// Extracts a standalone module containing \p KernelName, its transitive
/// callees and every referenced global from \p Source (used for bitcode
/// extraction; exposed for testing).
std::unique_ptr<pir::Module> extractKernelModule(pir::Module &Source,
                                                 const std::string &KernelName);

/// Runs split AOT compilation of \p Source. \p Source is not modified.
CompiledProgram aotCompile(pir::Module &Source, const AotOptions &Options);

} // namespace proteus

#endif // PROTEUS_JIT_AOTCOMPILER_H
