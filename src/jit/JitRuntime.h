//===- JitRuntime.h - the Proteus JIT runtime library -----------*- C++ -*-===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The JIT compilation runtime library of paper section 3.3 — the component
/// reached through __jit_launch_kernel. Per launch it:
///
///   1. hashes (module id, kernel symbol, designated argument values,
///      launch-bounds threads) into the specialization key;
///   2. serves from the in-memory cache, then the persistent cache;
///   3. on a miss: obtains the kernel's bitcode (host-side .jit.<sym>
///      section on amdgcn-sim; device-memory readback of __jit_bc_<sym> on
///      nvptx-sim), links device globals to their runtime-resolved
///      addresses, applies the enabled specializations (RCF, LB), runs the
///      aggressive O3 pipeline, invokes the backend (plus the PTX assembler
///      step on nvptx-sim), inserts the object into both cache levels;
///   4. loads and launches the binary.
///
/// Every specialization knob can be disabled independently, which is how
/// the paper's None/LB/RCF/LB+RCF analysis modes (section 4.5) and the
/// overhead experiment (Figure 6) are produced.
///
//===----------------------------------------------------------------------===//

#ifndef PROTEUS_JIT_JITRUNTIME_H
#define PROTEUS_JIT_JITRUNTIME_H

#include "gpu/Runtime.h"
#include "jit/CodeCache.h"
#include "transforms/O3Pipeline.h"

#include <map>
#include <memory>

namespace proteus {

/// Runtime configuration (environment-variable equivalents).
struct JitConfig {
  bool EnableRCF = true;          // runtime constant folding of arguments
  bool EnableLaunchBounds = true; // launch-bounds specialization
  bool UseMemoryCache = true;
  bool UsePersistentCache = true;
  std::string CacheDir = "proteus-jit-cache";
  /// Size limits + eviction policy (paper section 3.4); defaults unlimited.
  CacheLimits Limits;
  /// Verify the deserialized kernel IR before specializing (defensive mode
  /// for untrusted persistent caches / debugging; off by default).
  bool VerifyIR = false;
  O3Options O3;

  /// Applies the PROTEUS_* environment variables on top of the defaults
  /// (PROTEUS_NO_RCF, PROTEUS_NO_LAUNCH_BOUNDS, PROTEUS_CACHE_DIR and the
  /// CacheLimits variables).
  static JitConfig fromEnvironment();
};

/// Cumulative runtime accounting.
struct JitRuntimeStats {
  uint64_t Launches = 0;
  uint64_t Compilations = 0;
  double BitcodeFetchSeconds = 0; // incl. simulated device readback (NVIDIA)
  double BitcodeParseSeconds = 0;
  double LinkGlobalsSeconds = 0;
  double SpecializeSeconds = 0;
  double OptimizeSeconds = 0;
  double BackendSeconds = 0;
  double CacheLookupSeconds = 0;

  double totalCompileSeconds() const {
    return BitcodeFetchSeconds + BitcodeParseSeconds + LinkGlobalsSeconds +
           SpecializeSeconds + OptimizeSeconds + BackendSeconds;
  }
};

/// Where a JIT kernel's bitcode lives.
struct JitKernelInfo {
  std::string Symbol;
  std::vector<uint32_t> AnnotatedArgs; // 1-based indices to fold
  /// amdgcn-sim: bitcode readable directly from the host-side image.
  std::vector<uint8_t> HostBitcode;
  /// nvptx-sim: device address/size of __jit_bc_<symbol> to read back.
  gpu::DevicePtr DeviceBitcodeAddr = 0;
  uint64_t DeviceBitcodeSize = 0;
};

/// The runtime library instance bound to one device.
class JitRuntime {
public:
  JitRuntime(gpu::Device &Dev, uint64_t ModuleId, JitConfig Config);

  /// Registers a JIT-annotated kernel (done by program load).
  void registerKernel(JitKernelInfo Info);

  /// __jit_register_var: makes a device global's address resolvable when
  /// linking JIT modules.
  void registerVar(const std::string &Symbol, gpu::DevicePtr Address);

  /// __jit_launch_kernel: the entry point replacing direct kernel launches.
  gpu::GpuError launchKernel(const std::string &Symbol, gpu::Dim3 Grid,
                             gpu::Dim3 Block,
                             const std::vector<gpu::KernelArg> &Args,
                             std::string *Error = nullptr);

  const JitRuntimeStats &stats() const { return Stats; }
  CodeCache &cache() { return Cache; }
  const JitConfig &config() const { return Config; }

  /// Drops in-memory state (fresh-process simulation; persistent cache
  /// stays warm).
  void resetInMemoryState();

private:
  gpu::Device &Dev;
  uint64_t ModuleId;
  JitConfig Config;
  CodeCache Cache;
  JitRuntimeStats Stats;
  std::map<std::string, JitKernelInfo> Kernels;
  std::map<std::string, gpu::DevicePtr> GlobalAddresses;
  /// Specialization hash -> kernel already loaded on the device.
  std::map<uint64_t, gpu::LoadedKernel *> Loaded;
};

} // namespace proteus

#endif // PROTEUS_JIT_JITRUNTIME_H
