//===- JitRuntime.h - the Proteus JIT runtime library -----------*- C++ -*-===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The JIT compilation runtime library of paper section 3.3 — the component
/// reached through __jit_launch_kernel. Per launch it:
///
///   1. hashes (module id, kernel symbol, designated argument values,
///      launch-bounds threads) into the specialization key;
///   2. serves from the in-memory cache, then the persistent cache;
///   3. on a miss: obtains the kernel's bitcode (host-side .jit.<sym>
///      section on amdgcn-sim; device-memory readback of __jit_bc_<sym> on
///      nvptx-sim), links device globals to their runtime-resolved
///      addresses, applies the enabled specializations (RCF, LB), runs the
///      aggressive O3 pipeline, invokes the backend (plus the PTX assembler
///      step on nvptx-sim), inserts the object into both cache levels;
///   4. loads and launches the binary.
///
/// Every specialization knob can be disabled independently, which is how
/// the paper's None/LB/RCF/LB+RCF analysis modes (section 4.5) and the
/// overhead experiment (Figure 6) are produced.
///
/// The runtime is thread-safe and optionally asynchronous. Concurrent
/// launches of the same not-yet-compiled specialization are deduplicated
/// through an in-flight compilation table (one compile, many waiters), and
/// JitConfig::AsyncMode selects how a miss is served:
///
///   * Sync     — compile on the launching thread (the paper's behaviour);
///   * Block    — compile on a worker pool; the launch waits on a future;
///   * Fallback — the launch immediately runs the kernel's generic
///                (unspecialized AOT) binary while the specialized one
///                compiles in the background and is hot-swapped in on a
///                later launch, as in tiered JITs.
///
/// Orthogonally, PROTEUS_TIER=on enables tiered compilation of the
/// specialized binary itself: a miss is served by a fast Tier-0 compile
/// (argument specialization + a minimal cleanup pipeline + single-pass
/// register allocation) while the full Tier-1 pipeline runs on the worker
/// pool at low priority and atomically hot-swaps the loaded kernel once
/// ready. Cache entries carry a tier tag and a pipeline fingerprint, so a
/// persisted Tier-0 baseline found on a later run is served immediately
/// and promoted in place rather than mistaken for a final artifact.
/// Kernels are materialized from a parse-once module index that clones
/// only the launched kernel's reachable call closure per specialization.
///
/// Multi-device: additional devices (attachDevice) share one runtime, one
/// code cache and one module index. Specializations are keyed by GpuArch,
/// so a kernel is compiled once per architecture and the same object is
/// loaded onto every same-arch device that launches it (PerArchCompileReuse
/// / CrossDeviceLoads count this). With more than one device attached,
/// device-global references stay symbolic in the object and are resolved
/// per device at module-load time through the loader's relocation patching;
/// with a single device the compiler keeps baking resolved addresses into
/// the IR (cheaper, and lets O3 fold address arithmetic). The two linkage
/// modes carry different pipeline fingerprints, so cached objects of one
/// mode are never served in the other.
///
/// Lock order (deadlock discipline): the runtime's table mutexes
/// (RegistryMutex, InFlightMutex, IndexMutex, MemoMutex, OriginMutex) are
/// leaves taken before any per-device lock, never while one is held — and
/// no two device locks are ever held at once. Work that visits several
/// devices (Tier-1 promotion hot-swap, resetInMemoryState) iterates them in
/// ascending ordinal, locking one at a time.
///
//===----------------------------------------------------------------------===//

#ifndef PROTEUS_JIT_JITRUNTIME_H
#define PROTEUS_JIT_JITRUNTIME_H

#include "gpu/Runtime.h"
#include "jit/CodeCache.h"
#include "jit/CompilationPolicy.h"
#include "support/Metrics.h"
#include "support/ThreadPool.h"
#include "transforms/O3Pipeline.h"

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>

namespace proteus {

class KernelModuleIndex;

namespace capture {
class CaptureSession;
}

/// Runtime configuration (environment-variable equivalents).
struct JitConfig {
  /// How a launch that misses the code cache obtains its binary.
  enum class AsyncMode {
    Sync,     ///< compile inline on the launching thread (default)
    Block,    ///< compile on the worker pool; the launch waits on a future
    Fallback, ///< launch the generic AOT binary now, hot-swap the
              ///< specialized binary once the background compile finishes
  };

  bool EnableRCF = true;          // runtime constant folding of arguments
  bool EnableLaunchBounds = true; // launch-bounds specialization
  bool UseMemoryCache = true;
  bool UsePersistentCache = true;
  std::string CacheDir = "proteus-jit-cache";
  /// Size limits + eviction policy (paper section 3.4); defaults unlimited.
  CacheLimits Limits;
  /// Fleet mode (PROTEUS_CACHE_REMOTE=off|on): when on, the persistent
  /// level speaks to the node's shared cache service (tools/proteus-cached)
  /// over a unix socket, with batched lookups, fleet-wide compile dedup and
  /// a local-directory fallback when the daemon is unreachable.
  bool CacheRemote = false;
  /// Daemon socket path (PROTEUS_CACHE_SOCKET); empty derives
  /// "<CacheDir>/proteus-cached.sock".
  std::string CacheSocket;
  /// Verify the deserialized kernel IR before specializing (defensive mode
  /// for untrusted persistent caches / debugging; off by default).
  bool VerifyIR = false;
  /// Asynchronous compilation pipeline (PROTEUS_ASYNC=sync|block|fallback).
  AsyncMode Async = AsyncMode::Sync;
  /// Worker threads for the async pipeline (PROTEUS_ASYNC_WORKERS).
  unsigned AsyncWorkers = 4;
  O3Options O3;

  /// Tiered compilation (PROTEUS_TIER=off|on). When on, a cold launch is
  /// served by a fast Tier-0 compile (O3Preset::Fast + fast register
  /// allocation) and the full Tier-1 pipeline runs on the worker pool at
  /// low priority, hot-swapping the loaded kernel and promoting the cache
  /// entry in place once ready. Composes with every AsyncMode: in Sync the
  /// Tier-0 compile runs inline (but far cheaper than the full pipeline);
  /// in Fallback the generic binary covers the launch while even Tier-0
  /// compiles in the background.
  bool Tier = false;

  /// What to do with kernel-sanitizer findings (divergent barriers,
  /// shared-scratch races/OOB/uninitialized reads — see
  /// analysis/KernelAnalyzer.h) on the specialized, optimized kernel
  /// (PROTEUS_ANALYZE=off|warn|error).
  enum class AnalyzeMode {
    Off,   ///< skip the analysis stage entirely
    Warn,  ///< report findings to stderr, launch anyway (default)
    Error, ///< fail the launch with the findings as the error message
  };
  AnalyzeMode Analyze = AnalyzeMode::Warn;

  /// Run verifyFunction after every O3 pass and attribute any breakage to
  /// the offending pass by name; a failure fails the compile instead of
  /// emitting a miscompiled kernel (PROTEUS_VERIFY_EACH=1).
  bool VerifyEachPass = false;

  /// Launch capture (PROTEUS_CAPTURE=off|on): record specialized launches
  /// into self-contained replayable artifacts (pruned bitcode, arg values,
  /// memory snapshots, geometry, arch, pipeline fingerprint) via a bounded
  /// ring that sheds load instead of ever blocking the launch path.
  /// Generic-fallback launches (unspecialized tier-0 covers) are not
  /// captured. See src/capture and tools/proteus-replay.
  bool Capture = false;
  /// Directory receiving .pcap artifacts (PROTEUS_CAPTURE_DIR).
  std::string CaptureDir = "proteus-captures";
  /// Capture-ring capacity: captures that may be queued or in flight before
  /// new ones are shed (PROTEUS_CAPTURE_RING, in [1, 65536]).
  unsigned CaptureRing = 64;
  /// Capture each distinct launch shape (specialization hash + geometry +
  /// argument bits) only once per runtime; repeats are counted as
  /// capture.dedup and skip all snapshot work, so a steady-state launch
  /// loop pays nothing after its first iteration. Set to false
  /// (PROTEUS_CAPTURE_DEDUP=off) to record every launch — the stress mode
  /// the pressure tests use to exercise ring shedding.
  bool CaptureDedup = true;

  /// Kernel variant tuning (PROTEUS_TUNE=off|on): whether the variant
  /// manager (jit/AutoTuner.h) races competing specializations — block
  /// sizes, pipeline presets, unroll/LICM aggressiveness — on replayed
  /// capture artifacts and promotes the empirical winner. Off by default;
  /// the VariantManager honors this through Options::fromConfig.
  bool Tune = false;
  /// Upper bound on variants raced per specialization
  /// (PROTEUS_TUNE_BUDGET, in [1, 256]). The default/recorded
  /// configuration always races, so the budget caps the extra trials.
  unsigned TuneBudget = 8;

  /// Bottleneck-aware compilation policy (PROTEUS_POLICY=off|on). When on,
  /// every compiled kernel is classified on the static roofline
  /// (analysis/Roofline.h) with register-allocation feedback, the verdict
  /// is recorded on the runtime's CompilationPolicy and persisted alongside
  /// tuning decisions, the variant manager prunes tuning axes the class
  /// says cannot pay off (policy.pruned_trials), and kernels off an
  /// installed timeline critical path are kept at Tier-0
  /// (policy.tier_demotions). Off by default: the tuner races every axis
  /// blindly, exactly as before.
  bool Policy = false;

  /// Applies the PROTEUS_* environment variables on top of the defaults
  /// (PROTEUS_NO_RCF, PROTEUS_NO_LAUNCH_BOUNDS, PROTEUS_CACHE_DIR,
  /// PROTEUS_CACHE_REMOTE, PROTEUS_CACHE_SOCKET,
  /// PROTEUS_ASYNC, PROTEUS_ASYNC_WORKERS, PROTEUS_CAPTURE,
  /// PROTEUS_CAPTURE_DIR, PROTEUS_CAPTURE_RING, PROTEUS_CAPTURE_DEDUP,
  /// PROTEUS_TUNE, PROTEUS_TUNE_BUDGET, PROTEUS_POLICY and the CacheLimits
  /// variables).
  /// Unrecognized or out-of-range values are rejected: the default is kept
  /// and a diagnostic is appended to \p Warnings (or printed to stderr as
  /// "proteus: warning: ..." when \p Warnings is null) instead of being
  /// silently coerced.
  static JitConfig fromEnvironment(std::vector<std::string> *Warnings =
                                       nullptr);
};

const char *asyncModeName(JitConfig::AsyncMode M);
const char *analyzeModeName(JitConfig::AnalyzeMode M);
const char *tierModeName(bool TierEnabled);

/// Fingerprint of the pipeline composition that produces \p Tier objects.
/// Stored in every cache entry the runtime writes; an entry whose recorded
/// fingerprint does not match the current value for its tier is treated as
/// a miss (stale pipeline) instead of being served. \p SymbolicGlobals
/// distinguishes multi-device objects (global references left as load-time
/// relocations) from single-device objects (addresses baked into the IR):
/// an object of one linkage mode must never be served in the other.
uint64_t jitPipelineFingerprint(CodeTier Tier, bool SymbolicGlobals = false);

/// Every JitRuntime statistic, defined exactly once: (field name, registry
/// metric name). The lists expand into the JitRuntimeStats snapshot fields,
/// the runtime's metric-handle struct, handle registration and the stats()
/// snapshot — adding a stat means adding one line here.
///
/// Counters: Launches; Compilations; AsyncCompiles (compiles dispatched to
/// the worker pool); FallbackLaunches (launches served by the generic
/// binary); DedupedWaits (launches that joined an in-flight compile);
/// AnnotationRangeErrors (launches rejected because a jit-annotated
/// argument index was out of range); AnalysisDiagnostics (individual
/// kernel-sanitizer findings); AnalysisRejects (compiles failed by
/// AnalyzeMode::Error); VerifyFailures (O3 passes caught breaking the IR
/// in verify-each mode).
///
/// Tiering counters: Compilations counts full-pipeline (final-tier)
/// compiles only; Tier0Compiles counts fast baseline compiles, and
/// Tier1Promotions counts background promotions that replaced a served
/// Tier-0 binary — so with PROTEUS_TIER=on a cold specialization
/// eventually contributes one Tier0Compiles, one Compilations and one
/// Tier1Promotions. AsyncCompiles keeps counting only launch-path pool
/// dispatches, never internal promotion jobs. PrunedFunctions counts
/// module-index functions skipped by closure-pruned materialization;
/// HashMemoHits counts launches whose specialization hash was served by
/// the per-kernel memo instead of being recomputed.
///
/// Multi-device counters: StreamLaunches counts launches dispatched to an
/// explicit (non-default) stream; CrossDeviceLoads counts module loads of a
/// JIT object onto a device other than the one whose launch first loaded
/// that specialization (launch path and promotion hot-swaps alike);
/// PerArchCompileReuse counts, once per (specialization, device) pair, a
/// launch-path load that reused the per-arch compiled object instead of
/// recompiling — the compile-once/load-everywhere proof.
///
/// Tuner counters: TunerTrials counts variant trials raced (replayed or
/// live); TunerCacheHits counts tuning sessions served by a persisted
/// decision (zero trials ran); TunerPromotions counts tuned winners
/// installed through installFinalTier with pipeline overrides;
/// TunerErrors counts tuning requests that failed outright (unattached
/// device, unknown kernel, compile failure during promotion).
///
/// Policy counters (PROTEUS_POLICY=on): PolicyClassified counts roofline
/// classifications performed (one per compile, plus on-demand artifact
/// classifications by the variant manager); PolicyPrunedTrials counts
/// tuning variants the classification pruned before racing;
/// PolicyTierDemotions counts Tier-1 promotions skipped because the kernel
/// was off the installed timeline critical path.
///
/// Retarget counters (the cross-arch migration path, src/sched):
/// RetargetCompiles counts retargetKernel calls that had to run the
/// backend for the target arch; RetargetCacheReuse counts retargets served
/// entirely from a warm final-tier cache entry (local or fleet) — together
/// they prove migration recompiles at most once per arch. BitcodeParses
/// counts KernelModuleIndex builds — the front-end parse — so a retarget
/// that reuses the parse-once index keeps this at one per kernel (the
/// zero-re-parse property the migration differential test asserts).
#define PROTEUS_JIT_COUNTERS(X)                                                \
  X(Launches, "jit.launches")                                                  \
  X(StreamLaunches, "jit.stream_launches")                                     \
  X(Compilations, "jit.compilations")                                          \
  X(Tier0Compiles, "jit.tier0_compiles")                                       \
  X(Tier1Promotions, "jit.tier1_promotions")                                   \
  X(CrossDeviceLoads, "jit.cross_device_loads")                                \
  X(PerArchCompileReuse, "jit.per_arch_compile_reuse")                         \
  X(PrunedFunctions, "jit.pruned_functions")                                   \
  X(HashMemoHits, "jit.hash_memo_hits")                                        \
  X(AsyncCompiles, "jit.async_compiles")                                       \
  X(FallbackLaunches, "jit.fallback_launches")                                 \
  X(DedupedWaits, "jit.deduped_waits")                                         \
  X(FleetDedupWaits, "jit.fleet_dedup_waits")                                  \
  X(FleetServedCompiles, "jit.fleet_served_compiles")                          \
  X(AnnotationRangeErrors, "jit.annotation_range_errors")                      \
  X(AnalysisDiagnostics, "jit.analysis_diagnostics")                           \
  X(AnalysisRejects, "jit.analysis_rejects")                                   \
  X(VerifyFailures, "jit.verify_failures")                                     \
  X(TunerTrials, "jit.tuner_trials")                                           \
  X(TunerCacheHits, "jit.tuner_cache_hits")                                    \
  X(TunerPromotions, "jit.tuner_promotions")                                   \
  X(TunerErrors, "jit.tuner_errors")                                           \
  X(PolicyClassified, "policy.classified")                                     \
  X(PolicyPrunedTrials, "policy.pruned_trials")                                \
  X(PolicyTierDemotions, "policy.tier_demotions")                              \
  X(RetargetCompiles, "sched.retarget_compiles")                               \
  X(RetargetCacheReuse, "sched.retarget_reuse")                                \
  X(BitcodeParses, "jit.bitcode_parses")

/// Timers: BitcodeFetchSeconds includes the simulated device readback
/// (NVIDIA); QueueWaitSeconds is enqueue -> worker pickup latency;
/// LaunchBlockedSeconds is compile time visible on the launch path (inline
/// compiles in Sync mode plus time launches spent blocked on a compile
/// future in Block / dedup waits). Stage timers accumulate on every exit
/// path, including compile errors (metrics::ScopedTimer).
/// Tier0VisibleSeconds is the slice of LaunchBlockedSeconds incurred while
/// tiering is on — i.e. the launch-visible cost of the Tier-0 pipeline,
/// the number the tiered cold-start benchmark compares against a
/// full-pipeline baseline.
#define PROTEUS_JIT_TIMERS(X)                                                  \
  X(BitcodeFetchSeconds, "jit.bitcode_fetch_seconds")                          \
  X(Tier0VisibleSeconds, "jit.tier0_visible_seconds")                          \
  X(BitcodeParseSeconds, "jit.bitcode_parse_seconds")                          \
  X(LinkGlobalsSeconds, "jit.link_globals_seconds")                            \
  X(SpecializeSeconds, "jit.specialize_seconds")                               \
  X(OptimizeSeconds, "jit.optimize_seconds")                                   \
  X(AnalyzeSeconds, "jit.analyze_seconds")                                     \
  X(VerifyEachSeconds, "jit.verify_each_seconds")                              \
  X(BackendSeconds, "jit.backend_seconds")                                     \
  X(CacheLookupSeconds, "jit.cache_lookup_seconds")                            \
  X(QueueWaitSeconds, "jit.queue_wait_seconds")                                \
  X(LaunchBlockedSeconds, "jit.launch_blocked_seconds")

/// Cumulative runtime accounting: a point-in-time snapshot of the metrics
/// registry, safe to read while launches and background compiles proceed.
struct JitRuntimeStats {
#define PROTEUS_JIT_STAT_FIELD(Field, Name) uint64_t Field = 0;
  PROTEUS_JIT_COUNTERS(PROTEUS_JIT_STAT_FIELD)
#undef PROTEUS_JIT_STAT_FIELD
#define PROTEUS_JIT_STAT_FIELD(Field, Name) double Field = 0;
  PROTEUS_JIT_TIMERS(PROTEUS_JIT_STAT_FIELD)
#undef PROTEUS_JIT_STAT_FIELD

  /// Per-pass attribution of OptimizeSeconds, keyed by pass name (from the
  /// registry's "o3.pass.<name>" timers fed by the PassManager timing hook).
  std::map<std::string, double> O3PassSeconds;

  double totalCompileSeconds() const {
    return BitcodeFetchSeconds + BitcodeParseSeconds + LinkGlobalsSeconds +
           SpecializeSeconds + OptimizeSeconds + AnalyzeSeconds +
           VerifyEachSeconds + BackendSeconds;
  }

  /// Compile time hidden from the launch path by the async pipeline
  /// (Figure 6's launch-visible vs hidden split).
  double hiddenCompileSeconds() const {
    double Hidden = totalCompileSeconds() - LaunchBlockedSeconds;
    return Hidden > 0 ? Hidden : 0;
  }
};

/// Where a JIT kernel's bitcode lives.
struct JitKernelInfo {
  std::string Symbol;
  std::vector<uint32_t> AnnotatedArgs; // 1-based indices to fold
  /// amdgcn-sim: bitcode readable directly from the host-side image.
  std::vector<uint8_t> HostBitcode;
  /// nvptx-sim: device address/size of __jit_bc_<symbol> to read back.
  gpu::DevicePtr DeviceBitcodeAddr = 0;
  uint64_t DeviceBitcodeSize = 0;
  /// Device holding __jit_bc_<symbol> (set by program load); null means
  /// the runtime's primary device.
  gpu::Device *BitcodeDevice = nullptr;
  /// The kernel's generic (unspecialized) AOT binary, used as the tier-0
  /// launch target in AsyncMode::Fallback while a specialization compiles.
  std::vector<uint8_t> GenericObject;
  /// Architecture GenericObject was compiled for (read from the object
  /// header at registration). In a mixed-arch pool fallback only serves
  /// the generic on matching devices; launches on other arches block on
  /// the compile future instead of loading a foreign-arch object.
  GpuArch GenericArch = GpuArch::AmdGcnSim;
};

/// The runtime library instance bound to one *primary* device, optionally
/// serving a pool of further devices attached with attachDevice().
class JitRuntime {
public:
  JitRuntime(gpu::Device &Dev, uint64_t ModuleId, JitConfig Config);
  ~JitRuntime();

  JitRuntime(const JitRuntime &) = delete;
  JitRuntime &operator=(const JitRuntime &) = delete;

  /// Attaches another device to this runtime (idempotent). Attached devices
  /// share the code cache and module indexes: a specialization is compiled
  /// once per GpuArch and loaded per device. Returns the device's index for
  /// launchKernelOn. Must complete before concurrent launches begin —
  /// attachment is program-setup work, like kernel registration.
  unsigned attachDevice(gpu::Device &Dev);

  unsigned numDevices() const {
    return static_cast<unsigned>(Devices.size());
  }
  gpu::Device &device(unsigned Index) { return *Devices[Index]->Dev; }

  /// Index of \p D in the attached-device pool, or -1 when \p D is not
  /// attached to this runtime (callers targeting a specific device must
  /// check, not assume device 0 — the bug the old tuner had).
  int deviceIndexOf(const gpu::Device &D) const;

  /// Registers a JIT-annotated kernel (done by program load). Re-registering
  /// a symbol keeps the first registration (the kernels are identical; the
  /// first device's bitcode location stays authoritative).
  void registerKernel(JitKernelInfo Info);

  /// __jit_register_var: makes a device global's address resolvable when
  /// linking JIT modules.
  void registerVar(const std::string &Symbol, gpu::DevicePtr Address);

  /// __jit_launch_kernel: the entry point replacing direct kernel launches.
  /// Safe to call concurrently from multiple threads. Launches on the
  /// primary device's default stream (legacy barrier semantics).
  gpu::GpuError launchKernel(const std::string &Symbol, gpu::Dim3 Grid,
                             gpu::Dim3 Block,
                             const std::vector<gpu::KernelArg> &Args,
                             std::string *Error = nullptr);

  /// Launches on device \p DeviceIndex (attachDevice order; 0 = primary),
  /// optionally on an explicit stream of that device. A null \p S targets
  /// the device's default stream with full-barrier semantics; a non-null
  /// stream enqueues FIFO on its private timeline (StreamLaunches counts
  /// these). Compilation is shared: same arch -> same specialization object,
  /// loaded per device.
  gpu::GpuError launchKernelOn(unsigned DeviceIndex,
                               const std::string &Symbol, gpu::Dim3 Grid,
                               gpu::Dim3 Block,
                               const std::vector<gpu::KernelArg> &Args,
                               gpu::Stream *S = nullptr,
                               std::string *Error = nullptr);

  /// Compiles (or serves from the cache) the *final-tier* object for the
  /// specialization that (\p Symbol, \p Block, \p Args) resolve to, and
  /// loads it onto the target devices — the variant manager's promotion
  /// and trial-pinning primitive. \p DeviceIndex >= 0 scopes the install
  /// to that one device (trial pinning); -1 installs on every attached
  /// device (winner promotion), compiling once per distinct GpuArch.
  ///
  /// With \p ReuseCached, a valid final-tier cache entry short-circuits
  /// the compile (the warm-decision path compiles nothing); otherwise the
  /// specialization is recompiled. A non-null \p O3Override replaces
  /// JitConfig::O3 for the compile — the winner's pipeline knobs — and
  /// marks the install as a tuner promotion (TunerPromotions). The loaded
  /// kernel replaces any previous mapping for the specialization hash on
  /// each target device (the Tier-1 hot-swap semantic), so the next launch
  /// of this shape runs the installed binary with zero compiles.
  gpu::GpuError installFinalTier(const std::string &Symbol, gpu::Dim3 Block,
                                 const std::vector<gpu::KernelArg> &Args,
                                 const O3Options *O3Override = nullptr,
                                 int DeviceIndex = -1,
                                 bool ReuseCached = false,
                                 std::string *Error = nullptr);

  /// Retargets the specialization that (\p Symbol, \p Block, \p Args)
  /// resolve to onto device \p DeviceIndex — the cross-arch migration
  /// primitive (src/sched). The final-tier object for the target device's
  /// arch is served from a warm cache entry when one exists (local or
  /// fleet; RetargetCacheReuse) and otherwise recompiled from the cached
  /// parse-once module index (RetargetCompiles) — never by re-parsing
  /// bitcode the runtime has already parsed. The loaded kernel replaces any
  /// previous mapping for the hash on the target device, so subsequent
  /// launchKernelOn(DeviceIndex, ...) calls of this shape run it with zero
  /// compiles. \p ReusedCache (optional) reports whether the object came
  /// from the cache.
  gpu::GpuError retargetKernel(const std::string &Symbol, gpu::Dim3 Block,
                               const std::vector<gpu::KernelArg> &Args,
                               unsigned DeviceIndex,
                               bool *ReusedCache = nullptr,
                               std::string *Error = nullptr);

  /// Runs \p Fn on device \p DeviceIndex with that device's runtime lock
  /// held — the primitive external engines (the migration protocol in
  /// src/sched) use to operate on a device's memory, streams and events
  /// without racing concurrent launches, which the runtime serializes under
  /// the same lock. \p Fn must not call back into this runtime (the lock is
  /// not recursive) and must not touch any other device (the lock order
  /// forbids holding two device locks at once).
  void withDeviceLocked(unsigned DeviceIndex,
                        const std::function<void(gpu::Device &)> &Fn);

  /// Tuning-decision store, wrapped so the TunerCacheHits counter is
  /// exact: a hit here is precisely "a tuning session that raced nothing".
  std::optional<TuningDecision> lookupTuningDecision(uint64_t Key);
  void storeTuningDecision(uint64_t Key, const TuningDecision &D);

  /// Tuner accounting hooks (the variant manager is a separate layer but
  /// its counters live on this runtime's registry with the JIT stats).
  void noteTunerTrials(uint64_t N) { Stat.TunerTrials->add(N); }
  void noteTunerError() { Stat.TunerErrors->add(); }

  /// The bottleneck-aware policy store, or null when JitConfig::Policy is
  /// off. The variant manager consults it for pruning and records verdicts
  /// it computes on demand from artifact bitcode.
  CompilationPolicy *policy() { return PolicyState.get(); }

  /// Policy accounting hooks (mirroring the tuner hooks: the variant
  /// manager's policy counters live on this runtime's registry).
  void notePolicyClassified() { Stat.PolicyClassified->add(); }
  void notePolicyPrunedTrials(uint64_t N) { Stat.PolicyPrunedTrials->add(N); }

  /// Snapshot of the counters. Lock-free with respect to the hot paths:
  /// reads the relaxed-atomic instruments, no stats mutex exists.
  JitRuntimeStats stats() const;

  /// The registry backing stats(); exposes every named instrument,
  /// including the per-pass "o3.pass.<name>" timers.
  const metrics::Registry &metricsRegistry() const { return Metrics; }

  CodeCache &cache() { return Cache; }
  const JitConfig &config() const { return Config; }

  /// The live capture session when JitConfig::Capture is on, else null
  /// (test/flush access; the launch path reaches it internally).
  capture::CaptureSession *captureSession() { return CaptureSess.get(); }

  /// Waits until every background compilation dispatched so far has
  /// finished (no-op in Sync mode).
  void drain();

  /// Drops in-memory state (fresh-process simulation; persistent cache
  /// stays warm). Drains background compiles first.
  void resetInMemoryState();

private:
  struct CompileOutcome;
  struct InFlightCompile;

  /// Everything the runtime holds per attached device: the device itself,
  /// the lock serializing operations against it (module loads, launches,
  /// symbol resolution, bitcode readback), and the per-device loaded-kernel
  /// maps. Elements are heap-allocated so attachDevice never moves them.
  /// See the file comment for the lock order.
  struct DeviceState {
    gpu::Device *Dev = nullptr;
    unsigned Index = 0; ///< position in Devices (attach order)
    std::mutex Lock;
    /// Specialization hash -> kernel loaded on this device.
    std::map<uint64_t, gpu::LoadedKernel *> Loaded;
    /// Kernel symbol -> loaded generic (unspecialized) binary.
    std::map<std::string, gpu::LoadedKernel *> GenericLoaded;
  };

  /// True once more than one device is attached: compiled objects keep
  /// device-global references symbolic (resolved per device at load time)
  /// instead of baking the primary device's addresses into the IR.
  bool symbolicGlobals() const { return Devices.size() > 1; }

  /// Builds the specialization key for a launch targeting \p Arch. Returns
  /// false (with \p Error set and AnnotationRangeErrors counted) when an
  /// annotated 1-based argument index is out of range for \p Args instead
  /// of silently skipping it.
  bool buildKey(const JitKernelInfo &Info, gpu::Dim3 Block,
                const std::vector<gpu::KernelArg> &Args, GpuArch Arch,
                SpecializationKey &Out, std::string *Error) const;
  gpu::GpuError fetchBitcode(const JitKernelInfo &Info,
                             std::vector<uint8_t> &Out, std::string *Error);
  /// Compiles one specialization at \p Tier. Tier0 selects the fast O3
  /// preset and fast register allocation and counts Tier0Compiles; Final
  /// runs the full pipeline and counts Compilations. Both tag their cache
  /// insert with the tier and its pipeline fingerprint. \p Bitcode may be
  /// empty when the kernel's module index was already built. A non-null
  /// \p O3Override replaces Config.O3 (the variant manager compiling a
  /// winner under its tuned pipeline knobs); the cache entry still carries
  /// the standard final-tier fingerprint — for a tuned specialization the
  /// decision record, not the fingerprint, is the pipeline's provenance.
  CompileOutcome compileSpecialization(const std::string &Symbol,
                                       std::vector<uint8_t> Bitcode,
                                       const SpecializationKey &Key,
                                       uint64_t Hash,
                                       CodeTier Tier = CodeTier::Final,
                                       const O3Options *O3Override = nullptr);
  /// Returns the kernel's parse-once module index, building (and caching)
  /// it from \p Bitcode on first use. Null with \p Error set on parse
  /// failure or when no index exists and \p Bitcode is empty.
  std::shared_ptr<const KernelModuleIndex>
  getOrBuildIndex(const std::string &Symbol,
                  const std::vector<uint8_t> &Bitcode, std::string *Error);
  /// Memoized computeSpecializationHash: per (kernel, annotated-arg
  /// values, launch-bounds threads) the hash is computed once and served
  /// from a map afterwards (HashMemoHits counts the served launches).
  uint64_t lookupSpecHash(const std::string &Symbol,
                          const SpecializationKey &Key);
  /// Enqueues the Tier-1 promotion compile for \p Hash at low pool
  /// priority (deduplicated; at most one promotion per hash in flight).
  /// On success the promoted binary replaces the cache entry in place and
  /// hot-swaps the loaded kernel on every device currently holding it,
  /// visiting devices in ascending ordinal, one lock at a time. Fetches
  /// bitcode on the calling thread first when the kernel's module index is
  /// not built yet.
  void scheduleTier1Promotion(const JitKernelInfo &Info,
                              const SpecializationKey &Key, uint64_t Hash);
  void completeJob(uint64_t Hash, const std::shared_ptr<InFlightCompile> &Job,
                   CompileOutcome Outcome);
  /// Loads the generic AOT binary (once per device) and launches it on
  /// \p DS; returns std::nullopt when the kernel carries no generic binary.
  std::optional<gpu::GpuError>
  launchGeneric(DeviceState &DS, const JitKernelInfo &Info, gpu::Dim3 Grid,
                gpu::Dim3 Block, const std::vector<gpu::KernelArg> &Args,
                gpu::Stream *S, std::string *Error);
  gpu::GpuError loadAndLaunch(DeviceState &DS, uint64_t Hash,
                              const std::vector<uint8_t> &Object,
                              const JitKernelInfo &Info,
                              const std::shared_ptr<const KernelModuleIndex>
                                  &CaptureIndex,
                              gpu::Dim3 Grid, gpu::Dim3 Block,
                              const std::vector<gpu::KernelArg> &Args,
                              gpu::Stream *S, std::string *Error);
  /// Launches an already-loaded specialized kernel, recording a capture
  /// artifact around it when capture is on: reserve a ring slot (shed and
  /// launch plain when full), snapshot input regions, launch, snapshot
  /// outputs, submit. Called with DS.Lock held; \p CaptureIndex supplies
  /// the pruned-bitcode closure and may be null (capture skipped).
  gpu::GpuError launchLoaded(DeviceState &DS, gpu::LoadedKernel &K,
                             const JitKernelInfo &Info, uint64_t Hash,
                             const std::shared_ptr<const KernelModuleIndex>
                                 &CaptureIndex,
                             gpu::Dim3 Grid, gpu::Dim3 Block,
                             const std::vector<gpu::KernelArg> &Args,
                             gpu::Stream *S, std::string *Error);
  /// Records that \p Hash was first loaded via device \p Ordinal; returns
  /// the origin ordinal (the existing one on a repeat call).
  unsigned recordLoadOrigin(uint64_t Hash, unsigned Ordinal);
  /// Shared body of installFinalTier and retargetKernel: resolves the
  /// specialization for (\p Symbol, \p Block, \p Args), obtains one
  /// final-tier object per distinct GpuArch among \p Targets (serving a
  /// valid cached entry when \p ReuseCached, else compiling), and loads it
  /// onto every target device, hot-swapping any previous mapping.
  /// \p CompiledArches / \p ReusedArches report how many arches were
  /// compiled vs served warm; callers do their own error accounting.
  gpu::GpuError installOnTargets(const std::string &Symbol, gpu::Dim3 Block,
                                 const std::vector<gpu::KernelArg> &Args,
                                 const O3Options *O3Override,
                                 const std::vector<unsigned> &Targets,
                                 bool ReuseCached, unsigned *CompiledArches,
                                 unsigned *ReusedArches, bool *AnyLoaded,
                                 std::string *Error);

  gpu::Device &Dev;
  const uint64_t ModuleId;
  const JitConfig Config;
  CodeCache Cache;

  /// Named instruments behind stats(). Handles are resolved once in the
  /// constructor (the Stat struct below); updates are relaxed atomics, so
  /// launches and workers never serialize on accounting.
  metrics::Registry Metrics;
  struct StatHandles {
#define PROTEUS_JIT_STAT_HANDLE(Field, Name) metrics::Counter *Field = nullptr;
    PROTEUS_JIT_COUNTERS(PROTEUS_JIT_STAT_HANDLE)
#undef PROTEUS_JIT_STAT_HANDLE
#define PROTEUS_JIT_STAT_HANDLE(Field, Name)                                   \
  metrics::TimerMetric *Field = nullptr;
    PROTEUS_JIT_TIMERS(PROTEUS_JIT_STAT_HANDLE)
#undef PROTEUS_JIT_STAT_HANDLE
  };
  StatHandles Stat;

  std::mutex RegistryMutex; // guards Kernels + GlobalAddresses
  std::map<std::string, JitKernelInfo> Kernels;
  std::map<std::string, gpu::DevicePtr> GlobalAddresses;

  /// The device pool, in attachDevice order; [0] is the primary device the
  /// runtime was constructed with. Grown only during setup (attachDevice
  /// must precede concurrent launches), read lock-free afterwards; each
  /// element carries its own device lock (see the lock-order file comment).
  std::vector<std::unique_ptr<DeviceState>> Devices;

  /// Which device first loaded each specialization, for the
  /// CrossDeviceLoads / PerArchCompileReuse accounting.
  std::mutex OriginMutex;
  std::unordered_map<uint64_t, unsigned> FirstLoadedOn;

  /// In-flight compilation table: one compile per specialization hash, any
  /// number of waiters (the dedup structure of the async pipeline).
  std::mutex InFlightMutex;
  std::unordered_map<uint64_t, std::shared_ptr<InFlightCompile>> InFlight;
  /// Hashes with a Tier-1 promotion scheduled or running (also guarded by
  /// InFlightMutex); keeps a launch storm over a Tier-0 entry from
  /// enqueueing redundant promotions.
  std::unordered_set<uint64_t> PromotionsInFlight;

  /// Parse-once module indexes, one per kernel symbol: the pruned
  /// parsed-module cache. Tier-0, Tier-1 and plain compiles all
  /// materialize their module from here instead of re-parsing bitcode.
  std::mutex IndexMutex;
  std::map<std::string, std::shared_ptr<const KernelModuleIndex>>
      ModuleIndexes;

  /// Specialization-hash memo: kernel symbol -> (folded argument bits,
  /// launch-bounds threads) -> hash. Valid because ModuleId, Arch and each
  /// kernel's annotated-argument indices are fixed for the runtime's
  /// lifetime, so those hash inputs are implied by the symbol.
  std::mutex MemoMutex;
  std::unordered_map<std::string, std::map<std::vector<uint64_t>, uint64_t>>
      HashMemo;

  /// Bottleneck-aware policy store (JitConfig::Policy); null when the
  /// policy is off. Own mutex; consulted from the launch path
  /// (scheduleTier1Promotion) and the variant manager alike.
  std::unique_ptr<CompilationPolicy> PolicyState;

  /// Live capture session (JitConfig::Capture); null when capture is off.
  /// Declared before the pool: background compiles never touch it, but the
  /// session's writer thread must outlive nothing of the runtime it reads
  /// (the module indexes it serializes are shared_ptr-held per record).
  std::unique_ptr<capture::CaptureSession> CaptureSess;

  /// Worker pool for Block/Fallback modes and for Tier-1 promotions when
  /// tiering is on; null otherwise. Declared last so it is destroyed
  /// (drained and joined) before any state the compile tasks reference.
  std::unique_ptr<ThreadPool> Pool;
};

} // namespace proteus

#endif // PROTEUS_JIT_JITRUNTIME_H
