//===- AutoAnnotate.h - automatic specialization decisions ------*- C++ -*-===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's future-work item "automating specialization decisions to
/// balance performance and compilation overhead" (section 6), implemented
/// as a static analysis matching the evaluation methodology of section 4:
/// annotate the "meaningful arguments for runtime specialization —
/// arguments used in loop bounds, conditionals, or numeric computation".
///
/// For every scalar (non-pointer) kernel argument the analysis classifies
/// how its value flows through the kernel and its transitive callees, and
/// recommends folding when it reaches control flow (branch or select
/// conditions, including loop bounds), address computation, or
/// floating-point arithmetic. Unused and store-only arguments are skipped —
/// folding them would multiply cache entries without enabling optimization.
///
//===----------------------------------------------------------------------===//

#ifndef PROTEUS_JIT_AUTOANNOTATE_H
#define PROTEUS_JIT_AUTOANNOTATE_H

#include <cstdint>
#include <string>
#include <vector>

namespace pir {
class Function;
class Module;
} // namespace pir

namespace proteus {

/// Why an argument was recommended for specialization.
enum class SpecializationReason : uint8_t {
  ControlFlow,    ///< reaches a branch or select condition (incl. loop bounds)
  Addressing,     ///< reaches pointer arithmetic (tile/stride shapes)
  NumericCompute, ///< reaches floating-point arithmetic
};

const char *specializationReasonName(SpecializationReason R);

/// One recommendation.
struct ArgRecommendation {
  uint32_t ArgIndex; ///< one-based, matching annotate("jit", ...) syntax
  std::vector<SpecializationReason> Reasons;
};

/// Analyzes \p Kernel (following calls into device functions) and returns
/// the recommended annotation indices with reasons, in argument order.
std::vector<ArgRecommendation> suggestJitAnnotations(pir::Function &Kernel);

/// Applies suggestJitAnnotations to every kernel of \p M that does not
/// already carry an annotation. Returns the number of kernels annotated.
unsigned autoAnnotateKernels(pir::Module &M);

} // namespace proteus

#endif // PROTEUS_JIT_AUTOANNOTATE_H
