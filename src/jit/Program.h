//===- Program.h - host program load and dispatch ---------------*- C++ -*-===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// LoadedProgram models the host side of a compiled application at run
/// time: program startup registers device globals (the __hipRegisterVar /
/// __cudaRegisterVar constructors, plus __jit_register_var when Proteus is
/// enabled), uploads NVIDIA bitcode data globals, loads AOT kernel
/// binaries, and dispatches each kernel launch either directly through the
/// vendor runtime (AOT) or through __jit_launch_kernel (annotated kernels
/// under Proteus).
///
//===----------------------------------------------------------------------===//

#ifndef PROTEUS_JIT_PROGRAM_H
#define PROTEUS_JIT_PROGRAM_H

#include "jit/AotCompiler.h"
#include "jit/JitRuntime.h"

namespace proteus {

/// A program image loaded on a device, ready to launch kernels.
class LoadedProgram {
public:
  /// Loads \p Program on \p Dev. When \p Jit is non-null, annotated kernels
  /// dispatch through it (Proteus mode); otherwise every kernel runs its
  /// AOT binary.
  LoadedProgram(gpu::Device &Dev, const CompiledProgram &Program,
                JitRuntime *Jit);

  /// True if the image loaded cleanly.
  bool ok() const { return LoadError.empty(); }
  const std::string &error() const { return LoadError; }

  /// Launches \p Symbol with the given geometry and arguments.
  gpu::GpuError launch(const std::string &Symbol, gpu::Dim3 Grid,
                       gpu::Dim3 Block,
                       const std::vector<gpu::KernelArg> &Args,
                       std::string *Error = nullptr);

  /// Device address of a program global.
  gpu::DevicePtr globalAddress(const std::string &Symbol) const;

private:
  gpu::Device &Dev;
  JitRuntime *Jit;
  std::set<std::string> JitKernels;
  std::map<std::string, gpu::LoadedKernel *> AotKernels;
  std::string LoadError;
};

} // namespace proteus

#endif // PROTEUS_JIT_PROGRAM_H
