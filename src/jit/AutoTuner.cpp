//===- AutoTuner.cpp - launch-configuration auto-tuning ---------------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//

#include "jit/AutoTuner.h"

using namespace proteus;
using namespace proteus::gpu;

TuningResult proteus::autotuneBlockSize(
    Device &Dev, JitRuntime &Jit, const std::string &Symbol,
    uint64_t TotalThreads, const std::vector<KernelArg> &Args,
    const std::vector<uint32_t> &Candidates) {
  TuningResult Out;
  if (TotalThreads == 0 || Candidates.empty()) {
    Out.Error = "autotune requires work and candidates";
    return Out;
  }

  // Snapshot device state: trial launches must not leak side effects.
  std::vector<uint8_t> Snapshot = Dev.memory();
  const double SimBefore = Dev.simulatedSeconds();
  const double KernelBefore = Dev.kernelSeconds();

  for (uint32_t Block : Candidates) {
    if (Block == 0 || Block > 1024)
      continue;
    uint64_t Blocks = (TotalThreads + Block - 1) / Block;
    if (Blocks == 0 || Blocks > (1ull << 31))
      continue;
    TuningTrial Trial;
    Trial.ThreadsPerBlock = Block;
    std::string Err;
    GpuError E = Jit.launchKernel(
        Symbol, Dim3{static_cast<uint32_t>(Blocks), 1, 1},
        Dim3{Block, 1, 1}, Args, &Err);
    if (E == GpuError::Success) {
      Trial.Ok = true;
      Trial.KernelSeconds = Dev.LastLaunch.DurationSec;
    }
    Out.Trials.push_back(Trial);
    // Roll back side effects of the trial.
    Dev.memory() = Snapshot;
  }

  // Restore the simulated clocks: tuning happens once at startup; its
  // trial time is the caller's to report, not program device time.
  Dev.restoreClock(SimBefore, KernelBefore);

  for (const TuningTrial &T : Out.Trials) {
    if (!T.Ok)
      continue;
    if (!Out.Ok || T.KernelSeconds < Out.BestSeconds) {
      Out.Ok = true;
      Out.BestThreadsPerBlock = T.ThreadsPerBlock;
      Out.BestSeconds = T.KernelSeconds;
    }
  }
  if (!Out.Ok)
    Out.Error = "no candidate produced a successful launch";
  return Out;
}
