//===- AutoTuner.cpp - kernel variant manager and auto-tuning ----------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//

#include "jit/AutoTuner.h"

#include "bitcode/ModuleIndex.h"
#include "ir/Context.h"
#include "ir/Module.h"
#include "support/FileSystem.h"
#include "support/Timer.h"

using namespace proteus;
using namespace proteus::gpu;

TuningResult proteus::autotuneBlockSize(
    Device &Dev, JitRuntime &Jit, const std::string &Symbol,
    uint64_t TotalThreads, const std::vector<KernelArg> &Args,
    const std::vector<uint32_t> &Candidates) {
  TuningResult Out;
  if (TotalThreads == 0 || Candidates.empty()) {
    Out.Error = "autotune requires work and candidates";
    return Out;
  }
  // Trials must run on the device the caller handed us. The runtime's
  // plain launchKernel always targets device 0, so resolve Dev's attach
  // index and route every trial through launchKernelOn — tuning a
  // non-primary device used to time (and mutate!) device 0 while
  // snapshotting Dev.
  const int Index = Jit.deviceIndexOf(Dev);
  if (Index < 0) {
    Jit.noteTunerError();
    Out.Error = "device is not attached to this JIT runtime";
    return Out;
  }

  // Snapshot device state: trial launches must not leak side effects.
  // Per-stream timelines are captured individually so multi-stream
  // programs get their exact tails back (restoreClock collapsed
  // everything onto the default stream).
  std::vector<uint8_t> Snapshot = Dev.memory();
  const std::vector<double> Tails = Dev.streamTails();
  const double KernelBefore = Dev.kernelSeconds();

  for (uint32_t Block : Candidates) {
    if (Block == 0 || Block > 1024)
      continue;
    uint64_t Blocks = (TotalThreads + Block - 1) / Block;
    if (Blocks == 0 || Blocks > (1ull << 31))
      continue;
    TuningTrial Trial;
    Trial.ThreadsPerBlock = Block;
    // Pin the trial to the final compilation tier before timing it: under
    // PROTEUS_TIER=on a cold launch would otherwise run the Tier-0
    // baseline, so early candidates would race handicapped code while
    // later ones might catch their background promotions.
    std::string Err;
    GpuError E = Jit.installFinalTier(Symbol, Dim3{Block, 1, 1}, Args,
                                      /*O3Override=*/nullptr, Index,
                                      /*ReuseCached=*/true, &Err);
    if (E == GpuError::Success)
      E = Jit.launchKernelOn(static_cast<unsigned>(Index), Symbol,
                             Dim3{static_cast<uint32_t>(Blocks), 1, 1},
                             Dim3{Block, 1, 1}, Args, nullptr, &Err);
    if (E == GpuError::Success) {
      Trial.Ok = true;
      Trial.KernelSeconds = Dev.LastLaunch.DurationSec;
    }
    Jit.noteTunerTrials(1);
    Out.Trials.push_back(Trial);
    // Roll back side effects of the trial.
    Dev.memory() = Snapshot;
  }

  // Restore the simulated clocks: tuning happens once at startup; its
  // trial time is the caller's to report, not program device time.
  Dev.restoreTimelines(Tails, KernelBefore);

  for (const TuningTrial &T : Out.Trials) {
    if (!T.Ok)
      continue;
    if (!Out.Ok || T.KernelSeconds < Out.BestSeconds) {
      Out.Ok = true;
      Out.BestThreadsPerBlock = T.ThreadsPerBlock;
      Out.BestSeconds = T.KernelSeconds;
    }
  }
  if (!Out.Ok)
    Out.Error = "no candidate produced a successful launch";
  return Out;
}

std::vector<VariantSpec>
VariantManager::generateVariants(const capture::CaptureArtifact &A) const {
  std::vector<VariantSpec> Specs;
  const O3Options DefaultO3 = Jit.config().O3;

  // Bottleneck pruning: with a roofline verdict recorded for this (kernel,
  // arch), an axis the classification says cannot pay off is dropped here —
  // before the budget cap, so PROTEUS_TUNE_BUDGET bounds *raced* trials
  // and a pruned variant never consumes a budget slot that a viable one
  // could have used. Only variants that would otherwise have raced are
  // counted as pruned.
  std::optional<PolicyVerdict> Verdict;
  if (CompilationPolicy *P = Jit.policy())
    Verdict = P->verdictFor(A.KernelSymbol, A.Arch);
  uint64_t Pruned = 0;
  auto Race = [&](VariantAxis Axis) {
    if (!Verdict || CompilationPolicy::axisWorthRacing(Verdict->Class, Axis))
      return true;
    ++Pruned;
    return false;
  };

  // Variant 0: the recorded configuration under the runtime's own pipeline
  // — the status quo always races, so the winner can never be slower than
  // what the program would have run anyway.
  VariantSpec Default;
  Default.Name = "default";
  Default.Grid = A.Grid;
  Default.Block = A.Block;
  Default.O3 = DefaultO3;
  Specs.push_back(Default);

  // Launch-geometry variants: reshape the same total work into 1-D grids
  // of each candidate block size (each implies its own launch-bounds
  // specialization, hence its own register budget in the backend).
  const uint64_t Total = A.Grid.count() * A.Block.count();
  for (uint32_t Block : Opts.BlockCandidates) {
    if (Block == 0 || Block > 1024)
      continue;
    uint64_t Blocks = (Total + Block - 1) / Block;
    if (Blocks == 0 || Blocks > (1ull << 31))
      continue;
    if (Blocks == A.Grid.X && A.Grid.Y == 1 && A.Grid.Z == 1 &&
        Block == A.Block.X && A.Block.Y == 1 && A.Block.Z == 1)
      continue; // identical to the recorded default
    if (!Race(VariantAxis::BlockSize))
      continue;
    VariantSpec V;
    V.Name = "block" + std::to_string(Block);
    V.Grid = Dim3{static_cast<uint32_t>(Blocks), 1, 1};
    V.Block = Dim3{Block, 1, 1};
    V.O3 = DefaultO3;
    Specs.push_back(V);
  }

  // Pipeline variants at the recorded geometry: compile-pipeline
  // aggressiveness is a launch-performance axis of its own (unrolling
  // trades instruction count for register pressure, LICM hoisting
  // lengthens live ranges, the fast preset skips both).
  if (DefaultO3.Preset != O3Preset::Fast &&
      Race(VariantAxis::PipelinePreset)) {
    VariantSpec V = Default;
    V.Name = "o3-fast";
    V.O3.Preset = O3Preset::Fast;
    Specs.push_back(V);
  }
  if (DefaultO3.EnableLICM && Race(VariantAxis::Licm)) {
    VariantSpec V = Default;
    V.Name = "no-licm";
    V.O3.EnableLICM = false;
    Specs.push_back(V);
  }
  if (Race(VariantAxis::Unroll)) {
    VariantSpec V = Default;
    V.Name = "unroll-wide";
    V.O3.Unroll.MaxTripCount = DefaultO3.Unroll.MaxTripCount * 4;
    V.O3.Unroll.MaxExpandedInstructions =
        DefaultO3.Unroll.MaxExpandedInstructions * 4;
    Specs.push_back(V);
  }

  if (Pruned)
    Jit.notePolicyPrunedTrials(Pruned);

  // Budget cap (PROTEUS_TUNE_BUDGET); the default variant always stays.
  const size_t Budget = Opts.Budget > 0 ? Opts.Budget : 1;
  if (Specs.size() > Budget)
    Specs.resize(Budget);
  return Specs;
}

std::optional<PolicyVerdict>
VariantManager::ensureVerdict(const capture::CaptureArtifact &A) {
  CompilationPolicy *P = Jit.policy();
  if (!P)
    return std::nullopt;
  if (std::optional<PolicyVerdict> V = P->verdictFor(A.KernelSymbol, A.Arch))
    return V;
  if (A.Bitcode.empty())
    return std::nullopt;
  // The runtime has not compiled (hence not classified) this kernel —
  // classify the artifact's own pruned bitcode. No register-allocation
  // feedback exists on this path, so a spill-bound kernel conservatively
  // classifies by its roofline position instead (no pruning is lost: the
  // reg-pressure class prunes strictly less than MemoryBound).
  std::string Error;
  std::shared_ptr<const KernelModuleIndex> Index =
      KernelModuleIndex::create(A.Bitcode, Error);
  if (!Index)
    return std::nullopt;
  pir::Context Ctx;
  std::unique_ptr<pir::Module> M =
      Index->materialize(Ctx, A.KernelSymbol, nullptr);
  if (!M)
    return std::nullopt;
  pir::Function *F = M->getFunction(A.KernelSymbol);
  if (!F)
    return std::nullopt;
  pir::analysis::RooflineReport RR = pir::analysis::classifyKernel(
      *F, getTarget(A.Arch), nullptr, A.Grid.count() * A.Block.count());
  PolicyVerdict V;
  V.Class = RR.Class;
  V.ArithmeticIntensity = RR.ArithmeticIntensity;
  V.RidgeFlopsPerByte = RR.Model.ridgeFlopsPerByte();
  P->recordVerdict(A.KernelSymbol, A.Arch, V);
  Jit.notePolicyClassified();
  return V;
}

VariantTuningResult
VariantManager::tuneArtifact(const capture::CaptureArtifact &A) {
  VariantTuningResult R;
  if (!Opts.Enabled) {
    R.Error = "tuning is disabled (PROTEUS_TUNE=off)";
    return R;
  }
  if (A.KernelSymbol.empty() || A.Bitcode.empty()) {
    Jit.noteTunerError();
    R.Error = "artifact carries no kernel bitcode";
    return R;
  }
  Timer Wall;
  const uint64_t Total = A.Grid.count() * A.Block.count();
  R.DecisionKey = computeTuningKeyHash(A.ModuleId, A.KernelSymbol, A.Arch,
                                       Total, A.ArgBits);

  std::vector<KernelArg> Args;
  Args.reserve(A.ArgBits.size());
  for (uint64_t Bits : A.ArgBits)
    Args.push_back(KernelArg{Bits});

  // Warm path: a persisted decision means a previous run already raced
  // this (kernel, args, arch, shape). Install its winner — out of the
  // persistent code cache when warm, so nothing compiles — and race
  // nothing (TunerCacheHits counts the skip).
  if (std::optional<TuningDecision> D =
          Jit.lookupTuningDecision(R.DecisionKey)) {
    R.FromCache = true;
    R.Winner.Name = "cached";
    R.Winner.Grid = Dim3{D->GridX, D->GridY, D->GridZ};
    R.Winner.Block = Dim3{D->BlockX, D->BlockY, D->BlockZ};
    R.Winner.O3 = Jit.config().O3;
    R.Winner.O3.Preset = D->Preset ? O3Preset::Fast : O3Preset::Full;
    R.Winner.O3.EnableLICM = D->EnableLICM != 0;
    R.Winner.O3.Unroll.MaxTripCount = D->UnrollMaxTripCount;
    R.Winner.O3.Unroll.MaxExpandedInstructions =
        D->UnrollMaxExpandedInstructions;
    R.WinnerSeconds = D->ExpectedSeconds;
    if (Opts.Promote) {
      std::string Err;
      if (Jit.installFinalTier(A.KernelSymbol, R.Winner.Block, Args,
                               &R.Winner.O3, /*DeviceIndex=*/-1,
                               /*ReuseCached=*/true,
                               &Err) != GpuError::Success) {
        R.Error = "cached winner install failed: " + Err;
        R.TuningWallSeconds = Wall.seconds();
        return R;
      }
      R.Promoted = true;
    }
    R.Ok = true;
    R.TuningWallSeconds = Wall.seconds();
    return R;
  }

  // Cold path: race the variants on the replay substrate. Every trial
  // rebuilds a throwaway device from the artifact's pre-launch images, so
  // trials are side-effect-free by construction; the output check against
  // the recorded post-images gates eligibility. Trials share one base
  // configuration that forces fairness and isolation: synchronous
  // final-tier compiles only (no Tier-0 head start), no capture of the
  // trials themselves, and a memory-only code cache so variant objects
  // never pollute the persistent cache — only the promoted winner does.
  ReplayOptions Base;
  Base.Jit = Jit.config();
  Base.Jit.Tier = false;
  Base.Jit.Async = JitConfig::AsyncMode::Sync;
  Base.Jit.Capture = false;
  Base.Jit.Tune = false;
  Base.Jit.UseMemoryCache = true;
  Base.Jit.UsePersistentCache = false;
  Base.Jit.CacheDir.clear();
  Base.CacheDir.clear();
  Base.OverrideGeometry = true;

  // Make sure a roofline verdict exists before the variants are generated:
  // when the runtime never compiled this kernel itself, the artifact's own
  // bitcode is classified here, so the pruning table below has something
  // to consult.
  std::optional<PolicyVerdict> Verdict = ensureVerdict(A);

  std::vector<VariantSpec> Specs = generateVariants(A);
  for (const VariantSpec &S : Specs) {
    ReplayOptions RO = Base;
    RO.Grid = S.Grid;
    RO.Block = S.Block;
    RO.Jit.O3 = S.O3;
    ReplayResult RR = replayArtifact(A, RO);
    Jit.noteTunerTrials(1);
    VariantTrial T;
    T.Spec = S;
    T.Ok = RR.Ok;
    T.OutputMatch = RR.OutputMatch;
    T.KernelSeconds = RR.KernelSeconds;
    T.Compilations = RR.CompilationsUsed;
    T.Stats = RR.Launch;
    T.Error = RR.Error;
    R.TuningSeconds += RR.SimulatedSeconds;
    R.Trials.push_back(std::move(T));
  }

  if (!R.Trials.empty() && R.Trials.front().Ok &&
      R.Trials.front().OutputMatch)
    R.BaselineSeconds = R.Trials.front().KernelSeconds;

  // The winner: fastest correct trial; the earliest wins ties, which
  // keeps the recorded default ahead of exotic variants that merely match
  // it.
  const VariantTrial *Best = nullptr;
  for (const VariantTrial &T : R.Trials)
    if (T.Ok && T.OutputMatch &&
        (!Best || T.KernelSeconds < Best->KernelSeconds))
      Best = &T;
  if (!Best) {
    Jit.noteTunerError();
    R.Error = "no variant produced a correct replay";
    R.TuningWallSeconds = Wall.seconds();
    return R;
  }
  R.Winner = Best->Spec;
  R.WinnerSeconds = Best->KernelSeconds;

  // Promote the winner through the Tier-1 hot-swap path on every attached
  // device, compiled fresh under the winning pipeline knobs (this is also
  // what lands it in the persistent code cache for the warm path).
  if (Opts.Promote) {
    std::string Err;
    if (Jit.installFinalTier(A.KernelSymbol, R.Winner.Block, Args,
                             &R.Winner.O3, /*DeviceIndex=*/-1,
                             /*ReuseCached=*/false,
                             &Err) != GpuError::Success) {
      R.Error = "winner promotion failed: " + Err;
      R.TuningWallSeconds = Wall.seconds();
      return R;
    }
    R.Promoted = true;
  }

  if (Opts.PersistDecision) {
    TuningDecision D;
    D.GridX = R.Winner.Grid.X;
    D.GridY = R.Winner.Grid.Y;
    D.GridZ = R.Winner.Grid.Z;
    D.BlockX = R.Winner.Block.X;
    D.BlockY = R.Winner.Block.Y;
    D.BlockZ = R.Winner.Block.Z;
    D.Preset = R.Winner.O3.Preset == O3Preset::Fast ? 1 : 0;
    D.EnableLICM = R.Winner.O3.EnableLICM ? 1 : 0;
    D.UnrollMaxTripCount = R.Winner.O3.Unroll.MaxTripCount;
    D.UnrollMaxExpandedInstructions =
        R.Winner.O3.Unroll.MaxExpandedInstructions;
    D.ExpectedSeconds = R.WinnerSeconds;
    D.TrialsRun = static_cast<uint32_t>(R.Trials.size());
    // Persist the roofline verdict with the decision (class + 1; 0 stays
    // "unclassified"), so a warm fleet can see *why* a shape raced few
    // variants without re-running the classifier.
    if (Verdict)
      D.Bottleneck = static_cast<uint8_t>(Verdict->Class) + 1;
    Jit.storeTuningDecision(R.DecisionKey, D);
  }

  R.Ok = true;
  R.TuningWallSeconds = Wall.seconds();
  return R;
}

std::vector<VariantTuningResult>
VariantManager::tuneDirectory(const std::string &Dir) {
  std::vector<VariantTuningResult> Results;
  for (const std::string &Name : fs::listFiles(Dir)) {
    std::string Error;
    std::optional<capture::CaptureArtifact> A =
        capture::readArtifactFile(Dir + "/" + Name, &Error);
    if (!A)
      continue; // not an artifact (or corrupt): nothing to tune
    Results.push_back(tuneArtifact(*A));
  }
  return Results;
}
