//===- AutoAnnotate.cpp - automatic specialization decisions ----------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//

#include "jit/AutoAnnotate.h"

#include "ir/Module.h"
#include "support/Error.h"

#include <algorithm>
#include <unordered_set>

using namespace proteus;
using namespace pir;

const char *proteus::specializationReasonName(SpecializationReason R) {
  switch (R) {
  case SpecializationReason::ControlFlow:
    return "control-flow";
  case SpecializationReason::Addressing:
    return "addressing";
  case SpecializationReason::NumericCompute:
    return "numeric";
  }
  proteus_unreachable("unknown reason");
}

namespace {

/// Taint analysis from one argument value: walks the use graph (through
/// calls into callee bodies) recording which instruction classes the value
/// reaches.
class TaintWalker {
public:
  std::vector<SpecializationReason> run(Value *Root) {
    Worklist.push_back(Root);
    while (!Worklist.empty()) {
      Value *V = Worklist.back();
      Worklist.pop_back();
      if (!Visited.insert(V).second)
        continue;
      for (const Use &U : V->uses())
        classify(V, U);
    }
    std::vector<SpecializationReason> Out;
    if (Control)
      Out.push_back(SpecializationReason::ControlFlow);
    if (Addressing)
      Out.push_back(SpecializationReason::Addressing);
    if (Numeric)
      Out.push_back(SpecializationReason::NumericCompute);
    return Out;
  }

private:
  void classify(Value *Tainted, const Use &U) {
    auto *I = dyn_cast<Instruction>(static_cast<Value *>(U.TheUser));
    if (!I)
      return;
    switch (I->getKind()) {
    case ValueKind::ICmp:
    case ValueKind::FCmp:
      // Comparisons almost always feed branches or selects; treat reaching
      // one as control-relevant (loop bounds land here).
      Control = true;
      Worklist.push_back(I);
      return;
    case ValueKind::Select:
      if (U.OperandIndex == 0)
        Control = true;
      Worklist.push_back(I);
      return;
    case ValueKind::CondBr:
      Control = true;
      return;
    case ValueKind::PtrAdd:
      if (I->getOperand(1) == Tainted)
        Addressing = true;
      Worklist.push_back(I);
      return;
    case ValueKind::Store:
      // A value that is only stored enables nothing.
      return;
    case ValueKind::Call: {
      auto *C = cast<CallInst>(I);
      Function *Callee = C->getCallee();
      // Taint the corresponding formal parameter inside the callee.
      for (size_t A = 0; A != C->getNumArgs(); ++A)
        if (C->getArg(A) == Tainted && A < Callee->getNumArgs())
          Worklist.push_back(Callee->getArg(A));
      // The call result may also carry the taint onward.
      if (!C->getType()->isVoid())
        Worklist.push_back(C);
      return;
    }
    default:
      break;
    }
    if (I->getType()->isFloatingPoint() &&
        (isa<BinaryInst>(I) || isa<UnaryInst>(I)))
      Numeric = true;
    if (!I->getType()->isVoid())
      Worklist.push_back(I);
  }

  std::vector<Value *> Worklist;
  std::unordered_set<Value *> Visited;
  bool Control = false;
  bool Addressing = false;
  bool Numeric = false;
};

} // namespace

std::vector<ArgRecommendation>
proteus::suggestJitAnnotations(Function &Kernel) {
  std::vector<ArgRecommendation> Out;
  for (size_t I = 0; I != Kernel.getNumArgs(); ++I) {
    Argument *A = Kernel.getArg(I);
    // Pointer arguments address mutable data: their *pointees* are not
    // runtime constants, so folding the pointer itself buys nothing and is
    // what the paper's methodology excludes.
    if (A->getType()->isPointer())
      continue;
    if (!A->hasUses())
      continue;
    TaintWalker W;
    std::vector<SpecializationReason> Reasons = W.run(A);
    if (Reasons.empty())
      continue;
    Out.push_back(ArgRecommendation{static_cast<uint32_t>(I + 1),
                                    std::move(Reasons)});
  }
  return Out;
}

unsigned proteus::autoAnnotateKernels(Module &M) {
  unsigned Count = 0;
  for (Function *K : M.kernels()) {
    if (K->hasJitAnnotation())
      continue;
    std::vector<ArgRecommendation> Recs = suggestJitAnnotations(*K);
    if (Recs.empty())
      continue;
    JitAnnotation Ann;
    for (const ArgRecommendation &R : Recs)
      Ann.ArgIndices.push_back(R.ArgIndex);
    K->setJitAnnotation(std::move(Ann));
    ++Count;
  }
  return Count;
}
