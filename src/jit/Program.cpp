//===- Program.cpp - host program load and dispatch -------------------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//

#include "jit/Program.h"

using namespace proteus;
using namespace proteus::gpu;

LoadedProgram::LoadedProgram(Device &Dev, const CompiledProgram &Program,
                             JitRuntime *Jit)
    : Dev(Dev), Jit(Jit) {
  // Loading a program on a device the runtime has not seen attaches it:
  // one JitRuntime can serve a program image loaded on several devices
  // (idempotent for the primary device).
  if (Jit)
    Jit->attachDevice(Dev);

  // 1) Register device globals (program-init constructors).
  for (const ImageGlobal &G : Program.Image.Globals) {
    if (gpuRegisterVar(Dev, G.Name, G.Bytes, G.Init) != GpuError::Success) {
      LoadError = "failed to register device global @" + G.Name;
      return;
    }
    if (Jit) {
      DevicePtr Addr = 0;
      gpuGetSymbolAddress(Dev, &Addr, G.Name);
      Jit->registerVar(G.Name, Addr); // __jit_register_var
    }
  }

  // 2) Upload NVIDIA-path bitcode data globals (__jit_bc_<symbol> live in
  // the device data segment).
  std::map<std::string, std::pair<DevicePtr, uint64_t>> DeviceBitcode;
  if (Jit) {
    for (const auto &[Symbol, Bytes] : Program.Image.JitDataGlobals) {
      std::string GlobalName = "__jit_bc_" + Symbol;
      DevicePtr Addr = Dev.registerGlobal(GlobalName, Bytes.size(), Bytes);
      if (!Addr) {
        LoadError = "failed to upload " + GlobalName;
        return;
      }
      DeviceBitcode[Symbol] = {Addr, Bytes.size()};
    }
  }

  // 3) Load AOT kernel binaries. Kernels dispatched through the JIT do not
  // need their AOT objects, but real programs still carry them; loading is
  // cheap and keeps the image faithful.
  for (const auto &[Symbol, Object] : Program.Image.KernelObjects) {
    LoadedKernel *K = nullptr;
    std::string Err;
    if (gpuModuleLoad(Dev, &K, Object, &Err) != GpuError::Success) {
      LoadError = "failed to load AOT kernel @" + Symbol + ": " + Err;
      return;
    }
    AotKernels[Symbol] = K;
  }

  // 4) Register JIT kernels with the runtime library.
  if (Jit) {
    JitKernels = Program.JitKernels;
    for (const std::string &Symbol : Program.JitKernels) {
      JitKernelInfo Info;
      Info.Symbol = Symbol;
      auto AIt = Program.JitArgIndices.find(Symbol);
      if (AIt != Program.JitArgIndices.end())
        Info.AnnotatedArgs = AIt->second;
      auto SIt = Program.Image.JitSections.find(Symbol);
      if (SIt != Program.Image.JitSections.end()) {
        Info.HostBitcode = SIt->second; // .jit.<symbol> section (AMD path)
      } else if (auto DIt = DeviceBitcode.find(Symbol);
                 DIt != DeviceBitcode.end()) {
        Info.DeviceBitcodeAddr = DIt->second.first; // NVIDIA path
        Info.DeviceBitcodeSize = DIt->second.second;
        Info.BitcodeDevice = &Dev; // readback must target this device
      } else {
        LoadError = "no bitcode found for JIT kernel @" + Symbol;
        return;
      }
      // The generic (unspecialized) AOT object doubles as the tier-0
      // launch target for AsyncMode::Fallback.
      if (auto OIt = Program.Image.KernelObjects.find(Symbol);
          OIt != Program.Image.KernelObjects.end())
        Info.GenericObject = OIt->second;
      Jit->registerKernel(std::move(Info));
    }
  }
}

GpuError LoadedProgram::launch(const std::string &Symbol, Dim3 Grid,
                               Dim3 Block,
                               const std::vector<KernelArg> &Args,
                               std::string *Error) {
  if (Jit && JitKernels.count(Symbol))
    return Jit->launchKernel(Symbol, Grid, Block, Args, Error);
  auto It = AotKernels.find(Symbol);
  if (It == AotKernels.end()) {
    if (Error)
      *Error = "unknown kernel @" + Symbol;
    return GpuError::NotFound;
  }
  return gpuLaunchKernel(Dev, *It->second, Grid, Block, Args, Error);
}

DevicePtr LoadedProgram::globalAddress(const std::string &Symbol) const {
  return Dev.getSymbolAddress(Symbol);
}
