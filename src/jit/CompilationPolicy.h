//===- CompilationPolicy.h - bottleneck-aware JIT policy --------*- C++ -*-===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The policy layer between the static analyses and the JIT: it holds the
/// per-(kernel, arch) roofline verdicts produced during compilation (or on
/// demand from artifact bitcode), the critical-kernel set recovered from
/// timeline traces, and the pruning rules the variant manager consults
/// before racing a tuning axis. The rules encode where each axis can
/// possibly pay off:
///
///   * MemoryBound — the bandwidth ceiling binds. None of the compile-side
///     axes reduce bytes moved (and in the simulator's occupancy model the
///     block shape does not change waves-in-flight for a fixed launch), so
///     nothing beyond the recorded default is worth racing.
///   * ComputeBound — pipeline aggressiveness (preset, LICM, unroll) is
///     the lever; block reshapes are not.
///   * RegPressureBound — the launch-bounds budget sweep (block sizes) plus
///     pressure-relevant pipeline knobs race; unrolling, which only adds
///     pressure, is pruned.
///   * LatencyBound — no ceiling clearly binds; race everything.
///
/// Enabled by PROTEUS_POLICY=on; with the policy off the tuner races every
/// axis exactly as before. The verdict also gates Tier-1 promotion: when a
/// critical-kernel set is installed, kernels off the critical path stay at
/// Tier-0 (policy.tier_demotions counts the skips).
///
//===----------------------------------------------------------------------===//

#ifndef PROTEUS_JIT_COMPILATIONPOLICY_H
#define PROTEUS_JIT_COMPILATIONPOLICY_H

#include "analysis/Roofline.h"
#include "codegen/Target.h"

#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace proteus {

/// The independent dimensions of the variant manager's search space.
enum class VariantAxis {
  BlockSize,      ///< block-geometry / launch-bounds budget sweep
  PipelinePreset, ///< O3 preset escalation (o3-fast)
  Licm,           ///< LICM on/off
  Unroll,         ///< unroll aggressiveness
};

const char *variantAxisName(VariantAxis A);

/// One kernel's classification on one architecture.
struct PolicyVerdict {
  pir::analysis::BottleneckClass Class =
      pir::analysis::BottleneckClass::LatencyBound;
  double ArithmeticIntensity = 0;
  double RidgeFlopsPerByte = 0;
};

/// Thread-safe store of verdicts + pruning and promotion rules. One
/// instance lives on the JitRuntime (when PROTEUS_POLICY=on) and is shared
/// with the variant manager.
class CompilationPolicy {
public:
  /// Records (or replaces) the verdict for \p Symbol on \p Arch.
  void recordVerdict(const std::string &Symbol, GpuArch Arch,
                     const PolicyVerdict &V);

  std::optional<PolicyVerdict> verdictFor(const std::string &Symbol,
                                          GpuArch Arch) const;

  /// The pruning table: is \p A worth racing for a kernel classified \p C?
  static bool axisWorthRacing(pir::analysis::BottleneckClass C,
                              VariantAxis A);

  /// Installs the set of kernel names found on the timeline critical path
  /// (analysis/CriticalPath.h). Until this is called every kernel is
  /// promotable; afterwards only members of the set are.
  void setCriticalKernels(std::vector<std::string> Names);

  /// Whether \p Symbol deserves the background Tier-1 promotion compile. A
  /// kernel with timeline slack cannot shorten the run, so it stays at
  /// Tier-0.
  bool shouldPromote(const std::string &Symbol) const;

private:
  mutable std::mutex Mutex;
  std::map<std::pair<std::string, GpuArch>, PolicyVerdict> Verdicts;
  bool HaveCriticalSet = false;
  std::set<std::string> CriticalKernels;
};

} // namespace proteus

#endif // PROTEUS_JIT_COMPILATIONPOLICY_H
