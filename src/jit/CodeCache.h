//===- CodeCache.h - two-level specialization cache -------------*- C++ -*-===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The specialization-aware code cache of paper section 3.3: a fast
/// in-memory first level populated afresh per run, backed by a persistent
/// file-storage level (cache-jit-<hash>.o) that survives across program
/// runs and feeds the in-memory level. Keys jointly hash (1) the module
/// identifier bound to source content, (2) the kernel symbol, and (3) the
/// runtime values of specialized arguments and launch bounds — so a source
/// change or a different specialization can never alias a stale entry.
///
/// The paper's section 3.4 roadmap is implemented as well: optional size
/// limits for both levels with LRU eviction, a runtime-informed (LFU)
/// eviction policy that prefers evicting less-frequently-executed
/// specializations, and environment-variable configuration
/// (PROTEUS_CACHE_*).
///
/// The cache is thread-safe: every public operation is serialized by an
/// internal mutex, so concurrent launch threads and asynchronous compile
/// workers (JitConfig::AsyncMode) can share one instance. Persistent
/// entries are framed with a small integrity header (magic, payload size,
/// integrity hash, execution count, pipeline fingerprint, tier tag —
/// the tiered JIT stores Tier-0 baselines and their promoted Tier-1
/// replacements in the same slot) and written via write-to-temp +
/// atomic-rename, so a crash mid-write can never produce a loadable
/// truncated object: lookup() validates the frame and treats corrupt files
/// as misses (deleting them), forcing a clean recompilation.
///
//===----------------------------------------------------------------------===//

#ifndef PROTEUS_JIT_CODECACHE_H
#define PROTEUS_JIT_CODECACHE_H

#include "codegen/Target.h"
#include "fleet/LocalBackend.h"
#include "transforms/SpecializeArgs.h"

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace proteus {

/// Everything that uniquely identifies one kernel specialization.
struct SpecializationKey {
  uint64_t ModuleId = 0;          // content hash of the source module
  std::string KernelSymbol;
  GpuArch Arch = GpuArch::AmdGcnSim;
  /// Folded argument values (empty when RCF is disabled).
  std::vector<RuntimeArgValue> FoldedArgs;
  /// Launch-bounds threads (0 when LB specialization is disabled).
  uint32_t LaunchBoundsThreads = 0;
};

/// Deterministic 64-bit key hash (stable across runs — persistent cache
/// file names depend on it).
uint64_t computeSpecializationHash(const SpecializationKey &Key);

/// Compilation tier of a cached object (tiered JIT, PROTEUS_TIER=on).
enum class CodeTier : uint8_t {
  Tier0 = 0, ///< fast baseline compile, awaiting background promotion
  Final = 1, ///< full O3 + launch-bounds pipeline output
};

/// A decoded cache entry: the object plus its tier provenance. The
/// fingerprint identifies the exact pipeline that produced the object so a
/// binary persisted by an older/different pipeline is treated as a miss
/// instead of being served as current.
struct CachedCode {
  std::vector<uint8_t> Object;
  CodeTier Tier = CodeTier::Final;
  uint64_t PipelineFingerprint = 0;
};

/// Cache hit/miss accounting.
struct CodeCacheStats {
  uint64_t MemoryHits = 0;
  uint64_t PersistentHits = 0;
  /// Hits served by the shared cache service (PROTEUS_CACHE_REMOTE=on)
  /// rather than this process's memory level or a local disk read — the
  /// three tiers cost very different latencies, so they are attributed
  /// separately.
  uint64_t RemoteHits = 0;
  uint64_t Misses = 0;
  uint64_t Insertions = 0;
  uint64_t MemoryEvictions = 0;
  uint64_t PersistentEvictions = 0;
  /// Persistent entries rejected by the integrity check (truncated or
  /// corrupted files, e.g. after a crash mid-write on a pre-atomic-rename
  /// cache); each is deleted and recompiled.
  uint64_t CorruptPersistentEntries = 0;
};

/// Eviction policy when a size limit is hit (paper section 3.4).
enum class EvictionPolicy {
  LRU, ///< evict the least recently used specialization
  LFU, ///< runtime-informed: evict the least frequently executed one
};

/// Size limits; 0 means unlimited (the paper's default behaviour).
struct CacheLimits {
  uint64_t MaxMemoryBytes = 0;
  uint64_t MaxPersistentBytes = 0;
  EvictionPolicy Policy = EvictionPolicy::LRU;
  /// Shard directories for the persistent level (consistent-hash sharded;
  /// 1 keeps the historical flat layout).
  uint32_t Shards = 1;
  /// Fleet-level on-disk byte budget covering code objects AND tuning
  /// decisions; 0 defers to MaxPersistentBytes (which historically only
  /// accounted code objects — BudgetBytes is the strict superset).
  uint64_t BudgetBytes = 0;

  /// Reads PROTEUS_CACHE_MEM_LIMIT / PROTEUS_CACHE_DISK_LIMIT /
  /// PROTEUS_CACHE_BUDGET (bytes), PROTEUS_CACHE_SHARDS (1..64) and
  /// PROTEUS_CACHE_POLICY from the environment. The policy accepts the
  /// documented spellings "lru", "lfu" and "runtime" (the runtime-informed
  /// policy, an alias for LFU); anything else keeps the default and is
  /// reported per the warn-don't-coerce contract — appended to \p Warnings
  /// (or printed to stderr when null) and counted in the process-wide
  /// "config.errors" counter. Non-numeric limit values are rejected the
  /// same way instead of being read as 0 (= unlimited).
  static CacheLimits fromEnvironment(std::vector<std::string> *Warnings =
                                         nullptr);
};

/// The variant manager's persisted verdict for one (kernel, args, arch,
/// launch shape) tuning key: the winning launch geometry and O3 pipeline
/// knobs, plus provenance (measured time, trial count). Stored alongside
/// the code cache (cache-tune-<hex> files) so a warm fleet never re-races
/// variants it has already tuned — the rocFFT "kernel repo" pattern.
struct TuningDecision {
  uint32_t GridX = 1, GridY = 1, GridZ = 1;
  uint32_t BlockX = 1, BlockY = 1, BlockZ = 1;
  /// O3Preset of the winning pipeline (0 = Full, 1 = Fast).
  uint8_t Preset = 0;
  uint8_t EnableLICM = 1;
  uint64_t UnrollMaxTripCount = 64;
  uint64_t UnrollMaxExpandedInstructions = 4096;
  /// The winner's measured kernel seconds on the replay substrate.
  double ExpectedSeconds = 0;
  /// How many variants were raced to reach this decision.
  uint32_t TrialsRun = 0;
  /// Roofline verdict active when the decision was made, persisted as
  /// BottleneckClass + 1; 0 means no classification was recorded (policy
  /// off, or a decision written before the classifier existed — the old
  /// frame kept this byte zeroed, so both directions decode cleanly).
  uint8_t Bottleneck = 0;
};

/// Deterministic key for a tuning decision: the specialization identity
/// minus the launch geometry (which the decision chooses) — module, kernel,
/// arch, total thread count, and every argument's raw bits.
uint64_t computeTuningKeyHash(uint64_t ModuleId,
                              const std::string &KernelSymbol, GpuArch Arch,
                              uint64_t TotalThreads,
                              const std::vector<uint64_t> &ArgBits);

/// Two-level object cache. The in-memory first level lives here; the
/// persistent level is delegated to a fleet::CacheBackend (a sharded local
/// directory by default, the shared cache service when PROTEUS_CACHE_REMOTE
/// is on) — CodeCache owns the entry framing, the backend owns transport
/// and storage. All persistent access goes through the backend; nothing
/// outside the backend implementations touches the cache directory.
class CodeCache {
public:
  /// \p PersistentDir empty disables the persistent level entirely. Builds
  /// the default sharded local-directory backend from \p Limits.
  CodeCache(bool UseMemory, bool UsePersistent, std::string PersistentDir,
            CacheLimits Limits = CacheLimits());

  /// Same, but persists through the caller-supplied \p Backend (the remote
  /// fleet client, or a test double); a null \p Backend falls back to the
  /// default local backend. \p PersistentDir is still recorded as
  /// persistentDir() for diagnostics.
  CodeCache(bool UseMemory, bool UsePersistent, std::string PersistentDir,
            CacheLimits Limits, std::unique_ptr<fleet::CacheBackend> Backend);

  ~CodeCache();

  /// LocalBackendOptions derived from \p Limits: shards, the effective
  /// byte budget (BudgetBytes, else MaxPersistentBytes), the eviction
  /// policy, and a frequency extractor that decodes the execution count
  /// from framed code entries (for LFU victim selection).
  static fleet::LocalBackendOptions backendOptions(const CacheLimits &Limits);

  /// Looks up \p Hash: memory first, then persistent storage (promoting the
  /// entry into memory on a persistent hit, preserving its execution count
  /// for the LFU policy).
  std::optional<std::vector<uint8_t>> lookup(uint64_t Hash);

  /// Like lookup(), but also returns the entry's tier tag and pipeline
  /// fingerprint so the tiered runtime can distinguish a persisted Tier-0
  /// baseline (serve it, then promote) from a final artifact.
  std::optional<CachedCode> lookupEntry(uint64_t Hash);

  /// Inserts a freshly compiled object into both enabled levels, evicting
  /// per policy when a size limit would be exceeded. Re-inserting an
  /// existing hash updates the entry in place (preserving its execution
  /// count) — this is how a Tier-1 promotion replaces the Tier-0 baseline.
  /// A Tier0 insert never downgrades an existing Final entry.
  void insert(uint64_t Hash, const std::vector<uint8_t> &Object,
              CodeTier Tier = CodeTier::Final, uint64_t PipelineFingerprint = 0);

  /// Snapshot of the counters, taken under the cache lock (safe to read
  /// while other threads keep hitting the cache).
  CodeCacheStats stats() const;

  /// Total bytes held by the in-memory level (Table 3's "maximal code cache
  /// size" when no eviction runs).
  uint64_t memoryBytes() const;

  /// Number of in-memory entries.
  size_t memoryEntries() const;

  /// Total bytes in the persistent directory.
  uint64_t persistentBytes() const;

  /// Drops the in-memory level (simulates a fresh process start while
  /// keeping the persistent level warm); execution counts are written back
  /// to the persistent entries so LFU survives restarts.
  void clearMemory();

  /// Deletes cache-jit-*.o files (the "clear on rebuild" workflow), along
  /// with any stale cache-jit-*.o.tmp-* leftovers from interrupted writes,
  /// and cache-tune-* decision records.
  void clearPersistent();

  /// Looks up a persisted tuning decision: in-memory first, then the
  /// persistent cache-tune-<hex> file (promoting it into memory). Corrupt
  /// files are deleted and counted like corrupt code entries.
  std::optional<TuningDecision> lookupTuningDecision(uint64_t Key);

  /// Stores \p D under \p Key in both enabled levels (write-to-temp +
  /// atomic-rename on disk, like code entries).
  void storeTuningDecision(uint64_t Key, const TuningDecision &D);

  const std::string &persistentDir() const { return Dir; }

  /// The persistent backend (null when the persistent level is disabled).
  fleet::CacheBackend *backend() { return Backend.get(); }

  /// Claims the fleet-wide right to compile \p Hash. Owner means the caller
  /// compiles (and must endCompile() on every exit path); InFlightElsewhere
  /// means another thread or process already is — wait with
  /// waitRemoteCompile(). No-op Owner when the persistent level is off
  /// (in-process dedup is JitRuntime's in-flight table).
  fleet::CompileClaim beginCompile(uint64_t Hash);

  /// Releases a claim (idempotent).
  void endCompile(uint64_t Hash);

  /// Waits for the fleet-wide in-flight compile of \p Hash to publish:
  /// polls the cache with exponential backoff, re-attempting the claim
  /// between polls. Returns the published entry, or std::nullopt when this
  /// caller became the owner instead (claim inherited from a dead owner, or
  /// \p TimeoutMs expired — either way the caller must compile and then
  /// endCompile()).
  std::optional<CachedCode> waitRemoteCompile(uint64_t Hash,
                                              unsigned TimeoutMs = 30000);

private:
  struct Entry {
    std::vector<uint8_t> Object;
    uint64_t HitCount = 0;
    CodeTier Tier = CodeTier::Final;
    uint64_t Fingerprint = 0;
    std::list<uint64_t>::iterator LruIt; // position in LruOrder
  };

  void touchEntry(uint64_t Hash, Entry &E);
  void insertMemoryEntry(uint64_t Hash, std::vector<uint8_t> Object,
                         uint64_t HitCount, CodeTier Tier,
                         uint64_t Fingerprint);
  void enforceMemoryLimit();
  void writeBackHitCount(uint64_t Hash, uint64_t Count);

  const bool UseMemory;
  const bool UsePersistent;
  const std::string Dir;
  const CacheLimits Limits;
  /// Persistent storage; null iff UsePersistent is false.
  const std::unique_ptr<fleet::CacheBackend> Backend;

  mutable std::mutex Mutex; // guards everything below
  std::unordered_map<uint64_t, Entry> Memory;
  /// Recency order: front = most recent.
  std::list<uint64_t> LruOrder;
  uint64_t MemoryBytesTotal = 0;
  /// In-memory level of the tuning-decision store (cleared by
  /// clearMemory, like code entries; the persistent level backs it).
  std::unordered_map<uint64_t, TuningDecision> Tuning;
  CodeCacheStats Stats;
};

} // namespace proteus

#endif // PROTEUS_JIT_CODECACHE_H
