//===- CodeCache.h - two-level specialization cache -------------*- C++ -*-===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The specialization-aware code cache of paper section 3.3: a fast
/// in-memory first level populated afresh per run, backed by a persistent
/// file-storage level (cache-jit-<hash>.o) that survives across program
/// runs and feeds the in-memory level. Keys jointly hash (1) the module
/// identifier bound to source content, (2) the kernel symbol, and (3) the
/// runtime values of specialized arguments and launch bounds — so a source
/// change or a different specialization can never alias a stale entry.
///
/// The paper's section 3.4 roadmap is implemented as well: optional size
/// limits for both levels with LRU eviction, a runtime-informed (LFU)
/// eviction policy that prefers evicting less-frequently-executed
/// specializations, and environment-variable configuration
/// (PROTEUS_CACHE_*).
///
/// The cache is thread-safe: every public operation is serialized by an
/// internal mutex, so concurrent launch threads and asynchronous compile
/// workers (JitConfig::AsyncMode) can share one instance. Persistent
/// entries are framed with a small integrity header (magic, payload size,
/// integrity hash, execution count, pipeline fingerprint, tier tag —
/// the tiered JIT stores Tier-0 baselines and their promoted Tier-1
/// replacements in the same slot) and written via write-to-temp +
/// atomic-rename, so a crash mid-write can never produce a loadable
/// truncated object: lookup() validates the frame and treats corrupt files
/// as misses (deleting them), forcing a clean recompilation.
///
//===----------------------------------------------------------------------===//

#ifndef PROTEUS_JIT_CODECACHE_H
#define PROTEUS_JIT_CODECACHE_H

#include "codegen/Target.h"
#include "transforms/SpecializeArgs.h"

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace proteus {

/// Everything that uniquely identifies one kernel specialization.
struct SpecializationKey {
  uint64_t ModuleId = 0;          // content hash of the source module
  std::string KernelSymbol;
  GpuArch Arch = GpuArch::AmdGcnSim;
  /// Folded argument values (empty when RCF is disabled).
  std::vector<RuntimeArgValue> FoldedArgs;
  /// Launch-bounds threads (0 when LB specialization is disabled).
  uint32_t LaunchBoundsThreads = 0;
};

/// Deterministic 64-bit key hash (stable across runs — persistent cache
/// file names depend on it).
uint64_t computeSpecializationHash(const SpecializationKey &Key);

/// Compilation tier of a cached object (tiered JIT, PROTEUS_TIER=on).
enum class CodeTier : uint8_t {
  Tier0 = 0, ///< fast baseline compile, awaiting background promotion
  Final = 1, ///< full O3 + launch-bounds pipeline output
};

/// A decoded cache entry: the object plus its tier provenance. The
/// fingerprint identifies the exact pipeline that produced the object so a
/// binary persisted by an older/different pipeline is treated as a miss
/// instead of being served as current.
struct CachedCode {
  std::vector<uint8_t> Object;
  CodeTier Tier = CodeTier::Final;
  uint64_t PipelineFingerprint = 0;
};

/// Cache hit/miss accounting.
struct CodeCacheStats {
  uint64_t MemoryHits = 0;
  uint64_t PersistentHits = 0;
  uint64_t Misses = 0;
  uint64_t Insertions = 0;
  uint64_t MemoryEvictions = 0;
  uint64_t PersistentEvictions = 0;
  /// Persistent entries rejected by the integrity check (truncated or
  /// corrupted files, e.g. after a crash mid-write on a pre-atomic-rename
  /// cache); each is deleted and recompiled.
  uint64_t CorruptPersistentEntries = 0;
};

/// Eviction policy when a size limit is hit (paper section 3.4).
enum class EvictionPolicy {
  LRU, ///< evict the least recently used specialization
  LFU, ///< runtime-informed: evict the least frequently executed one
};

/// Size limits; 0 means unlimited (the paper's default behaviour).
struct CacheLimits {
  uint64_t MaxMemoryBytes = 0;
  uint64_t MaxPersistentBytes = 0;
  EvictionPolicy Policy = EvictionPolicy::LRU;

  /// Reads PROTEUS_CACHE_MEM_LIMIT / PROTEUS_CACHE_DISK_LIMIT (bytes) and
  /// PROTEUS_CACHE_POLICY ("lru"/"lfu") from the environment.
  static CacheLimits fromEnvironment();
};

/// Two-level object cache.
class CodeCache {
public:
  /// \p PersistentDir empty disables the persistent level entirely.
  CodeCache(bool UseMemory, bool UsePersistent, std::string PersistentDir,
            CacheLimits Limits = CacheLimits());

  /// Looks up \p Hash: memory first, then persistent storage (promoting the
  /// entry into memory on a persistent hit, preserving its execution count
  /// for the LFU policy).
  std::optional<std::vector<uint8_t>> lookup(uint64_t Hash);

  /// Like lookup(), but also returns the entry's tier tag and pipeline
  /// fingerprint so the tiered runtime can distinguish a persisted Tier-0
  /// baseline (serve it, then promote) from a final artifact.
  std::optional<CachedCode> lookupEntry(uint64_t Hash);

  /// Inserts a freshly compiled object into both enabled levels, evicting
  /// per policy when a size limit would be exceeded. Re-inserting an
  /// existing hash updates the entry in place (preserving its execution
  /// count) — this is how a Tier-1 promotion replaces the Tier-0 baseline.
  /// A Tier0 insert never downgrades an existing Final entry.
  void insert(uint64_t Hash, const std::vector<uint8_t> &Object,
              CodeTier Tier = CodeTier::Final, uint64_t PipelineFingerprint = 0);

  /// Snapshot of the counters, taken under the cache lock (safe to read
  /// while other threads keep hitting the cache).
  CodeCacheStats stats() const;

  /// Total bytes held by the in-memory level (Table 3's "maximal code cache
  /// size" when no eviction runs).
  uint64_t memoryBytes() const;

  /// Number of in-memory entries.
  size_t memoryEntries() const;

  /// Total bytes in the persistent directory.
  uint64_t persistentBytes() const;

  /// Drops the in-memory level (simulates a fresh process start while
  /// keeping the persistent level warm); execution counts are written back
  /// to the persistent entries so LFU survives restarts.
  void clearMemory();

  /// Deletes cache-jit-*.o files (the "clear on rebuild" workflow), along
  /// with any stale cache-jit-*.o.tmp-* leftovers from interrupted writes.
  void clearPersistent();

  const std::string &persistentDir() const { return Dir; }

private:
  struct Entry {
    std::vector<uint8_t> Object;
    uint64_t HitCount = 0;
    CodeTier Tier = CodeTier::Final;
    uint64_t Fingerprint = 0;
    std::list<uint64_t>::iterator LruIt; // position in LruOrder
  };

  std::string pathFor(uint64_t Hash) const;
  void touchEntry(uint64_t Hash, Entry &E);
  void insertMemoryEntry(uint64_t Hash, std::vector<uint8_t> Object,
                         uint64_t HitCount, CodeTier Tier,
                         uint64_t Fingerprint);
  void enforceMemoryLimit();
  void enforcePersistentLimit();
  void writeBackHitCount(uint64_t Hash, uint64_t Count);

  const bool UseMemory;
  const bool UsePersistent;
  const std::string Dir;
  const CacheLimits Limits;

  mutable std::mutex Mutex; // guards everything below
  std::unordered_map<uint64_t, Entry> Memory;
  /// Recency order: front = most recent.
  std::list<uint64_t> LruOrder;
  uint64_t MemoryBytesTotal = 0;
  CodeCacheStats Stats;
};

} // namespace proteus

#endif // PROTEUS_JIT_CODECACHE_H
