//===- CodeCache.h - two-level specialization cache -------------*- C++ -*-===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The specialization-aware code cache of paper section 3.3: a fast
/// in-memory first level populated afresh per run, backed by a persistent
/// file-storage level (cache-jit-<hash>.o) that survives across program
/// runs and feeds the in-memory level. Keys jointly hash (1) the module
/// identifier bound to source content, (2) the kernel symbol, and (3) the
/// runtime values of specialized arguments and launch bounds — so a source
/// change or a different specialization can never alias a stale entry.
///
/// The paper's section 3.4 roadmap is implemented as well: optional size
/// limits for both levels with LRU eviction, a runtime-informed (LFU)
/// eviction policy that prefers evicting less-frequently-executed
/// specializations, and environment-variable configuration
/// (PROTEUS_CACHE_*).
///
/// The cache is thread-safe: every public operation is serialized by an
/// internal mutex, so concurrent launch threads and asynchronous compile
/// workers (JitConfig::AsyncMode) can share one instance. Persistent
/// entries are framed with a small integrity header (magic, payload size,
/// integrity hash, execution count, pipeline fingerprint, tier tag —
/// the tiered JIT stores Tier-0 baselines and their promoted Tier-1
/// replacements in the same slot) and written via write-to-temp +
/// atomic-rename, so a crash mid-write can never produce a loadable
/// truncated object: lookup() validates the frame and treats corrupt files
/// as misses (deleting them), forcing a clean recompilation.
///
//===----------------------------------------------------------------------===//

#ifndef PROTEUS_JIT_CODECACHE_H
#define PROTEUS_JIT_CODECACHE_H

#include "codegen/Target.h"
#include "transforms/SpecializeArgs.h"

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace proteus {

/// Everything that uniquely identifies one kernel specialization.
struct SpecializationKey {
  uint64_t ModuleId = 0;          // content hash of the source module
  std::string KernelSymbol;
  GpuArch Arch = GpuArch::AmdGcnSim;
  /// Folded argument values (empty when RCF is disabled).
  std::vector<RuntimeArgValue> FoldedArgs;
  /// Launch-bounds threads (0 when LB specialization is disabled).
  uint32_t LaunchBoundsThreads = 0;
};

/// Deterministic 64-bit key hash (stable across runs — persistent cache
/// file names depend on it).
uint64_t computeSpecializationHash(const SpecializationKey &Key);

/// Compilation tier of a cached object (tiered JIT, PROTEUS_TIER=on).
enum class CodeTier : uint8_t {
  Tier0 = 0, ///< fast baseline compile, awaiting background promotion
  Final = 1, ///< full O3 + launch-bounds pipeline output
};

/// A decoded cache entry: the object plus its tier provenance. The
/// fingerprint identifies the exact pipeline that produced the object so a
/// binary persisted by an older/different pipeline is treated as a miss
/// instead of being served as current.
struct CachedCode {
  std::vector<uint8_t> Object;
  CodeTier Tier = CodeTier::Final;
  uint64_t PipelineFingerprint = 0;
};

/// Cache hit/miss accounting.
struct CodeCacheStats {
  uint64_t MemoryHits = 0;
  uint64_t PersistentHits = 0;
  uint64_t Misses = 0;
  uint64_t Insertions = 0;
  uint64_t MemoryEvictions = 0;
  uint64_t PersistentEvictions = 0;
  /// Persistent entries rejected by the integrity check (truncated or
  /// corrupted files, e.g. after a crash mid-write on a pre-atomic-rename
  /// cache); each is deleted and recompiled.
  uint64_t CorruptPersistentEntries = 0;
};

/// Eviction policy when a size limit is hit (paper section 3.4).
enum class EvictionPolicy {
  LRU, ///< evict the least recently used specialization
  LFU, ///< runtime-informed: evict the least frequently executed one
};

/// Size limits; 0 means unlimited (the paper's default behaviour).
struct CacheLimits {
  uint64_t MaxMemoryBytes = 0;
  uint64_t MaxPersistentBytes = 0;
  EvictionPolicy Policy = EvictionPolicy::LRU;

  /// Reads PROTEUS_CACHE_MEM_LIMIT / PROTEUS_CACHE_DISK_LIMIT (bytes) and
  /// PROTEUS_CACHE_POLICY from the environment. The policy accepts the
  /// documented spellings "lru", "lfu" and "runtime" (the runtime-informed
  /// policy, an alias for LFU); anything else keeps the default and is
  /// reported per the warn-don't-coerce contract — appended to \p Warnings
  /// (or printed to stderr when null) and counted in the process-wide
  /// "config.errors" counter. Non-numeric limit values are rejected the
  /// same way instead of being read as 0 (= unlimited).
  static CacheLimits fromEnvironment(std::vector<std::string> *Warnings =
                                         nullptr);
};

/// The variant manager's persisted verdict for one (kernel, args, arch,
/// launch shape) tuning key: the winning launch geometry and O3 pipeline
/// knobs, plus provenance (measured time, trial count). Stored alongside
/// the code cache (cache-tune-<hex> files) so a warm fleet never re-races
/// variants it has already tuned — the rocFFT "kernel repo" pattern.
struct TuningDecision {
  uint32_t GridX = 1, GridY = 1, GridZ = 1;
  uint32_t BlockX = 1, BlockY = 1, BlockZ = 1;
  /// O3Preset of the winning pipeline (0 = Full, 1 = Fast).
  uint8_t Preset = 0;
  uint8_t EnableLICM = 1;
  uint64_t UnrollMaxTripCount = 64;
  uint64_t UnrollMaxExpandedInstructions = 4096;
  /// The winner's measured kernel seconds on the replay substrate.
  double ExpectedSeconds = 0;
  /// How many variants were raced to reach this decision.
  uint32_t TrialsRun = 0;
  /// Roofline verdict active when the decision was made, persisted as
  /// BottleneckClass + 1; 0 means no classification was recorded (policy
  /// off, or a decision written before the classifier existed — the old
  /// frame kept this byte zeroed, so both directions decode cleanly).
  uint8_t Bottleneck = 0;
};

/// Deterministic key for a tuning decision: the specialization identity
/// minus the launch geometry (which the decision chooses) — module, kernel,
/// arch, total thread count, and every argument's raw bits.
uint64_t computeTuningKeyHash(uint64_t ModuleId,
                              const std::string &KernelSymbol, GpuArch Arch,
                              uint64_t TotalThreads,
                              const std::vector<uint64_t> &ArgBits);

/// Two-level object cache.
class CodeCache {
public:
  /// \p PersistentDir empty disables the persistent level entirely.
  CodeCache(bool UseMemory, bool UsePersistent, std::string PersistentDir,
            CacheLimits Limits = CacheLimits());

  /// Looks up \p Hash: memory first, then persistent storage (promoting the
  /// entry into memory on a persistent hit, preserving its execution count
  /// for the LFU policy).
  std::optional<std::vector<uint8_t>> lookup(uint64_t Hash);

  /// Like lookup(), but also returns the entry's tier tag and pipeline
  /// fingerprint so the tiered runtime can distinguish a persisted Tier-0
  /// baseline (serve it, then promote) from a final artifact.
  std::optional<CachedCode> lookupEntry(uint64_t Hash);

  /// Inserts a freshly compiled object into both enabled levels, evicting
  /// per policy when a size limit would be exceeded. Re-inserting an
  /// existing hash updates the entry in place (preserving its execution
  /// count) — this is how a Tier-1 promotion replaces the Tier-0 baseline.
  /// A Tier0 insert never downgrades an existing Final entry.
  void insert(uint64_t Hash, const std::vector<uint8_t> &Object,
              CodeTier Tier = CodeTier::Final, uint64_t PipelineFingerprint = 0);

  /// Snapshot of the counters, taken under the cache lock (safe to read
  /// while other threads keep hitting the cache).
  CodeCacheStats stats() const;

  /// Total bytes held by the in-memory level (Table 3's "maximal code cache
  /// size" when no eviction runs).
  uint64_t memoryBytes() const;

  /// Number of in-memory entries.
  size_t memoryEntries() const;

  /// Total bytes in the persistent directory.
  uint64_t persistentBytes() const;

  /// Drops the in-memory level (simulates a fresh process start while
  /// keeping the persistent level warm); execution counts are written back
  /// to the persistent entries so LFU survives restarts.
  void clearMemory();

  /// Deletes cache-jit-*.o files (the "clear on rebuild" workflow), along
  /// with any stale cache-jit-*.o.tmp-* leftovers from interrupted writes,
  /// and cache-tune-* decision records.
  void clearPersistent();

  /// Looks up a persisted tuning decision: in-memory first, then the
  /// persistent cache-tune-<hex> file (promoting it into memory). Corrupt
  /// files are deleted and counted like corrupt code entries.
  std::optional<TuningDecision> lookupTuningDecision(uint64_t Key);

  /// Stores \p D under \p Key in both enabled levels (write-to-temp +
  /// atomic-rename on disk, like code entries).
  void storeTuningDecision(uint64_t Key, const TuningDecision &D);

  const std::string &persistentDir() const { return Dir; }

private:
  struct Entry {
    std::vector<uint8_t> Object;
    uint64_t HitCount = 0;
    CodeTier Tier = CodeTier::Final;
    uint64_t Fingerprint = 0;
    std::list<uint64_t>::iterator LruIt; // position in LruOrder
  };

  std::string pathFor(uint64_t Hash) const;
  std::string tunePathFor(uint64_t Key) const;
  void touchEntry(uint64_t Hash, Entry &E);
  void insertMemoryEntry(uint64_t Hash, std::vector<uint8_t> Object,
                         uint64_t HitCount, CodeTier Tier,
                         uint64_t Fingerprint);
  void enforceMemoryLimit();
  void enforcePersistentLimit();
  void writeBackHitCount(uint64_t Hash, uint64_t Count);

  const bool UseMemory;
  const bool UsePersistent;
  const std::string Dir;
  const CacheLimits Limits;

  mutable std::mutex Mutex; // guards everything below
  std::unordered_map<uint64_t, Entry> Memory;
  /// Recency order: front = most recent.
  std::list<uint64_t> LruOrder;
  uint64_t MemoryBytesTotal = 0;
  /// In-memory level of the tuning-decision store (cleared by
  /// clearMemory, like code entries; the persistent level backs it).
  std::unordered_map<uint64_t, TuningDecision> Tuning;
  CodeCacheStats Stats;
};

} // namespace proteus

#endif // PROTEUS_JIT_CODECACHE_H
