//===- Replay.h - standalone capture-artifact replay ------------*- C++ -*-===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Replays a capture artifact (src/capture) in isolation: a fresh simulated
/// device is rebuilt to the captured address map (claimed allocations at
/// their original addresses, globals pinned to their original symbols),
/// pre-launch memory images are restored, and the launch is re-JITed through
/// a real JitRuntime — the identical pipeline live launches take, so replay
/// exercises specialization, O3, the sanitizer, tiering, everything.
/// Afterwards the replayed output memory and the freshly computed
/// specialization hash are diffed against the values recorded at capture
/// time.
///
/// The determinism contract: the simulator is functional (every thread
/// executes, memory effects are exact), so as long as the JIT pipeline is
/// semantics-preserving, replay must be byte-identical — under any
/// PROTEUS_TIER / PROTEUS_ANALYZE override the caller layers into
/// ReplayOptions::Jit. A mismatch is therefore always a finding: a
/// miscompilation, a nondeterministic pass, or a capture bug.
///
//===----------------------------------------------------------------------===//

#ifndef PROTEUS_JIT_REPLAY_H
#define PROTEUS_JIT_REPLAY_H

#include "capture/Artifact.h"
#include "jit/JitRuntime.h"

#include <cstdint>
#include <optional>
#include <string>

namespace proteus {

/// Knobs for one replay run.
struct ReplayOptions {
  /// Base JIT configuration. Typically JitConfig::fromEnvironment() so the
  /// PROTEUS_TIER / PROTEUS_ANALYZE / PROTEUS_ASYNC overrides apply; replay
  /// then forces the artifact's specialization knobs (RCF, launch bounds)
  /// on top — they are inputs of the recorded hash — plus Sync mode and
  /// capture off (a replay must not re-capture itself).
  JitConfig Jit;
  /// When non-empty, the replay runtime uses this persistent cache
  /// directory (artifact-aware warm load: a second replay of the same
  /// artifact against the same directory compiles nothing).
  std::string CacheDir;
  /// Launch-geometry override: when set, the replay launches Grid x Block
  /// instead of the recorded geometry (the variant manager races block-size
  /// variants this way; the replayed specialization hash then incorporates
  /// the overridden launch bounds, so HashMatch is only meaningful without
  /// an override). The differential output check still runs — a kernel
  /// whose result depends on its launch geometry fails OutputMatch and
  /// disqualifies itself as a variant.
  bool OverrideGeometry = false;
  gpu::Dim3 Grid{1, 1, 1};
  gpu::Dim3 Block{1, 1, 1};
  /// Device-architecture override: when set, the replay device is built
  /// with this arch instead of the recorded one, exercising the retarget
  /// path — the artifact's bitcode recompiles through the target arch's
  /// backend. Like a geometry override, the replayed specialization hash
  /// then keys the overridden arch, so HashMatch is only meaningful when
  /// the override equals the recorded arch. The differential output check
  /// still applies in full: the simulator is functional, so a retargeted
  /// kernel must reproduce the captured bytes exactly.
  std::optional<GpuArch> ArchOverride;
};

/// Outcome of one replay.
struct ReplayResult {
  /// False when the replay could not run at all (bad artifact, device
  /// rebuild failure, launch error) — see Error.
  bool Ok = false;
  std::string Error;

  /// Byte-exact comparison of every captured region's post-launch image.
  bool OutputMatch = false;
  /// The replayed specialization hash equals the recorded one.
  bool HashMatch = false;

  uint64_t RecordedHash = 0;
  uint64_t ReplayedHash = 0;
  unsigned MismatchedRegions = 0;
  /// Human-readable description of the first differing byte, when any.
  std::string FirstMismatch;

  /// Compiles the replay actually performed (full-pipeline + Tier-0); 0
  /// means every object came out of the (persistent) code cache.
  uint64_t CompilationsUsed = 0;

  /// Performance readings from the replay device — the variant manager's
  /// scoring inputs. Launch is the executed launch's counter set
  /// (Device::LastLaunch); KernelSeconds is the device's kernel-only
  /// simulated time, SimulatedSeconds its makespan.
  gpu::LaunchStats Launch;
  double KernelSeconds = 0;
  double SimulatedSeconds = 0;

  /// Full success: ran, outputs match, hash matches.
  bool passed() const { return Ok && OutputMatch && HashMatch; }
};

/// Replays \p A on a fresh device under \p Opts and diffs against the
/// capture-time record.
ReplayResult replayArtifact(const capture::CaptureArtifact &A,
                            const ReplayOptions &Opts);

} // namespace proteus

#endif // PROTEUS_JIT_REPLAY_H
