//===- AutoTuner.h - kernel variant manager and auto-tuning -----*- C++ -*-===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's section 6 future-work item "exploring runtime optimizations
/// like kernel scheduling and auto-tuning", built on the pieces Proteus
/// already has — grown here into a kernel *variant manager*:
///
/// For one (kernel, args, arch) specialization the manager generates
/// several competing variants — block-size / launch-bounds budgets, the
/// fast vs. full O3 preset, LICM on/off, wider loop unrolling — and races
/// them on *replayed* capture artifacts (src/capture + Replay.h): each
/// trial rebuilds a fresh simulated device from the artifact's pre-launch
/// images, so trials are side-effect-free by construction, never touch a
/// live device, and every trial's output is differentially checked against
/// the recorded post-launch images. A kernel whose result depends on its
/// launch geometry simply fails the output check and disqualifies that
/// variant — correctness gates the race, not heuristics.
///
/// The empirical winner is promoted through the Tier-1 hot-swap path
/// (JitRuntime::installFinalTier) on every attached device holding the
/// kernel, and the decision is persisted in the code cache keyed by
/// (module, kernel, arch, total threads, argument bits) — the rocFFT
/// "kernel repo" idea — so a warm fleet never re-tunes: the next run loads
/// the decision, installs the winner from the persistent code cache with
/// zero compiles, and records a TunerCacheHits.
///
/// The legacy entry point autotuneBlockSize() remains for callers holding a
/// live device: it times candidate block sizes on the device itself (memory
/// snapshot/restore around trials, per-stream timelines restored after),
/// now correctly targeting whichever attached device it is handed.
///
//===----------------------------------------------------------------------===//

#ifndef PROTEUS_JIT_AUTOTUNER_H
#define PROTEUS_JIT_AUTOTUNER_H

#include "capture/Artifact.h"
#include "jit/JitRuntime.h"
#include "jit/Replay.h"

namespace proteus {

/// Result of one legacy on-device tuning trial.
struct TuningTrial {
  uint32_t ThreadsPerBlock = 0;
  double KernelSeconds = 0;
  bool Ok = false;
};

/// Outcome of a legacy on-device tuning session.
struct TuningResult {
  bool Ok = false;
  std::string Error;
  uint32_t BestThreadsPerBlock = 0;
  double BestSeconds = 0;
  std::vector<TuningTrial> Trials;
};

/// Tries each candidate block size for \p Symbol over \p TotalThreads
/// work items (grid = ceil(total / block)) on \p Dev — which may be any
/// device attached to \p Jit, not just the primary — restoring device
/// memory and per-stream timelines after the trials, and returns the
/// fastest configuration. Each trial is pinned to the final compilation
/// tier (JitRuntime::installFinalTier) before it is timed, so under
/// PROTEUS_TIER=on every candidate races the same Tier-1 code instead of
/// early candidates being timed on Tier-0 baselines. Candidates that do
/// not form a valid launch are skipped. Handing a device that is not
/// attached to \p Jit is a counted error (TunerErrors).
TuningResult autotuneBlockSize(gpu::Device &Dev, JitRuntime &Jit,
                               const std::string &Symbol,
                               uint64_t TotalThreads,
                               const std::vector<gpu::KernelArg> &Args,
                               const std::vector<uint32_t> &Candidates = {
                                   64, 128, 256, 512, 1024});

/// One competing configuration of a kernel specialization.
struct VariantSpec {
  std::string Name;
  gpu::Dim3 Grid{1, 1, 1};
  gpu::Dim3 Block{1, 1, 1};
  O3Options O3;
};

/// Outcome of racing one variant on the replay substrate.
struct VariantTrial {
  VariantSpec Spec;
  bool Ok = false;
  /// Replayed output bytes matched the artifact's recorded post-images
  /// (a variant that changes results is never eligible to win).
  bool OutputMatch = false;
  double KernelSeconds = 0;
  uint64_t Compilations = 0;
  gpu::LaunchStats Stats;
  std::string Error;
};

/// Outcome of one variant-manager tuning session.
struct VariantTuningResult {
  bool Ok = false;
  /// The decision came from the persisted store: nothing was raced.
  bool FromCache = false;
  /// The winner was installed (hot-swapped) on the runtime's devices.
  bool Promoted = false;
  std::string Error;
  VariantSpec Winner;
  double WinnerSeconds = 0;
  /// The recorded default configuration's trial time (variant 0), for
  /// speedup reporting. 0 when the default trial failed.
  double BaselineSeconds = 0;
  /// Simulated device seconds spent across all trials — the tuning cost,
  /// reported separately from program device time (trials run on throwaway
  /// replay devices and never advance a live device's clock).
  double TuningSeconds = 0;
  /// Host wall-clock seconds the tuning session took.
  double TuningWallSeconds = 0;
  /// Persisted-decision key (computeTuningKeyHash inputs from the
  /// artifact).
  uint64_t DecisionKey = 0;
  std::vector<VariantTrial> Trials;
};

/// Races competing variants of captured kernel launches and manages the
/// persisted per-(arch, shape) decisions. One instance serves one
/// JitRuntime; tuning sessions are independent per artifact.
class VariantManager {
public:
  struct Options {
    /// Master switch (PROTEUS_TUNE). Disabled sessions return immediately.
    bool Enabled = true;
    /// Maximum trials per specialization (PROTEUS_TUNE_BUDGET). The
    /// recorded default configuration always races, so the budget is
    /// effectively clamped to at least 1.
    unsigned Budget = 8;
    /// Block sizes to race (each with grid = ceil(total work / block)).
    std::vector<uint32_t> BlockCandidates{64, 128, 256, 512};
    /// Persist the winning decision in the code cache.
    bool PersistDecision = true;
    /// Hot-swap the winner onto every attached device after the race.
    bool Promote = true;

    /// Derives the tuning knobs from a runtime configuration
    /// (PROTEUS_TUNE / PROTEUS_TUNE_BUDGET land here).
    static Options fromConfig(const JitConfig &C) {
      Options O;
      O.Enabled = C.Tune;
      O.Budget = C.TuneBudget;
      return O;
    }
  };

  explicit VariantManager(JitRuntime &Jit) : Jit(Jit) {}
  VariantManager(JitRuntime &Jit, Options Opts)
      : Jit(Jit), Opts(std::move(Opts)) {}

  /// The competing variants for \p A, budget-capped. Variant 0 is always
  /// the recorded default (the artifact's geometry under the runtime's own
  /// O3 configuration) so the race always includes the status quo.
  ///
  /// With PROTEUS_POLICY=on and a roofline verdict recorded for
  /// (A.KernelSymbol, A.Arch), tuning axes the classification says cannot
  /// pay off are dropped *before* the budget cap — so PROTEUS_TUNE_BUDGET
  /// bounds raced trials, and pruned variants never consume budget slots
  /// (policy.pruned_trials counts them).
  std::vector<VariantSpec> generateVariants(
      const capture::CaptureArtifact &A) const;

  /// The policy verdict for \p A's (kernel, arch), classifying the
  /// artifact's own bitcode on the static roofline when the runtime has
  /// not compiled (and hence classified) this kernel yet. Returns nullopt
  /// when the policy is off or the bitcode cannot be classified.
  std::optional<PolicyVerdict> ensureVerdict(const capture::CaptureArtifact &A);

  /// Tunes one captured launch: consults the persisted decision store
  /// first (a hit installs the winner warm and races nothing), otherwise
  /// races generateVariants() on the replay substrate, promotes the
  /// winner on every attached device, and persists the decision.
  VariantTuningResult tuneArtifact(const capture::CaptureArtifact &A);

  /// Reads every capture artifact in \p Dir and tunes each in turn
  /// (unreadable files are skipped). Returns one result per artifact
  /// tuned.
  std::vector<VariantTuningResult> tuneDirectory(const std::string &Dir);

private:
  JitRuntime &Jit;
  Options Opts;
};

} // namespace proteus

#endif // PROTEUS_JIT_AUTOTUNER_H
