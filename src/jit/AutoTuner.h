//===- AutoTuner.h - launch-configuration auto-tuning -----------*- C++ -*-===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's section 6 future-work item "exploring runtime optimizations
/// like kernel scheduling and auto-tuning", built on the pieces Proteus
/// already has: because the JIT can produce one specialization *per launch
/// configuration* (launch bounds!), an auto-tuner can try several block
/// sizes for the same total work, time them, and pin the winner for all
/// subsequent launches. Device memory is snapshotted and restored around
/// the trial launches so tuning is externally side-effect-free; every trial
/// specialization lands in the regular code cache, so the winning
/// configuration's binary is already warm when real execution proceeds.
///
//===----------------------------------------------------------------------===//

#ifndef PROTEUS_JIT_AUTOTUNER_H
#define PROTEUS_JIT_AUTOTUNER_H

#include "jit/JitRuntime.h"

namespace proteus {

/// Result of one tuning trial.
struct TuningTrial {
  uint32_t ThreadsPerBlock = 0;
  double KernelSeconds = 0;
  bool Ok = false;
};

/// Outcome of a tuning session.
struct TuningResult {
  bool Ok = false;
  std::string Error;
  uint32_t BestThreadsPerBlock = 0;
  double BestSeconds = 0;
  std::vector<TuningTrial> Trials;
};

/// Tries each candidate block size for \p Symbol over \p TotalThreads
/// work items (grid = ceil(total / block)), restoring device memory after
/// every trial, and returns the fastest configuration. Candidates that do
/// not divide into a valid launch are skipped.
TuningResult autotuneBlockSize(gpu::Device &Dev, JitRuntime &Jit,
                               const std::string &Symbol,
                               uint64_t TotalThreads,
                               const std::vector<gpu::KernelArg> &Args,
                               const std::vector<uint32_t> &Candidates = {
                                   64, 128, 256, 512, 1024});

} // namespace proteus

#endif // PROTEUS_JIT_AUTOTUNER_H
