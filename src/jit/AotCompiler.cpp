//===- AotCompiler.cpp - AOT split compilation with JIT extensions -----------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//

#include "jit/AotCompiler.h"

#include "bitcode/Bitcode.h"
#include "ir/Cloning.h"
#include "ir/Context.h"
#include "ir/IRParser.h"
#include "ir/IRPrinter.h"
#include "ir/Module.h"
#include "support/Hashing.h"
#include "support/Timer.h"

#include <functional>
#include <unordered_set>

using namespace proteus;
using namespace pir;

uint64_t DeviceImage::totalBytes() const {
  uint64_t Total = 0;
  for (const auto &[Sym, Obj] : KernelObjects)
    Total += Obj.size();
  for (const auto &[Sym, BC] : JitSections)
    Total += BC.size();
  for (const auto &[Sym, BC] : JitDataGlobals)
    Total += BC.size();
  for (const ImageGlobal &G : Globals)
    Total += G.Bytes;
  return Total;
}

std::unique_ptr<Module>
proteus::extractKernelModule(Module &Source, const std::string &KernelName) {
  Function *Kernel = Source.getFunction(KernelName);
  assert(Kernel && Kernel->isKernel() && "extracting unknown kernel");

  // Transitive closure of callees and referenced globals, collected in
  // post-order so that callees are cloned before their callers (device code
  // is non-recursive; the inliner enforces that later anyway).
  std::unordered_set<GlobalVariable *> NeededGlobals;
  std::unordered_set<Function *> Visited;
  std::vector<Function *> PostOrder;
  std::function<void(Function *)> Visit = [&](Function *F) {
    if (!Visited.insert(F).second)
      return;
    for (BasicBlock &BB : *F)
      for (Instruction &I : BB)
        for (Value *Op : I.operands()) {
          if (auto *Callee = dyn_cast<Function>(Op))
            Visit(Callee);
          else if (auto *G = dyn_cast<GlobalVariable>(Op))
            NeededGlobals.insert(G);
        }
    PostOrder.push_back(F);
  };
  Visit(Kernel);

  auto Out = std::make_unique<Module>(Source.getContext(),
                                      Source.getName() + "." + KernelName);
  // Globals first (deterministic: source order).
  for (const auto &G : Source.globals())
    if (NeededGlobals.count(G.get()))
      Out->createGlobal(G->getName(), G->getElemType(), G->getNumElements(),
                        G->getInit());
  for (Function *F : PostOrder)
    cloneFunctionInto(*Out, *F, F->getName());
  return Out;
}

CompiledProgram proteus::aotCompile(Module &Source,
                                    const AotOptions &Options) {
  CompiledProgram Out;
  Out.Image.Arch = Options.Arch;
  const TargetInfo &Target = getTarget(Options.Arch);
  Timer Total;

  // The module identifier is bound to source content *before* optimization,
  // exactly like LLVM's module id in the paper: any source edit changes it.
  Out.ModuleId = Source.computeModuleId();

  // --- Front end -----------------------------------------------------------
  // Stand-in for the C++/HIP front end: lex/parse/semantic passes over the
  // program's source, proportional to program size (three passes, like
  // lexing + parsing + IR generation). This keeps the *ratios* of Figure 5
  // meaningful: extension costs are measured against a real build baseline.
  {
    Timer Fe;
    std::string Text = printModule(Source);
    for (int Pass = 0; Pass != 3; ++Pass) {
      pir::Context FeCtx;
      pir::ParseResult R = pir::parseModule(FeCtx, Text);
      if (!R.M)
        break; // never happens for printer output
    }
    Out.Stats.FrontendSeconds = Fe.seconds();
  }

  // --- Proteus plugin: parse annotations and extract bitcode ---------------
  if (Options.EnableProteusExtensions) {
    Timer Ext;
    for (Function *K : Source.kernels()) {
      const auto &Ann = K->getJitAnnotation();
      if (!Ann)
        continue;
      std::unique_ptr<Module> KernelMod =
          extractKernelModule(Source, K->getName());
      std::vector<uint8_t> Bitcode = writeBitcode(*KernelMod);
      if (Options.Arch == GpuArch::AmdGcnSim) {
        // Designated image section ".jit.<symbol>": host-readable directly.
        Out.Image.JitSections[K->getName()] = std::move(Bitcode);
      } else {
        // NVIDIA's binary tools drop non-standard sections; store the byte
        // array as a data-segment device global __jit_bc_<symbol> instead.
        Out.Image.JitDataGlobals[K->getName()] = std::move(Bitcode);
      }
      Out.JitKernels.insert(K->getName());
      Out.JitArgIndices[K->getName()] = Ann->ArgIndices;
    }
    Out.Stats.ExtensionSeconds = Ext.seconds();
  }

  // --- Device path: O3 + backend per kernel -------------------------------
  auto Optimized = cloneModule(Source, Source.getContext(),
                               Source.getName() + ".aot");
  Timer Opt;
  runO3(*Optimized, Options.O3);
  Out.Stats.OptimizeSeconds = Opt.seconds();

  Timer Backend;
  for (Function *K : Optimized->kernels()) {
    BackendStats BS;
    Out.Image.KernelObjects[K->getName()] =
        compileKernelToObject(*K, Target, &BS);
  }
  Out.Stats.BackendSeconds = Backend.seconds();

  // --- Globals carried by the image ----------------------------------------
  for (const auto &G : Source.globals())
    Out.Image.Globals.push_back(
        ImageGlobal{G->getName(), G->sizeInBytes(), G->getInit()});

  // --- Static link of the JIT runtime library ------------------------------
  // On the CUDA path the paper attributes most of the AOT slowdown to
  // statically linking the Proteus runtime and NVIDIA's proprietary
  // libraries. Model that as real symbol-resolution work over a synthetic
  // archive sized like those libraries.
  if (Options.EnableProteusExtensions &&
      Options.Arch == GpuArch::NvPtxSim) {
    Timer Link;
    static const std::vector<uint64_t> &Archive = *[] {
      auto *A = new std::vector<uint64_t>(192 * 1024 / 8);
      uint64_t X = 0x9E3779B97F4A7C15ull;
      for (uint64_t &V : *A) {
        X ^= X << 13;
        X ^= X >> 7;
        X ^= X << 17;
        V = X;
      }
      return A;
    }();
    // "Resolve" a symbol table: scan the archive accumulating a digest, as
    // a linker walks relocation tables — once for the runtime library and
    // once per JIT kernel's embedded payload.
    size_t Rounds = 1 + Out.JitKernels.size();
    for (size_t Round = 0; Round != Rounds; ++Round) {
      FNV1aHash H;
      H.update(static_cast<uint64_t>(Round));
      for (uint64_t V : Archive)
        H.update(V);
      volatile uint64_t Sink = H.digest();
      (void)Sink;
    }
    Out.Stats.LinkSeconds = Link.seconds();
  }

  (void)Total;
  return Out;
}
