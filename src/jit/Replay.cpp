//===- Replay.cpp - standalone capture-artifact replay --------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//

#include "jit/Replay.h"

#include "gpu/Runtime.h"
#include "support/Hashing.h"

#include <cstring>

using namespace proteus;
using namespace proteus::gpu;

namespace {

/// Recomputes the specialization hash from the artifact's recorded inputs
/// — with \p Block as the launched block shape, which a geometry override
/// may have changed — through the same computeSpecializationHash the live
/// runtime used.
uint64_t replayedSpecHash(const capture::CaptureArtifact &A, Dim3 Block,
                          GpuArch Arch) {
  SpecializationKey Key;
  Key.ModuleId = A.ModuleId;
  Key.KernelSymbol = A.KernelSymbol;
  Key.Arch = Arch;
  if (A.EnableRCF) {
    for (uint32_t OneBased : A.AnnotatedArgs) {
      if (OneBased == 0 || OneBased > A.ArgBits.size())
        continue; // the capturing runtime validated these already
      Key.FoldedArgs.push_back(
          RuntimeArgValue{OneBased - 1, A.ArgBits[OneBased - 1]});
    }
  }
  if (A.EnableLaunchBounds)
    Key.LaunchBoundsThreads = static_cast<uint32_t>(Block.count());
  return computeSpecializationHash(Key);
}

} // namespace

ReplayResult proteus::replayArtifact(const capture::CaptureArtifact &A,
                                     const ReplayOptions &Opts) {
  ReplayResult R;
  R.RecordedHash = A.SpecializationHash;

  if (A.KernelSymbol.empty() || A.Bitcode.empty()) {
    R.Error = "artifact carries no kernel bitcode";
    return R;
  }
  if (A.DeviceMemoryBytes == 0) {
    R.Error = "artifact records a zero-sized device";
    return R;
  }

  // Rebuild the captured device: same memory size, every captured
  // allocation claimed at its original address with its pre-launch image
  // restored, every global pinned to its original symbol binding. The arch
  // is the recorded one unless overridden — the retarget-exercising mode,
  // where the recorded bitcode recompiles through the other backend and
  // must still reproduce the captured bytes.
  const GpuArch Arch = Opts.ArchOverride.value_or(A.Arch);
  Device Dev(getTarget(Arch), A.DeviceMemoryBytes);
  for (const capture::MemoryRegion &Region : A.Regions) {
    if (Region.PostBytes.size() != Region.PreBytes.size()) {
      R.Error = "artifact region at address " +
                std::to_string(Region.Address) +
                " has mismatched pre/post image sizes";
      return R;
    }
    if (!Dev.claimRange(Region.Address, Region.PreBytes.size())) {
      R.Error = "cannot rebuild captured allocation at address " +
                std::to_string(Region.Address);
      return R;
    }
    std::memcpy(Dev.memory().data() + Region.Address, Region.PreBytes.data(),
                Region.PreBytes.size());
  }
  for (const capture::GlobalBinding &G : A.Globals)
    Dev.defineSymbol(G.Symbol, G.Address);

  // The artifact's specialization knobs are inputs of the recorded hash, so
  // they override whatever the caller's environment says; the pipeline
  // knobs (tier, analyze, O3, verify-each) stay caller-controlled. Replay
  // is synchronous and never re-captures itself.
  JitConfig JC = Opts.Jit;
  JC.EnableRCF = A.EnableRCF;
  JC.EnableLaunchBounds = A.EnableLaunchBounds;
  JC.Async = JitConfig::AsyncMode::Sync;
  JC.Capture = false;
  JC.UseMemoryCache = true;
  JC.UsePersistentCache = !Opts.CacheDir.empty();
  if (!Opts.CacheDir.empty())
    JC.CacheDir = Opts.CacheDir;

  JitRuntime Jit(Dev, A.ModuleId, JC);
  JitKernelInfo Info;
  Info.Symbol = A.KernelSymbol;
  Info.AnnotatedArgs = A.AnnotatedArgs;
  Info.HostBitcode = A.Bitcode;
  Jit.registerKernel(std::move(Info));
  for (const capture::GlobalBinding &G : A.Globals)
    Jit.registerVar(G.Symbol, G.Address);

  std::vector<KernelArg> Args;
  Args.reserve(A.ArgBits.size());
  for (uint64_t Bits : A.ArgBits)
    Args.push_back(KernelArg{Bits});

  const Dim3 Grid = Opts.OverrideGeometry ? Opts.Grid : A.Grid;
  const Dim3 Block = Opts.OverrideGeometry ? Opts.Block : A.Block;
  std::string LaunchError;
  GpuError E = Jit.launchKernel(A.KernelSymbol, Grid, Block, Args,
                                &LaunchError);
  if (E != GpuError::Success) {
    R.Error = "replay launch failed: " +
              (LaunchError.empty() ? std::string("unknown error")
                                   : LaunchError);
    return R;
  }
  Jit.drain(); // tier promotions etc. must settle before reading stats
  R.Ok = true;

  R.ReplayedHash = replayedSpecHash(A, Block, Arch);
  R.HashMatch = R.ReplayedHash == R.RecordedHash;
  R.Launch = Dev.LastLaunch;
  R.KernelSeconds = Dev.kernelSeconds();
  R.SimulatedSeconds = Dev.simulatedSeconds();

  // Byte-exact differential check of every captured region.
  const std::vector<uint8_t> &Mem = Dev.memory();
  R.OutputMatch = true;
  for (const capture::MemoryRegion &Region : A.Regions) {
    if (std::memcmp(Mem.data() + Region.Address, Region.PostBytes.data(),
                    Region.PostBytes.size()) == 0)
      continue;
    R.OutputMatch = false;
    ++R.MismatchedRegions;
    if (R.FirstMismatch.empty()) {
      for (size_t I = 0; I != Region.PostBytes.size(); ++I) {
        uint8_t Got = Mem[Region.Address + I];
        if (Got != Region.PostBytes[I]) {
          R.FirstMismatch =
              "region @" + std::to_string(Region.Address) + " byte " +
              std::to_string(I) + ": captured 0x" +
              hashToHex(Region.PostBytes[I]).substr(14) + ", replayed 0x" +
              hashToHex(Got).substr(14);
          break;
        }
      }
    }
  }

  JitRuntimeStats Stats = Jit.stats();
  R.CompilationsUsed = Stats.Compilations + Stats.Tier0Compiles;
  return R;
}
