//===- CompilationPolicy.cpp - bottleneck-aware JIT policy ---------------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//

#include "jit/CompilationPolicy.h"

using namespace proteus;
using pir::analysis::BottleneckClass;

const char *proteus::variantAxisName(VariantAxis A) {
  switch (A) {
  case VariantAxis::BlockSize:
    return "block-size";
  case VariantAxis::PipelinePreset:
    return "pipeline-preset";
  case VariantAxis::Licm:
    return "licm";
  case VariantAxis::Unroll:
    return "unroll";
  }
  return "unknown";
}

void CompilationPolicy::recordVerdict(const std::string &Symbol, GpuArch Arch,
                                      const PolicyVerdict &V) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Verdicts[{Symbol, Arch}] = V;
}

std::optional<PolicyVerdict>
CompilationPolicy::verdictFor(const std::string &Symbol, GpuArch Arch) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Verdicts.find({Symbol, Arch});
  if (It == Verdicts.end())
    return std::nullopt;
  return It->second;
}

bool CompilationPolicy::axisWorthRacing(BottleneckClass C, VariantAxis A) {
  switch (C) {
  case BottleneckClass::MemoryBound:
    // The bandwidth ceiling binds: no compile-side axis reduces bytes
    // moved, and block reshapes do not change waves-in-flight for a fixed
    // launch in the occupancy model. Keep the recorded default only.
    return false;
  case BottleneckClass::ComputeBound:
    // Pipeline aggressiveness is the lever; reshaping blocks is not.
    return A != VariantAxis::BlockSize;
  case BottleneckClass::RegPressureBound:
    // The launch-bounds budget sweep (block sizes) is the whole point;
    // unrolling only adds pressure.
    return A != VariantAxis::Unroll;
  case BottleneckClass::LatencyBound:
    // No ceiling clearly binds — nothing justifies pruning.
    return true;
  }
  return true;
}

void CompilationPolicy::setCriticalKernels(std::vector<std::string> Names) {
  std::lock_guard<std::mutex> Lock(Mutex);
  HaveCriticalSet = true;
  CriticalKernels.clear();
  CriticalKernels.insert(Names.begin(), Names.end());
}

bool CompilationPolicy::shouldPromote(const std::string &Symbol) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (!HaveCriticalSet)
    return true;
  return CriticalKernels.count(Symbol) != 0;
}
