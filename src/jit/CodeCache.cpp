//===- CodeCache.cpp - two-level specialization cache -----------------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//

#include "jit/CodeCache.h"

#include "support/FileSystem.h"
#include "support/Hashing.h"
#include "support/Metrics.h"
#include "support/StringUtils.h"
#include "support/Trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

using namespace proteus;

namespace {

/// The warn-don't-coerce reporting shared with JitConfig::fromEnvironment:
/// rejected values keep the default, are counted process-wide, and surface
/// as a warning instead of being silently remapped.
void emitCacheConfigWarning(std::vector<std::string> *Warnings,
                            std::string Msg) {
  metrics::processRegistry().counter("config.errors").add();
  if (Warnings)
    Warnings->push_back(std::move(Msg));
  else
    std::fprintf(stderr, "proteus: warning: %s\n", Msg.c_str());
}

bool parseByteLimit(const char *Raw, uint64_t &Out) {
  std::string S = Raw;
  if (S.empty() || S.find_first_not_of("0123456789") != std::string::npos)
    return false;
  Out = std::strtoull(S.c_str(), nullptr, 10);
  return true;
}

} // namespace

uint64_t proteus::computeSpecializationHash(const SpecializationKey &Key) {
  FNV1aHash H;
  H.update(Key.ModuleId);
  H.update(Key.KernelSymbol);
  H.update(static_cast<uint8_t>(Key.Arch));
  H.update(static_cast<uint64_t>(Key.FoldedArgs.size()));
  for (const RuntimeArgValue &V : Key.FoldedArgs) {
    H.update(V.ArgIndex);
    H.update(V.Bits);
  }
  H.update(Key.LaunchBoundsThreads);
  return H.digest();
}

uint64_t proteus::computeTuningKeyHash(uint64_t ModuleId,
                                       const std::string &KernelSymbol,
                                       GpuArch Arch, uint64_t TotalThreads,
                                       const std::vector<uint64_t> &ArgBits) {
  FNV1aHash H;
  H.update(ModuleId);
  H.update(KernelSymbol);
  H.update(static_cast<uint8_t>(Arch));
  H.update(TotalThreads);
  H.update(static_cast<uint64_t>(ArgBits.size()));
  for (uint64_t Bits : ArgBits)
    H.update(Bits);
  return H.digest();
}

CacheLimits CacheLimits::fromEnvironment(std::vector<std::string> *Warnings) {
  CacheLimits L;
  if (const char *Mem = std::getenv("PROTEUS_CACHE_MEM_LIMIT")) {
    uint64_t V;
    if (parseByteLimit(Mem, V))
      L.MaxMemoryBytes = V;
    else
      emitCacheConfigWarning(
          Warnings, "ignoring invalid PROTEUS_CACHE_MEM_LIMIT value '" +
                        std::string(Mem) + "' (expected a byte count)");
  }
  if (const char *Disk = std::getenv("PROTEUS_CACHE_DISK_LIMIT")) {
    uint64_t V;
    if (parseByteLimit(Disk, V))
      L.MaxPersistentBytes = V;
    else
      emitCacheConfigWarning(
          Warnings, "ignoring invalid PROTEUS_CACHE_DISK_LIMIT value '" +
                        std::string(Disk) + "' (expected a byte count)");
  }
  if (const char *Budget = std::getenv("PROTEUS_CACHE_BUDGET")) {
    uint64_t V;
    if (parseByteLimit(Budget, V))
      L.BudgetBytes = V;
    else
      emitCacheConfigWarning(
          Warnings, "ignoring invalid PROTEUS_CACHE_BUDGET value '" +
                        std::string(Budget) + "' (expected a byte count)");
  }
  if (const char *Shards = std::getenv("PROTEUS_CACHE_SHARDS")) {
    uint64_t V;
    if (parseByteLimit(Shards, V) && V >= 1 && V <= 64)
      L.Shards = static_cast<uint32_t>(V);
    else
      emitCacheConfigWarning(
          Warnings, "ignoring invalid PROTEUS_CACHE_SHARDS value '" +
                        std::string(Shards) + "' (expected 1..64)");
  }
  if (const char *Policy = std::getenv("PROTEUS_CACHE_POLICY")) {
    // Accept every documented spelling: "runtime" is the README's name for
    // the runtime-informed (execution-frequency) policy, i.e. LFU. Anything
    // else used to be silently coerced to LRU — including "runtime" itself,
    // which quietly selected the opposite of what the docs promised.
    std::string S = Policy;
    if (S == "lru")
      L.Policy = EvictionPolicy::LRU;
    else if (S == "lfu" || S == "runtime")
      L.Policy = EvictionPolicy::LFU;
    else
      emitCacheConfigWarning(Warnings,
                             "ignoring invalid PROTEUS_CACHE_POLICY value '" +
                                 S + "' (expected lru|lfu|runtime)");
  }
  return L;
}

// --- Persistent entry framing ------------------------------------------------
//
// cache-jit-<hash>.o files carry a fixed 48-byte header ahead of the object
// payload so that lookup() can reject truncated or corrupted files (a crash
// mid-write, bit rot, manual tampering) instead of loading garbage:
//
//   [0..8)   magic "PJITCC2\0"
//   [8..16)  payload size (LE u64)
//   [16..24) integrity FNV-1a hash (LE u64) over payload bytes, then the
//            tier tag, then the pipeline fingerprint — so a flipped tier
//            byte is as detectable as a flipped payload byte
//   [24..32) execution (hit) count — outside the integrity hash so the LFU
//            policy's counts can be written back without re-hashing
//   [32..40) pipeline fingerprint (LE u64)
//   [40..48) tier tag (LE u64; 0 = Tier-0 baseline, 1 = final)
//   [48..)   object payload
//
// "PJITCC1\0" files from older builds fail the magic check and are deleted
// like any other corrupt entry — a clean forced recompile on upgrade.

namespace {

constexpr char EntryMagic[8] = {'P', 'J', 'I', 'T', 'C', 'C', '2', '\0'};
constexpr size_t EntryHeaderBytes = 48;

void putU64(std::vector<uint8_t> &Buf, size_t Offset, uint64_t V) {
  std::memcpy(Buf.data() + Offset, &V, sizeof(V));
}

uint64_t getU64(const std::vector<uint8_t> &Buf, size_t Offset) {
  uint64_t V;
  std::memcpy(&V, Buf.data() + Offset, sizeof(V));
  return V;
}

uint64_t integrityHash(const std::vector<uint8_t> &Payload, CodeTier Tier,
                       uint64_t Fingerprint) {
  FNV1aHash H;
  H.updateBytes(Payload.data(), Payload.size());
  H.update(static_cast<uint8_t>(Tier));
  H.update(Fingerprint);
  return H.digest();
}

std::vector<uint8_t> encodeEntry(const std::vector<uint8_t> &Payload,
                                 uint64_t HitCount, CodeTier Tier,
                                 uint64_t Fingerprint) {
  std::vector<uint8_t> Buf(EntryHeaderBytes + Payload.size());
  std::memcpy(Buf.data(), EntryMagic, sizeof(EntryMagic));
  putU64(Buf, 8, Payload.size());
  putU64(Buf, 16, integrityHash(Payload, Tier, Fingerprint));
  putU64(Buf, 24, HitCount);
  putU64(Buf, 32, Fingerprint);
  putU64(Buf, 40, static_cast<uint64_t>(Tier));
  std::memcpy(Buf.data() + EntryHeaderBytes, Payload.data(), Payload.size());
  return Buf;
}

struct DecodedEntry {
  std::vector<uint8_t> Payload;
  uint64_t HitCount = 0;
  CodeTier Tier = CodeTier::Final;
  uint64_t Fingerprint = 0;
};

// --- Tuning-decision framing -------------------------------------------------
//
// cache-tune-<hex> files persist one TuningDecision in a fixed 80-byte
// frame: magic "PJITTD1\0", an FNV-1a integrity hash over the 64-byte
// payload, then the payload itself. Corrupt or truncated files are deleted
// and treated as "never tuned", forcing a clean re-race.

constexpr char TuneMagic[8] = {'P', 'J', 'I', 'T', 'T', 'D', '1', '\0'};
constexpr size_t TunePayloadBytes = 64;
constexpr size_t TuneFileBytes = 16 + TunePayloadBytes;

void putU32(std::vector<uint8_t> &Buf, size_t Offset, uint32_t V) {
  std::memcpy(Buf.data() + Offset, &V, sizeof(V));
}

uint32_t getU32(const std::vector<uint8_t> &Buf, size_t Offset) {
  uint32_t V;
  std::memcpy(&V, Buf.data() + Offset, sizeof(V));
  return V;
}

std::vector<uint8_t> encodeTuningPayload(const TuningDecision &D) {
  std::vector<uint8_t> P(TunePayloadBytes, 0);
  putU32(P, 0, D.GridX);
  putU32(P, 4, D.GridY);
  putU32(P, 8, D.GridZ);
  putU32(P, 12, D.BlockX);
  putU32(P, 16, D.BlockY);
  putU32(P, 20, D.BlockZ);
  P[24] = D.Preset;
  P[25] = D.EnableLICM;
  P[26] = D.Bottleneck;
  putU64(P, 32, D.UnrollMaxTripCount);
  putU64(P, 40, D.UnrollMaxExpandedInstructions);
  uint64_t SecondsBits;
  std::memcpy(&SecondsBits, &D.ExpectedSeconds, sizeof(SecondsBits));
  putU64(P, 48, SecondsBits);
  putU32(P, 56, D.TrialsRun);
  return P;
}

TuningDecision decodeTuningPayload(const std::vector<uint8_t> &P) {
  TuningDecision D;
  D.GridX = getU32(P, 0);
  D.GridY = getU32(P, 4);
  D.GridZ = getU32(P, 8);
  D.BlockX = getU32(P, 12);
  D.BlockY = getU32(P, 16);
  D.BlockZ = getU32(P, 20);
  D.Preset = P[24];
  D.EnableLICM = P[25];
  D.Bottleneck = P[26];
  D.UnrollMaxTripCount = getU64(P, 32);
  D.UnrollMaxExpandedInstructions = getU64(P, 40);
  uint64_t SecondsBits = getU64(P, 48);
  std::memcpy(&D.ExpectedSeconds, &SecondsBits, sizeof(D.ExpectedSeconds));
  D.TrialsRun = getU32(P, 56);
  return D;
}

std::vector<uint8_t> encodeTuningFile(const TuningDecision &D) {
  std::vector<uint8_t> Payload = encodeTuningPayload(D);
  std::vector<uint8_t> Buf(TuneFileBytes);
  std::memcpy(Buf.data(), TuneMagic, sizeof(TuneMagic));
  FNV1aHash H;
  H.updateBytes(Payload.data(), Payload.size());
  putU64(Buf, 8, H.digest());
  std::memcpy(Buf.data() + 16, Payload.data(), Payload.size());
  return Buf;
}

std::optional<TuningDecision>
decodeTuningFile(const std::vector<uint8_t> &Bytes) {
  if (Bytes.size() != TuneFileBytes)
    return std::nullopt;
  if (std::memcmp(Bytes.data(), TuneMagic, sizeof(TuneMagic)) != 0)
    return std::nullopt;
  std::vector<uint8_t> Payload(Bytes.begin() + 16, Bytes.end());
  FNV1aHash H;
  H.updateBytes(Payload.data(), Payload.size());
  if (getU64(Bytes, 8) != H.digest())
    return std::nullopt;
  return decodeTuningPayload(Payload);
}

std::optional<DecodedEntry> decodeEntry(const std::vector<uint8_t> &Bytes) {
  if (Bytes.size() < EntryHeaderBytes)
    return std::nullopt;
  if (std::memcmp(Bytes.data(), EntryMagic, sizeof(EntryMagic)) != 0)
    return std::nullopt;
  uint64_t Size = getU64(Bytes, 8);
  if (Size != Bytes.size() - EntryHeaderBytes)
    return std::nullopt;
  uint64_t TierWord = getU64(Bytes, 40);
  if (TierWord > static_cast<uint64_t>(CodeTier::Final))
    return std::nullopt;
  DecodedEntry D;
  D.Payload.assign(Bytes.begin() + EntryHeaderBytes, Bytes.end());
  D.Tier = static_cast<CodeTier>(TierWord);
  D.Fingerprint = getU64(Bytes, 32);
  if (getU64(Bytes, 16) != integrityHash(D.Payload, D.Tier, D.Fingerprint))
    return std::nullopt;
  D.HitCount = getU64(Bytes, 24);
  return D;
}

} // namespace

fleet::LocalBackendOptions CodeCache::backendOptions(const CacheLimits &Limits) {
  fleet::LocalBackendOptions BO;
  BO.Shards = Limits.Shards;
  // BudgetBytes is the fleet-level budget (code + tune files); when unset,
  // the historical code-object limit acts as the budget.
  BO.BudgetBytes =
      Limits.BudgetBytes ? Limits.BudgetBytes : Limits.MaxPersistentBytes;
  BO.Policy = Limits.Policy == EvictionPolicy::LFU ? fleet::EvictPolicy::LFU
                                                   : fleet::EvictPolicy::LRU;
  // LFU victim selection needs each entry's execution count; only CodeCache
  // knows the frame layout, so it hands the backend a decoder instead of
  // the backend parsing frames itself.
  BO.FreqOf = [](fleet::BlobKind Kind,
                 const std::vector<uint8_t> &Bytes) -> uint64_t {
    if (Kind != fleet::BlobKind::Code || Bytes.size() < EntryHeaderBytes)
      return 0;
    if (std::memcmp(Bytes.data(), EntryMagic, sizeof(EntryMagic)) != 0)
      return 0;
    return getU64(Bytes, 24);
  };
  return BO;
}

CodeCache::CodeCache(bool UseMemory, bool UsePersistent,
                     std::string PersistentDir, CacheLimits Limits)
    : CodeCache(UseMemory, UsePersistent, PersistentDir, Limits, nullptr) {}

CodeCache::CodeCache(bool UseMemory, bool UsePersistent,
                     std::string PersistentDir, CacheLimits Limits,
                     std::unique_ptr<fleet::CacheBackend> Backend)
    : UseMemory(UseMemory),
      UsePersistent(UsePersistent && !PersistentDir.empty()),
      Dir(std::move(PersistentDir)), Limits(Limits),
      Backend(!this->UsePersistent ? nullptr
              : Backend            ? std::move(Backend)
                                   : std::make_unique<fleet::LocalDirBackend>(
                                         Dir, backendOptions(Limits))) {}

CodeCache::~CodeCache() = default;

std::optional<TuningDecision> CodeCache::lookupTuningDecision(uint64_t Key) {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (UseMemory) {
    auto It = Tuning.find(Key);
    if (It != Tuning.end())
      return It->second;
  }
  if (UsePersistent) {
    if (auto B = Backend->lookup(fleet::BlobKind::Tune, Key)) {
      if (auto D = decodeTuningFile(B->Bytes)) {
        if (UseMemory)
          Tuning.emplace(Key, *D);
        return D;
      }
      // Corrupt decision: delete and re-tune, mirroring corrupt code
      // entries.
      ++Stats.CorruptPersistentEntries;
      trace::instant("cache.corrupt", "cache");
      Backend->remove(fleet::BlobKind::Tune, Key);
    }
  }
  return std::nullopt;
}

void CodeCache::storeTuningDecision(uint64_t Key, const TuningDecision &D) {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (UseMemory)
    Tuning[Key] = D;
  if (UsePersistent)
    Backend->publish(fleet::BlobKind::Tune, Key, encodeTuningFile(D));
}

void CodeCache::touchEntry(uint64_t Hash, Entry &E) {
  ++E.HitCount;
  LruOrder.erase(E.LruIt);
  LruOrder.push_front(Hash);
  E.LruIt = LruOrder.begin();
}

void CodeCache::insertMemoryEntry(uint64_t Hash, std::vector<uint8_t> Object,
                                  uint64_t HitCount, CodeTier Tier,
                                  uint64_t Fingerprint) {
  Entry E;
  E.Object = std::move(Object);
  E.HitCount = HitCount;
  E.Tier = Tier;
  E.Fingerprint = Fingerprint;
  LruOrder.push_front(Hash);
  E.LruIt = LruOrder.begin();
  MemoryBytesTotal += E.Object.size();
  Memory.emplace(Hash, std::move(E));
  enforceMemoryLimit();
}

std::optional<std::vector<uint8_t>> CodeCache::lookup(uint64_t Hash) {
  auto Entry = lookupEntry(Hash);
  if (!Entry)
    return std::nullopt;
  return std::move(Entry->Object);
}

std::optional<CachedCode> CodeCache::lookupEntry(uint64_t Hash) {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (UseMemory) {
    auto It = Memory.find(Hash);
    if (It != Memory.end()) {
      ++Stats.MemoryHits;
      trace::instant("cache.hit.memory", "cache");
      touchEntry(Hash, It->second);
      return CachedCode{It->second.Object, It->second.Tier,
                        It->second.Fingerprint};
    }
  }
  if (UsePersistent) {
    if (auto B = Backend->lookup(fleet::BlobKind::Code, Hash)) {
      auto Decoded = decodeEntry(B->Bytes);
      if (!Decoded) {
        // Truncated/corrupted entry (e.g. a crash mid-write): delete it and
        // report a miss so the JIT recompiles instead of loading garbage.
        ++Stats.CorruptPersistentEntries;
        trace::instant("cache.corrupt", "cache");
        Backend->remove(fleet::BlobKind::Code, Hash);
      } else {
        // Tier attribution: a daemon round-trip costs very differently from
        // a local disk read, so the fleet service's hits get their own
        // counter.
        if (B->Remote) {
          ++Stats.RemoteHits;
          trace::instant("cache.hit.remote", "cache");
        } else {
          ++Stats.PersistentHits;
          trace::instant("cache.hit.persistent", "cache");
        }
        if (UseMemory) {
          // Preserve the execution count across the promotion so the LFU
          // policy is not biased against entries that round-tripped through
          // the persistent level; this access counts too.
          trace::instant("cache.promote", "cache");
          insertMemoryEntry(Hash, Decoded->Payload, Decoded->HitCount + 1,
                            Decoded->Tier, Decoded->Fingerprint);
        }
        return CachedCode{std::move(Decoded->Payload), Decoded->Tier,
                          Decoded->Fingerprint};
      }
    }
  }
  ++Stats.Misses;
  trace::instant("cache.miss", "cache");
  return std::nullopt;
}

void CodeCache::insert(uint64_t Hash, const std::vector<uint8_t> &Object,
                       CodeTier Tier, uint64_t PipelineFingerprint) {
  std::lock_guard<std::mutex> Lock(Mutex);
  ++Stats.Insertions;
  trace::instant("cache.insert", "cache");
  uint64_t HitCount = 0;
  if (UseMemory) {
    auto It = Memory.find(Hash);
    if (It == Memory.end()) {
      insertMemoryEntry(Hash, Object, 0, Tier, PipelineFingerprint);
    } else if (It->second.Tier == CodeTier::Final && Tier == CodeTier::Tier0) {
      // Never downgrade: a straggling Tier-0 result must not replace the
      // promoted artifact a racing Tier-1 compile already installed.
      return;
    } else {
      // In-place update (Tier-1 promotion path): keep the execution count
      // and recency position; only the object and tier provenance change.
      MemoryBytesTotal += Object.size();
      MemoryBytesTotal -= It->second.Object.size();
      It->second.Object = Object;
      It->second.Tier = Tier;
      It->second.Fingerprint = PipelineFingerprint;
      HitCount = It->second.HitCount;
      enforceMemoryLimit();
    }
  }
  if (UsePersistent) {
    if (Tier == CodeTier::Tier0) {
      // Same downgrade guard for the on-disk level (the memory level may be
      // disabled, so check the published entry's own tier tag).
      if (auto B = Backend->lookup(fleet::BlobKind::Code, Hash))
        if (auto Decoded = decodeEntry(B->Bytes))
          if (Decoded->Tier == CodeTier::Final)
            return;
    }
    Backend->publish(fleet::BlobKind::Code, Hash,
                     encodeEntry(Object, HitCount, Tier, PipelineFingerprint));
  }
}

void CodeCache::writeBackHitCount(uint64_t Hash, uint64_t Count) {
  if (!UsePersistent || Count == 0)
    return;
  auto B = Backend->lookup(fleet::BlobKind::Code, Hash);
  if (!B)
    return;
  auto Decoded = decodeEntry(B->Bytes);
  if (!Decoded || Decoded->HitCount == Count)
    return;
  Backend->publish(fleet::BlobKind::Code, Hash,
                   encodeEntry(Decoded->Payload, Count, Decoded->Tier,
                               Decoded->Fingerprint));
}

void CodeCache::enforceMemoryLimit() {
  if (!Limits.MaxMemoryBytes)
    return;
  while (MemoryBytesTotal > Limits.MaxMemoryBytes && Memory.size() > 1) {
    uint64_t Victim;
    if (Limits.Policy == EvictionPolicy::LFU) {
      // Runtime-informed: evict the least-executed specialization,
      // breaking ties toward the least recently used (list back).
      Victim = LruOrder.back();
      uint64_t BestCount = Memory.at(Victim).HitCount;
      for (auto It = LruOrder.rbegin(); It != LruOrder.rend(); ++It) {
        uint64_t C = Memory.at(*It).HitCount;
        if (C < BestCount) {
          BestCount = C;
          Victim = *It;
        }
      }
    } else {
      Victim = LruOrder.back();
    }
    auto It = Memory.find(Victim);
    writeBackHitCount(Victim, It->second.HitCount);
    MemoryBytesTotal -= It->second.Object.size();
    LruOrder.erase(It->second.LruIt);
    Memory.erase(It);
    ++Stats.MemoryEvictions;
    trace::instant("cache.evict.memory", "cache");
  }
}

CodeCacheStats CodeCache::stats() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  CodeCacheStats S = Stats;
  // Budget eviction happens inside the backend (it owns the storage);
  // merge its count into the historical counter.
  if (Backend)
    S.PersistentEvictions += Backend->stats().Evictions;
  return S;
}

uint64_t CodeCache::memoryBytes() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return MemoryBytesTotal;
}

size_t CodeCache::memoryEntries() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Memory.size();
}

uint64_t CodeCache::persistentBytes() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return UsePersistent ? Backend->totalBytes() : 0;
}

void CodeCache::clearMemory() {
  std::lock_guard<std::mutex> Lock(Mutex);
  // Write execution counts back so a "fresh process" still sees
  // runtime-informed frequencies at the persistent level.
  for (const auto &[Hash, E] : Memory)
    writeBackHitCount(Hash, E.HitCount);
  Memory.clear();
  LruOrder.clear();
  MemoryBytesTotal = 0;
  Tuning.clear();
}

void CodeCache::clearPersistent() {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (!UsePersistent)
    return;
  Backend->clear();
}

fleet::CompileClaim CodeCache::beginCompile(uint64_t Hash) {
  if (!Backend)
    return fleet::CompileClaim::Owner;
  return Backend->beginCompile(Hash);
}

void CodeCache::endCompile(uint64_t Hash) {
  if (Backend)
    Backend->endCompile(Hash);
}

std::optional<CachedCode> CodeCache::waitRemoteCompile(uint64_t Hash,
                                                       unsigned TimeoutMs) {
  if (!Backend)
    return std::nullopt; // no fleet level: the caller owns the compile
  using Clock = std::chrono::steady_clock;
  const auto Deadline = Clock::now() + std::chrono::milliseconds(TimeoutMs);
  auto Backoff = std::chrono::microseconds(200);
  // Poll the backend directly (not lookupEntry) so the wait loop's
  // intermediate misses don't inflate this cache's miss statistics.
  auto TryAdopt = [&]() -> std::optional<CachedCode> {
    auto B = Backend->lookup(fleet::BlobKind::Code, Hash);
    if (!B)
      return std::nullopt;
    if (auto Decoded = decodeEntry(B->Bytes)) {
      std::lock_guard<std::mutex> Lock(Mutex);
      if (B->Remote) {
        ++Stats.RemoteHits;
        trace::instant("cache.hit.remote", "cache");
      } else {
        ++Stats.PersistentHits;
        trace::instant("cache.hit.persistent", "cache");
      }
      if (UseMemory && !Memory.count(Hash))
        insertMemoryEntry(Hash, Decoded->Payload, Decoded->HitCount + 1,
                          Decoded->Tier, Decoded->Fingerprint);
      return CachedCode{std::move(Decoded->Payload), Decoded->Tier,
                        Decoded->Fingerprint};
    }
    // A corrupt publish: delete it; the re-acquired claim below makes
    // this caller the recovering compiler.
    std::lock_guard<std::mutex> Lock(Mutex);
    ++Stats.CorruptPersistentEntries;
    Backend->remove(fleet::BlobKind::Code, Hash);
    return std::nullopt;
  };
  for (;;) {
    if (std::optional<CachedCode> CC = TryAdopt())
      return CC;
    // Between polls, retry the claim: if the previous owner died (crashed
    // client, stale lock), this caller inherits the compile.
    if (Backend->beginCompile(Hash) == fleet::CompileClaim::Owner) {
      // Double-checked claim: the owner may have published and released
      // between this caller's poll above and the claim retry. Without
      // this re-lookup the waiter would win the freed claim and recompile
      // an entry that is already in the store.
      if (std::optional<CachedCode> CC = TryAdopt()) {
        Backend->endCompile(Hash);
        return CC;
      }
      return std::nullopt;
    }
    if (Clock::now() >= Deadline)
      return std::nullopt;
    std::this_thread::sleep_for(Backoff);
    Backoff = std::min(Backoff * 2, decltype(Backoff)(10000));
  }
}
