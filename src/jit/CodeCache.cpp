//===- CodeCache.cpp - two-level specialization cache -----------------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//

#include "jit/CodeCache.h"

#include "support/FileSystem.h"
#include "support/Hashing.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cstdlib>

using namespace proteus;

uint64_t proteus::computeSpecializationHash(const SpecializationKey &Key) {
  FNV1aHash H;
  H.update(Key.ModuleId);
  H.update(Key.KernelSymbol);
  H.update(static_cast<uint8_t>(Key.Arch));
  H.update(static_cast<uint64_t>(Key.FoldedArgs.size()));
  for (const RuntimeArgValue &V : Key.FoldedArgs) {
    H.update(V.ArgIndex);
    H.update(V.Bits);
  }
  H.update(Key.LaunchBoundsThreads);
  return H.digest();
}

CacheLimits CacheLimits::fromEnvironment() {
  CacheLimits L;
  if (const char *Mem = std::getenv("PROTEUS_CACHE_MEM_LIMIT"))
    L.MaxMemoryBytes = std::strtoull(Mem, nullptr, 10);
  if (const char *Disk = std::getenv("PROTEUS_CACHE_DISK_LIMIT"))
    L.MaxPersistentBytes = std::strtoull(Disk, nullptr, 10);
  if (const char *Policy = std::getenv("PROTEUS_CACHE_POLICY"))
    L.Policy = std::string(Policy) == "lfu" ? EvictionPolicy::LFU
                                            : EvictionPolicy::LRU;
  return L;
}

CodeCache::CodeCache(bool UseMemory, bool UsePersistent,
                     std::string PersistentDir, CacheLimits Limits)
    : UseMemory(UseMemory),
      UsePersistent(UsePersistent && !PersistentDir.empty()),
      Dir(std::move(PersistentDir)), Limits(Limits) {
  if (this->UsePersistent)
    fs::createDirectories(Dir);
}

std::string CodeCache::pathFor(uint64_t Hash) const {
  return Dir + "/cache-jit-" + hashToHex(Hash) + ".o";
}

void CodeCache::touchEntry(uint64_t Hash, Entry &E) {
  ++E.HitCount;
  LruOrder.erase(E.LruIt);
  LruOrder.push_front(Hash);
  E.LruIt = LruOrder.begin();
}

std::optional<std::vector<uint8_t>> CodeCache::lookup(uint64_t Hash) {
  if (UseMemory) {
    auto It = Memory.find(Hash);
    if (It != Memory.end()) {
      ++Stats.MemoryHits;
      touchEntry(Hash, It->second);
      return It->second.Object;
    }
  }
  if (UsePersistent) {
    std::string Path = pathFor(Hash);
    if (auto Bytes = fs::readFile(Path)) {
      ++Stats.PersistentHits;
      fs::touchFile(Path); // persistent LRU recency
      if (UseMemory) {
        Entry E;
        E.Object = *Bytes;
        LruOrder.push_front(Hash);
        E.LruIt = LruOrder.begin();
        MemoryBytesTotal += Bytes->size();
        Memory.emplace(Hash, std::move(E));
        enforceMemoryLimit();
      }
      return Bytes;
    }
  }
  ++Stats.Misses;
  return std::nullopt;
}

void CodeCache::insert(uint64_t Hash, const std::vector<uint8_t> &Object) {
  ++Stats.Insertions;
  if (UseMemory && !Memory.count(Hash)) {
    Entry E;
    E.Object = Object;
    LruOrder.push_front(Hash);
    E.LruIt = LruOrder.begin();
    MemoryBytesTotal += Object.size();
    Memory.emplace(Hash, std::move(E));
    enforceMemoryLimit();
  }
  if (UsePersistent) {
    fs::writeFile(pathFor(Hash), Object);
    enforcePersistentLimit();
  }
}

void CodeCache::enforceMemoryLimit() {
  if (!Limits.MaxMemoryBytes)
    return;
  while (MemoryBytesTotal > Limits.MaxMemoryBytes && Memory.size() > 1) {
    uint64_t Victim;
    if (Limits.Policy == EvictionPolicy::LFU) {
      // Runtime-informed: evict the least-executed specialization,
      // breaking ties toward the least recently used (list back).
      Victim = LruOrder.back();
      uint64_t BestCount = Memory.at(Victim).HitCount;
      for (auto It = LruOrder.rbegin(); It != LruOrder.rend(); ++It) {
        uint64_t C = Memory.at(*It).HitCount;
        if (C < BestCount) {
          BestCount = C;
          Victim = *It;
        }
      }
    } else {
      Victim = LruOrder.back();
    }
    auto It = Memory.find(Victim);
    MemoryBytesTotal -= It->second.Object.size();
    LruOrder.erase(It->second.LruIt);
    Memory.erase(It);
    ++Stats.MemoryEvictions;
  }
}

void CodeCache::enforcePersistentLimit() {
  if (!Limits.MaxPersistentBytes)
    return;
  std::vector<fs::FileInfo> Files = fs::listFilesWithInfo(Dir);
  uint64_t Total = 0;
  for (const fs::FileInfo &F : Files)
    Total += F.Bytes;
  if (Total <= Limits.MaxPersistentBytes)
    return;
  // Oldest write time first (recency is refreshed on hits via touchFile).
  std::sort(Files.begin(), Files.end(),
            [](const fs::FileInfo &A, const fs::FileInfo &B) {
              return A.WriteTimeNs < B.WriteTimeNs;
            });
  for (const fs::FileInfo &F : Files) {
    if (Total <= Limits.MaxPersistentBytes || Files.size() <= 1)
      break;
    if (!startsWith(F.Name, "cache-jit-"))
      continue;
    if (fs::removeFile(Dir + "/" + F.Name)) {
      Total -= F.Bytes;
      ++Stats.PersistentEvictions;
    }
  }
}

uint64_t CodeCache::persistentBytes() const {
  return UsePersistent ? fs::directorySize(Dir) : 0;
}

void CodeCache::clearMemory() {
  Memory.clear();
  LruOrder.clear();
  MemoryBytesTotal = 0;
}

void CodeCache::clearPersistent() {
  if (!UsePersistent)
    return;
  for (const std::string &Name : fs::listFiles(Dir))
    if (startsWith(Name, "cache-jit-"))
      fs::removeFile(Dir + "/" + Name);
}
