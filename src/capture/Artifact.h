//===- Artifact.h - self-contained kernel launch artifacts ------*- C++ -*-===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The capture artifact (.pcap): everything needed to re-JIT and re-execute
/// one kernel launch in isolation — the kernel's pruned bitcode, the runtime
/// argument values, snapshots of the device-memory regions the launch may
/// read and write (pre- and post-launch bytes of the same region set), the
/// launch geometry, the target architecture, the specialization knobs that
/// fed the specialization hash, and the JIT pipeline fingerprint as
/// provenance metadata.
///
/// The on-disk format is framed like the persistent code cache: a magic +
/// version header followed by a payload size and an FNV-1a integrity hash,
/// so a truncated or corrupted file is rejected as unreadable instead of
/// replaying garbage. Serialization contains no timestamps or absolute
/// paths — the same capture produces byte-identical artifacts across runs,
/// which is what makes a checked-in regression corpus diffable.
///
//===----------------------------------------------------------------------===//

#ifndef PROTEUS_CAPTURE_ARTIFACT_H
#define PROTEUS_CAPTURE_ARTIFACT_H

#include "codegen/Target.h"
#include "gpu/Executor.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace proteus {
namespace capture {

/// One contiguous device allocation touched by the launch: its contents
/// immediately before the launch (the input image replay restores) and
/// immediately after (the output image replay diffs against).
struct MemoryRegion {
  uint64_t Address = 0;
  std::vector<uint8_t> PreBytes;
  std::vector<uint8_t> PostBytes;
};

/// A device global the kernel's call closure references, pinned to the
/// address it had at capture time so replay can relink identically.
struct GlobalBinding {
  std::string Symbol;
  uint64_t Address = 0;
};

/// Everything recorded about one launch.
struct CaptureArtifact {
  uint64_t ModuleId = 0;
  std::string KernelSymbol;
  GpuArch Arch = GpuArch::AmdGcnSim;
  gpu::Dim3 Grid;
  gpu::Dim3 Block;
  /// Raw 64-bit payload of every launch argument, in order.
  std::vector<uint64_t> ArgBits;
  /// The kernel's jit-annotated argument indices (1-based, as registered).
  std::vector<uint32_t> AnnotatedArgs;
  /// Specialization knobs in effect at capture time; replay forces these
  /// (they are inputs of the specialization hash).
  bool EnableRCF = true;
  bool EnableLaunchBounds = true;
  /// Whether tiered compilation was on at capture time (provenance only).
  bool TierMode = false;
  /// The specialization hash the capturing runtime computed — replay must
  /// arrive at the identical value.
  uint64_t SpecializationHash = 0;
  /// jitPipelineFingerprint of the capturing runtime's final-tier pipeline
  /// (provenance; a replay under a newer pipeline still must reproduce the
  /// same functional output).
  uint64_t PipelineFingerprint = 0;
  /// Size of the captured device's memory, so replay can rebuild a device
  /// with the identical address space.
  uint64_t DeviceMemoryBytes = 0;
  /// The kernel's pruned module bitcode (reachable call closure only).
  std::vector<uint8_t> Bitcode;
  std::vector<GlobalBinding> Globals;
  /// Sorted by Address (deterministic serialization order).
  std::vector<MemoryRegion> Regions;
};

/// Current artifact format version (bump on layout changes).
constexpr uint32_t ArtifactVersion = 1;

/// Serializes \p A into the framed on-disk byte format.
std::vector<uint8_t> serializeArtifact(const CaptureArtifact &A);

/// Parses a framed artifact. Returns false (with \p Error set) on a bad
/// magic, version mismatch, size mismatch, integrity-hash mismatch, or a
/// truncated payload — never undefined behavior on corrupt input.
bool deserializeArtifact(const std::vector<uint8_t> &Bytes,
                         CaptureArtifact &Out, std::string *Error = nullptr);

/// Reads and validates the artifact file at \p Path.
std::optional<CaptureArtifact> readArtifactFile(const std::string &Path,
                                                std::string *Error = nullptr);

/// Writes \p A to \p Path via write-to-temp + atomic-rename, so a crash or
/// shed mid-write can never leave a partial artifact behind. Returns the
/// number of bytes written, or 0 on IO failure.
uint64_t writeArtifactFile(const std::string &Path, const CaptureArtifact &A);

/// Deterministic artifact file name:
/// "capture-<symbol>-<hash hex>-<seq>.pcap".
std::string artifactFileName(const std::string &KernelSymbol,
                             uint64_t SpecializationHash, uint64_t Sequence);

} // namespace capture
} // namespace proteus

#endif // PROTEUS_CAPTURE_ARTIFACT_H
