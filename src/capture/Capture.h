//===- Capture.h - bounded launch-capture ring ------------------*- C++ -*-===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The live half of the capture/replay harness. When PROTEUS_CAPTURE=on the
/// JIT's launch path records every captured launch as a PendingRecord and
/// hands it to a CaptureSession, which persists artifacts from a dedicated
/// writer thread. The hand-off is a bounded ring: the launch path reserves a
/// slot *before* doing any snapshot work and, if the ring is full, sheds the
/// capture entirely (counted as capture.drops in the runtime's metrics
/// registry) — a slow disk can never stall a launch. Bitcode serialization
/// (the expensive part: materializing the pruned closure and re-encoding it)
/// happens on the writer thread, memoized per kernel symbol, so the launch
/// path only pays for memcpy-ing memory snapshots.
///
/// Artifacts are written via atomic rename, so a shed, a crash, or a racing
/// reader can never observe a partially written .pcap file.
///
//===----------------------------------------------------------------------===//

#ifndef PROTEUS_CAPTURE_CAPTURE_H
#define PROTEUS_CAPTURE_CAPTURE_H

#include "capture/Artifact.h"

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

namespace proteus {

class KernelModuleIndex;

namespace gpu {
class Device;
}

namespace metrics {
class Registry;
}

namespace capture {

/// A captured launch queued for persistence. The artifact's Bitcode field is
/// left empty on the launch path; the writer thread fills it by serializing
/// the kernel's pruned closure out of \p Index.
struct PendingRecord {
  CaptureArtifact Artifact;
  std::shared_ptr<const KernelModuleIndex> Index;
  /// Session-local sequence number used in the artifact file name
  /// (assigned by submit(); not part of the serialized payload).
  uint64_t Sequence = 0;
};

/// Owns the capture directory, the bounded ring, and the writer thread.
/// Launch-path protocol: tryReserve() → build record → submit() on success /
/// release() if the launch itself failed. All entry points are thread-safe.
class CaptureSession {
public:
  /// \p Metrics is the owning runtime's registry; the session bumps
  /// capture.records / capture.drops / capture.dedup / capture.artifacts /
  /// capture.bytes / capture.write_failures / capture.skips on it.
  CaptureSession(std::string Dir, unsigned RingCapacity,
                 metrics::Registry &Metrics);
  ~CaptureSession();

  CaptureSession(const CaptureSession &) = delete;
  CaptureSession &operator=(const CaptureSession &) = delete;

  /// Claims a ring slot without blocking. Returns false — and counts a
  /// drop — when the ring is full; the caller then skips capture for this
  /// launch and proceeds normally.
  ///
  /// A non-zero \p DedupKey identifies the launch shape (specialization
  /// hash + geometry + argument bits). Each key is captured at most once
  /// per session: a repeat returns false without claiming a slot, counted
  /// as capture.dedup rather than a drop — nothing was lost, the shape is
  /// already on disk. Pass 0 to capture every launch (the pressure-test /
  /// stress mode).
  bool tryReserve(uint64_t DedupKey = 0);

  /// Returns a slot claimed by tryReserve() without submitting a record
  /// (the launch failed, so there is nothing worth persisting). Counted as
  /// capture.skips. Pass the same \p DedupKey given to tryReserve() so the
  /// shape is un-marked and a later successful launch can still capture it.
  void release(uint64_t DedupKey = 0);

  /// Enqueues a record against a slot claimed by tryReserve(). Assigns the
  /// artifact's sequence number and wakes the writer.
  void submit(PendingRecord Record);

  /// Blocks until every submitted record has been persisted (or failed).
  void flush();

  /// Test hook: while paused the writer thread holds off persisting, so
  /// tests can fill the ring deterministically and observe shedding.
  void pauseWriterForTest(bool Paused);

  const std::string &directory() const { return Dir; }
  unsigned ringCapacity() const { return Capacity; }

  /// False when the capture directory could not be created; the session
  /// still sheds gracefully (every tryReserve() drops).
  bool ok() const { return DirOk; }

private:
  void writerMain();
  void persist(PendingRecord &Record);

  std::string Dir;
  unsigned Capacity;
  metrics::Registry &Metrics;
  bool DirOk = false;

  std::mutex Mutex;
  std::condition_variable WriterCV; // work available / unpaused / shutdown
  std::condition_variable DrainCV;  // a slot was retired (flush waiters)
  std::deque<PendingRecord> Queue;
  unsigned Reserved = 0; // claimed slots: queued + in-flight + pre-submit
  bool Paused = false;
  bool Shutdown = false;
  uint64_t NextSequence = 0;
  /// Launch shapes already claimed this session (dedup mode). Guarded by
  /// Mutex; keys are inserted by tryReserve() and erased only when the
  /// launch itself fails (release()).
  std::set<uint64_t> SeenShapes;

  /// Writer-thread-only memo of serialized pruned bitcode per kernel symbol
  /// (keyed by index identity + symbol so a re-registered module is not
  /// served stale bitcode). No lock: only writerMain() touches it.
  std::map<std::pair<const void *, std::string>, std::vector<uint8_t>>
      BitcodeMemo;

  std::thread Writer;
};

/// Snapshots the full live allocation containing each candidate address
/// (argument bits and global addresses; non-pointer values that don't fall
/// inside any allocation are skipped). Regions are deduplicated, sorted by
/// base address, and returned with PreBytes filled.
std::vector<MemoryRegion>
snapshotRegions(const gpu::Device &Dev,
                const std::vector<uint64_t> &CandidateAddresses);

/// Fills each region's PostBytes from the device's current memory (call
/// after the launch has executed).
void fillPostBytes(const gpu::Device &Dev, std::vector<MemoryRegion> &Regions);

} // namespace capture
} // namespace proteus

#endif // PROTEUS_CAPTURE_CAPTURE_H
