//===- Artifact.cpp - self-contained kernel launch artifacts --------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//

#include "capture/Artifact.h"

#include "support/BinaryStream.h"
#include "support/FileSystem.h"
#include "support/Hashing.h"

namespace proteus {
namespace capture {

namespace {

constexpr uint8_t Magic[4] = {'P', 'C', 'A', 'P'};

void writeDim3(ByteWriter &W, const gpu::Dim3 &D) {
  W.writeU32(D.X);
  W.writeU32(D.Y);
  W.writeU32(D.Z);
}

gpu::Dim3 readDim3(ByteReader &R) {
  gpu::Dim3 D;
  D.X = R.readU32();
  D.Y = R.readU32();
  D.Z = R.readU32();
  return D;
}

std::vector<uint8_t> serializePayload(const CaptureArtifact &A) {
  ByteWriter W;
  W.writeU64(A.ModuleId);
  W.writeString(A.KernelSymbol);
  W.writeU8(static_cast<uint8_t>(A.Arch));
  writeDim3(W, A.Grid);
  writeDim3(W, A.Block);
  W.writeU32(static_cast<uint32_t>(A.ArgBits.size()));
  for (uint64_t Bits : A.ArgBits)
    W.writeU64(Bits);
  W.writeU32(static_cast<uint32_t>(A.AnnotatedArgs.size()));
  for (uint32_t Idx : A.AnnotatedArgs)
    W.writeU32(Idx);
  W.writeU8(A.EnableRCF ? 1 : 0);
  W.writeU8(A.EnableLaunchBounds ? 1 : 0);
  W.writeU8(A.TierMode ? 1 : 0);
  W.writeU64(A.SpecializationHash);
  W.writeU64(A.PipelineFingerprint);
  W.writeU64(A.DeviceMemoryBytes);
  W.writeBytes(A.Bitcode);
  W.writeU32(static_cast<uint32_t>(A.Globals.size()));
  for (const GlobalBinding &G : A.Globals) {
    W.writeString(G.Symbol);
    W.writeU64(G.Address);
  }
  W.writeU32(static_cast<uint32_t>(A.Regions.size()));
  for (const MemoryRegion &R : A.Regions) {
    W.writeU64(R.Address);
    W.writeBytes(R.PreBytes);
    W.writeBytes(R.PostBytes);
  }
  return W.take();
}

bool deserializePayload(const std::vector<uint8_t> &Payload,
                        CaptureArtifact &Out, std::string *Error) {
  ByteReader R(Payload);
  Out.ModuleId = R.readU64();
  Out.KernelSymbol = R.readString();
  uint8_t ArchByte = R.readU8();
  if (ArchByte > static_cast<uint8_t>(GpuArch::NvPtxSim)) {
    if (Error)
      *Error = "unknown target architecture tag";
    return false;
  }
  Out.Arch = static_cast<GpuArch>(ArchByte);
  Out.Grid = readDim3(R);
  Out.Block = readDim3(R);
  uint32_t NumArgs = R.readU32();
  Out.ArgBits.clear();
  for (uint32_t I = 0; I < NumArgs && R.ok(); ++I)
    Out.ArgBits.push_back(R.readU64());
  uint32_t NumAnnotated = R.readU32();
  Out.AnnotatedArgs.clear();
  for (uint32_t I = 0; I < NumAnnotated && R.ok(); ++I)
    Out.AnnotatedArgs.push_back(R.readU32());
  Out.EnableRCF = R.readU8() != 0;
  Out.EnableLaunchBounds = R.readU8() != 0;
  Out.TierMode = R.readU8() != 0;
  Out.SpecializationHash = R.readU64();
  Out.PipelineFingerprint = R.readU64();
  Out.DeviceMemoryBytes = R.readU64();
  Out.Bitcode = R.readBytes();
  uint32_t NumGlobals = R.readU32();
  Out.Globals.clear();
  for (uint32_t I = 0; I < NumGlobals && R.ok(); ++I) {
    GlobalBinding G;
    G.Symbol = R.readString();
    G.Address = R.readU64();
    Out.Globals.push_back(std::move(G));
  }
  uint32_t NumRegions = R.readU32();
  Out.Regions.clear();
  for (uint32_t I = 0; I < NumRegions && R.ok(); ++I) {
    MemoryRegion M;
    M.Address = R.readU64();
    M.PreBytes = R.readBytes();
    M.PostBytes = R.readBytes();
    Out.Regions.push_back(std::move(M));
  }
  if (!R.ok() || R.remaining() != 0) {
    if (Error)
      *Error = "truncated or malformed artifact payload";
    return false;
  }
  return true;
}

} // namespace

std::vector<uint8_t> serializeArtifact(const CaptureArtifact &A) {
  std::vector<uint8_t> Payload = serializePayload(A);
  ByteWriter W;
  for (uint8_t B : Magic)
    W.writeU8(B);
  W.writeU32(ArtifactVersion);
  W.writeU64(Payload.size());
  W.writeU64(hashBytes(Payload.data(), Payload.size()));
  std::vector<uint8_t> Bytes = W.take();
  Bytes.insert(Bytes.end(), Payload.begin(), Payload.end());
  return Bytes;
}

bool deserializeArtifact(const std::vector<uint8_t> &Bytes,
                         CaptureArtifact &Out, std::string *Error) {
  ByteReader R(Bytes);
  for (uint8_t B : Magic) {
    if (R.readU8() != B) {
      if (Error)
        *Error = "not a capture artifact (bad magic)";
      return false;
    }
  }
  uint32_t Version = R.readU32();
  if (!R.ok()) {
    if (Error)
      *Error = "truncated artifact header";
    return false;
  }
  if (Version != ArtifactVersion) {
    if (Error)
      *Error = "unsupported artifact version " + std::to_string(Version);
    return false;
  }
  uint64_t PayloadSize = R.readU64();
  uint64_t PayloadHash = R.readU64();
  if (!R.ok() || R.remaining() != PayloadSize) {
    if (Error)
      *Error = "artifact payload size mismatch";
    return false;
  }
  std::vector<uint8_t> Payload(Bytes.end() - static_cast<long>(PayloadSize),
                               Bytes.end());
  if (hashBytes(Payload.data(), Payload.size()) != PayloadHash) {
    if (Error)
      *Error = "artifact integrity hash mismatch";
    return false;
  }
  return deserializePayload(Payload, Out, Error);
}

std::optional<CaptureArtifact> readArtifactFile(const std::string &Path,
                                                std::string *Error) {
  auto Bytes = fs::readFile(Path);
  if (!Bytes) {
    if (Error)
      *Error = "cannot read '" + Path + "'";
    return std::nullopt;
  }
  CaptureArtifact A;
  if (!deserializeArtifact(*Bytes, A, Error))
    return std::nullopt;
  return A;
}

uint64_t writeArtifactFile(const std::string &Path, const CaptureArtifact &A) {
  std::vector<uint8_t> Bytes = serializeArtifact(A);
  if (!fs::writeFileAtomic(Path, Bytes))
    return 0;
  return Bytes.size();
}

std::string artifactFileName(const std::string &KernelSymbol,
                             uint64_t SpecializationHash, uint64_t Sequence) {
  return "capture-" + KernelSymbol + "-" + hashToHex(SpecializationHash) +
         "-" + std::to_string(Sequence) + ".pcap";
}

} // namespace capture
} // namespace proteus
