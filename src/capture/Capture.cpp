//===- Capture.cpp - bounded launch-capture ring --------------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//

#include "capture/Capture.h"

#include "bitcode/Bitcode.h"
#include "bitcode/ModuleIndex.h"
#include "gpu/Device.h"
#include "ir/Context.h"
#include "ir/Module.h"
#include "support/FileSystem.h"
#include "support/Metrics.h"

#include <algorithm>
#include <cstring>

using namespace proteus;
using namespace proteus::capture;

CaptureSession::CaptureSession(std::string Dir, unsigned RingCapacity,
                               metrics::Registry &Metrics)
    : Dir(std::move(Dir)), Capacity(std::max(1u, RingCapacity)),
      Metrics(Metrics) {
  DirOk = fs::createDirectories(this->Dir);
  Writer = std::thread([this] { writerMain(); });
}

CaptureSession::~CaptureSession() {
  {
    std::lock_guard<std::mutex> G(Mutex);
    Paused = false;
    Shutdown = true;
  }
  WriterCV.notify_all();
  if (Writer.joinable())
    Writer.join();
}

bool CaptureSession::tryReserve(uint64_t DedupKey) {
  bool Duplicate = false;
  {
    std::lock_guard<std::mutex> G(Mutex);
    if (DirOk && !Shutdown) {
      // Dedup check comes after the health checks (an unusable session
      // counts drops, never dedups) but before the capacity check: a shape
      // that is already on disk is a duplicate whether or not the ring
      // happens to be full right now.
      if (DedupKey != 0 && SeenShapes.count(DedupKey))
        Duplicate = true;
      else if (Reserved < Capacity) {
        ++Reserved;
        if (DedupKey != 0)
          SeenShapes.insert(DedupKey);
        return true;
      }
    }
  }
  Metrics.counter(Duplicate ? "capture.dedup" : "capture.drops").add();
  return false;
}

void CaptureSession::release(uint64_t DedupKey) {
  {
    std::lock_guard<std::mutex> G(Mutex);
    if (Reserved > 0)
      --Reserved;
    if (DedupKey != 0)
      SeenShapes.erase(DedupKey);
  }
  Metrics.counter("capture.skips").add();
  DrainCV.notify_all();
}

void CaptureSession::submit(PendingRecord Record) {
  {
    std::lock_guard<std::mutex> G(Mutex);
    Record.Sequence = NextSequence++;
    Queue.push_back(std::move(Record));
  }
  Metrics.counter("capture.records").add();
  WriterCV.notify_one();
}

void CaptureSession::flush() {
  std::unique_lock<std::mutex> L(Mutex);
  DrainCV.wait(L, [this] { return Reserved == 0; });
}

void CaptureSession::pauseWriterForTest(bool NewPaused) {
  {
    std::lock_guard<std::mutex> G(Mutex);
    Paused = NewPaused;
  }
  WriterCV.notify_all();
}

void CaptureSession::writerMain() {
  for (;;) {
    PendingRecord Record;
    {
      std::unique_lock<std::mutex> L(Mutex);
      WriterCV.wait(L, [this] {
        return Shutdown || (!Paused && !Queue.empty());
      });
      if (Queue.empty()) {
        if (Shutdown)
          return;
        continue;
      }
      Record = std::move(Queue.front());
      Queue.pop_front();
    }
    persist(Record);
    {
      std::lock_guard<std::mutex> G(Mutex);
      if (Reserved > 0)
        --Reserved;
    }
    DrainCV.notify_all();
  }
}

void CaptureSession::persist(PendingRecord &Record) {
  CaptureArtifact &A = Record.Artifact;
  if (A.Bitcode.empty() && Record.Index) {
    auto Key = std::make_pair(static_cast<const void *>(Record.Index.get()),
                              A.KernelSymbol);
    auto It = BitcodeMemo.find(Key);
    if (It == BitcodeMemo.end()) {
      pir::Context Ctx;
      std::unique_ptr<pir::Module> Pruned =
          Record.Index->materialize(Ctx, A.KernelSymbol, nullptr);
      std::vector<uint8_t> Bitcode;
      if (Pruned)
        Bitcode = writeBitcode(*Pruned);
      It = BitcodeMemo.emplace(std::move(Key), std::move(Bitcode)).first;
    }
    A.Bitcode = It->second;
  }
  if (A.Bitcode.empty()) {
    Metrics.counter("capture.write_failures").add();
    return;
  }
  std::string Path =
      Dir + "/" +
      artifactFileName(A.KernelSymbol, A.SpecializationHash, Record.Sequence);
  uint64_t Bytes = writeArtifactFile(Path, A);
  if (Bytes == 0) {
    Metrics.counter("capture.write_failures").add();
    return;
  }
  Metrics.counter("capture.artifacts").add();
  Metrics.counter("capture.bytes").add(Bytes);
}

std::vector<MemoryRegion>
proteus::capture::snapshotRegions(const gpu::Device &Dev,
                                  const std::vector<uint64_t> &Candidates) {
  // Dedup candidate addresses into (base, size) allocations via an ordered
  // map so the region list is sorted and deterministic.
  std::map<uint64_t, uint64_t> Found;
  for (uint64_t P : Candidates) {
    uint64_t Base = 0, Size = 0;
    if (Dev.findAllocation(P, &Base, &Size))
      Found[Base] = Size;
  }
  const std::vector<uint8_t> &Mem = Dev.memory();
  std::vector<MemoryRegion> Regions;
  Regions.reserve(Found.size());
  for (const auto &BaseSize : Found) {
    MemoryRegion R;
    R.Address = BaseSize.first;
    R.PreBytes.resize(BaseSize.second);
    std::memcpy(R.PreBytes.data(), Mem.data() + BaseSize.first,
                BaseSize.second);
    Regions.push_back(std::move(R));
  }
  return Regions;
}

void proteus::capture::fillPostBytes(const gpu::Device &Dev,
                                     std::vector<MemoryRegion> &Regions) {
  const std::vector<uint8_t> &Mem = Dev.memory();
  for (MemoryRegion &R : Regions) {
    R.PostBytes.resize(R.PreBytes.size());
    std::memcpy(R.PostBytes.data(), Mem.data() + R.Address,
                R.PostBytes.size());
  }
}
