//===- ModuleIndex.cpp - parse-once pruned kernel-module cache ------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//

#include "bitcode/ModuleIndex.h"

#include "bitcode/Bitcode.h"
#include "ir/Cloning.h"
#include "ir/Context.h"
#include "ir/Instructions.h"
#include "ir/Module.h"

#include <functional>
#include <unordered_set>

using namespace proteus;
using namespace pir;

KernelModuleIndex::KernelModuleIndex() = default;
KernelModuleIndex::~KernelModuleIndex() = default;

std::shared_ptr<const KernelModuleIndex>
KernelModuleIndex::create(const std::vector<uint8_t> &Bitcode,
                          std::string &Error) {
  // make_shared needs a public constructor; use new + shared_ptr instead.
  std::shared_ptr<KernelModuleIndex> Index(new KernelModuleIndex());
  Index->ProtoCtx = std::make_unique<Context>();
  BitcodeReadResult R = readBitcode(*Index->ProtoCtx, Bitcode);
  if (!R.M) {
    Error = R.Error;
    return nullptr;
  }
  Index->Proto = std::move(R.M);

  Module &M = *Index->Proto;
  for (const auto &F : M.functions())
    ++Index->TotalFunctions;

  // Precompute each kernel's transitive callee + referenced-global closure,
  // mirroring extractKernelModule's AOT-time walk. Done once here so the
  // per-specialization materialize() is a straight clone of a fixed list.
  for (Function *K : M.kernels()) {
    Closure C;
    std::unordered_set<Function *> Visited;
    std::unordered_set<GlobalVariable *> NeededGlobals;
    std::function<void(Function *)> Visit = [&](Function *F) {
      if (!Visited.insert(F).second)
        return;
      for (BasicBlock &BB : *F)
        for (Instruction &I : BB)
          for (Value *Op : I.operands()) {
            if (auto *Callee = dyn_cast<Function>(Op))
              Visit(Callee);
            else if (auto *G = dyn_cast<GlobalVariable>(Op))
              NeededGlobals.insert(G);
          }
      // Post-order: callees precede callers.
      C.Functions.push_back(F);
    };
    Visit(K);
    // Globals in deterministic source order.
    for (const auto &G : M.globals())
      if (NeededGlobals.count(G.get()))
        C.Globals.push_back(G.get());
    Index->Closures.emplace(K->getName(), std::move(C));
  }
  return Index;
}

std::vector<std::string>
KernelModuleIndex::closureGlobalNames(const std::string &KernelSymbol) const {
  std::vector<std::string> Names;
  auto It = Closures.find(KernelSymbol);
  if (It == Closures.end())
    return Names;
  for (const GlobalVariable *G : It->second.Globals)
    Names.push_back(G->getName());
  return Names;
}

std::unique_ptr<Module>
KernelModuleIndex::materialize(Context &Ctx, const std::string &KernelSymbol,
                               uint64_t *PrunedFunctions) const {
  auto It = Closures.find(KernelSymbol);
  if (It == Closures.end())
    return nullptr;
  const Closure &C = It->second;

  auto Out = std::make_unique<Module>(Ctx, Proto->getName());
  for (GlobalVariable *G : C.Globals)
    Out->createGlobal(G->getName(),
                      Ctx.getType(G->getElemType()->getKind()),
                      G->getNumElements(), G->getInit());
  for (Function *F : C.Functions)
    cloneFunctionInto(*Out, *F, F->getName());
  if (PrunedFunctions)
    *PrunedFunctions = TotalFunctions - C.Functions.size();
  return Out;
}
