//===- ModuleIndex.h - parse-once pruned kernel-module cache ----*- C++ -*-===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A kernel's extracted bitcode is parsed exactly once into a private,
/// immutable prototype module; every subsequent specialization materializes
/// a fresh module by cloning only the launched kernel's reachable call
/// closure (functions + referenced globals) into the caller's context,
/// instead of re-parsing the bitcode and cloning the whole module per
/// compile. The prototype (and its context) are strictly read-only after
/// construction, so materialize() may be called concurrently from any
/// number of compile workers — the cross-context translating clone in
/// ir/Cloning never touches the source IR's use lists.
///
//===----------------------------------------------------------------------===//

#ifndef PROTEUS_BITCODE_MODULEINDEX_H
#define PROTEUS_BITCODE_MODULEINDEX_H

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace pir {
class Context;
class Function;
class GlobalVariable;
class Module;
} // namespace pir

namespace proteus {

/// Parse-once index over one extracted kernel module.
class KernelModuleIndex {
public:
  ~KernelModuleIndex();

  KernelModuleIndex(const KernelModuleIndex &) = delete;
  KernelModuleIndex &operator=(const KernelModuleIndex &) = delete;

  /// Parses \p Bitcode into a private context and precomputes each kernel's
  /// call closure. Returns nullptr and sets \p Error on malformed bitcode.
  static std::shared_ptr<const KernelModuleIndex>
  create(const std::vector<uint8_t> &Bitcode, std::string &Error);

  /// Clones \p KernelSymbol's reachable closure into a fresh module owned by
  /// \p Ctx. \p PrunedFunctions (optional) receives the number of prototype
  /// functions *not* cloned (the pruning win vs. a whole-module clone).
  /// Returns nullptr if the kernel is unknown. Thread-safe.
  std::unique_ptr<pir::Module> materialize(pir::Context &Ctx,
                                           const std::string &KernelSymbol,
                                           uint64_t *PrunedFunctions) const;

  /// Total functions in the prototype module.
  size_t functionCount() const { return TotalFunctions; }

  /// The parsed prototype module, exposed for whole-module validation
  /// (JitConfig::VerifyIR runs the verifier over everything the bitcode
  /// contained, including functions a pruned materialization would drop).
  /// Callers must treat it as read-only.
  pir::Module &prototype() const { return *Proto; }

  /// True if \p KernelSymbol names an indexed kernel.
  bool hasKernel(const std::string &KernelSymbol) const {
    return Closures.count(KernelSymbol) != 0;
  }

  /// Names of the device globals in \p KernelSymbol's closure, in the same
  /// deterministic source order materialize() clones them. Empty when the
  /// kernel is unknown. Thread-safe (the closures are immutable after
  /// create()). The capture subsystem uses this to record which global
  /// symbols an artifact must rebind at replay time.
  std::vector<std::string>
  closureGlobalNames(const std::string &KernelSymbol) const;

private:
  KernelModuleIndex();

  /// Per-kernel reachable set, precomputed at create() time so materialize()
  /// does no graph walking (and no mutation) on the hot path.
  struct Closure {
    /// Post-order: callees before callers, so bodies clone into resolved
    /// declarations.
    std::vector<pir::Function *> Functions;
    std::vector<pir::GlobalVariable *> Globals;
  };

  /// Private context keeps the prototype's types/constants isolated from
  /// every per-compile context (the Context constant maps are not
  /// thread-safe, so the prototype context must never be written through).
  std::unique_ptr<pir::Context> ProtoCtx;
  std::unique_ptr<pir::Module> Proto;
  std::unordered_map<std::string, Closure> Closures;
  size_t TotalFunctions = 0;
};

} // namespace proteus

#endif // PROTEUS_BITCODE_MODULEINDEX_H
