//===- Bitcode.h - PIR binary serialization ---------------------*- C++ -*-===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Binary serialization of PIR modules — the equivalent of LLVM bitcode in
/// the paper's design. The Proteus AOT extensions serialize each annotated
/// kernel's (unoptimized) module with writeBitcode and embed the bytes in
/// the device image (__jit_bc_<kernel> / .jit.<kernel> section); the JIT
/// runtime library deserializes with readBitcode before specializing.
///
//===----------------------------------------------------------------------===//

#ifndef PROTEUS_BITCODE_BITCODE_H
#define PROTEUS_BITCODE_BITCODE_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace pir {
class Context;
class Module;
} // namespace pir

namespace proteus {

/// Serializes \p M into a self-contained byte buffer.
std::vector<uint8_t> writeBitcode(pir::Module &M);

/// Result of deserialization: a module, or a diagnostic.
struct BitcodeReadResult {
  std::unique_ptr<pir::Module> M;
  std::string Error;

  explicit operator bool() const { return M != nullptr; }
};

/// Deserializes a module from \p Bytes into \p Ctx. Malformed input yields
/// an error result, never undefined behavior — cache files may be corrupt.
BitcodeReadResult readBitcode(pir::Context &Ctx,
                              const std::vector<uint8_t> &Bytes);

} // namespace proteus

#endif // PROTEUS_BITCODE_BITCODE_H
