//===- Bitcode.cpp - PIR binary serialization -----------------------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Format (all little-endian):
//   magic "PIRB", version u32
//   module name
//   globals:   count, then {name, elem-kind u8, count u64, init bytes}
//   functions: count, then headers {name, ret u8, fnkind u8, flags,
//              launch-bounds?, annotation?, params}
//   bodies:    per function: block count (0 = declaration), block names,
//              instructions with operands encoded as tagged references.
//
// Operand tags: 0 = SSA slot (args then instructions, function-wide index),
// 1 = constant int, 2 = constant fp, 3 = constant ptr, 4 = global index,
// 5 = function index, 6 = block index.
//
//===----------------------------------------------------------------------===//

#include "bitcode/Bitcode.h"

#include "ir/Context.h"
#include "ir/Module.h"
#include "support/BinaryStream.h"

#include <unordered_map>

using namespace proteus;
using namespace pir;

namespace {

constexpr uint32_t Magic = 0x42524950; // "PIRB"
constexpr uint32_t Version = 1;

enum OperandTag : uint8_t {
  TagSlot = 0,
  TagConstInt = 1,
  TagConstFP = 2,
  TagConstPtr = 3,
  TagGlobal = 4,
  TagFunction = 5,
  TagBlock = 6,
};

//===----------------------------------------------------------------------===//
// Writer
//===----------------------------------------------------------------------===//

class Writer {
public:
  explicit Writer(Module &M) : M(M) {}

  std::vector<uint8_t> run() {
    W.writeU32(Magic);
    W.writeU32(Version);
    W.writeString(M.getName());

    W.writeU32(static_cast<uint32_t>(M.globals().size()));
    uint32_t GIdx = 0;
    for (const auto &G : M.globals()) {
      GlobalIds[G.get()] = GIdx++;
      W.writeString(G->getName());
      W.writeU8(static_cast<uint8_t>(G->getElemType()->getKind()));
      W.writeU64(G->getNumElements());
      W.writeBytes(G->getInit());
    }

    W.writeU32(static_cast<uint32_t>(M.functions().size()));
    uint32_t FIdx = 0;
    for (const auto &F : M.functions()) {
      FunctionIds[F.get()] = FIdx++;
      writeFunctionHeader(*F);
    }
    for (const auto &F : M.functions())
      writeFunctionBody(*F);
    return W.take();
  }

private:
  void writeFunctionHeader(Function &F) {
    W.writeString(F.getName());
    W.writeU8(static_cast<uint8_t>(F.getReturnType()->getKind()));
    W.writeU8(static_cast<uint8_t>(F.getFunctionKind()));
    W.writeU8(F.isAlwaysInline() ? 1 : 0);
    if (const auto &LB = F.getLaunchBounds()) {
      W.writeU8(1);
      W.writeU32(LB->MaxThreadsPerBlock);
      W.writeU32(LB->MinBlocksPerProcessor);
    } else {
      W.writeU8(0);
    }
    if (const auto &Ann = F.getJitAnnotation()) {
      W.writeU8(1);
      W.writeU32(static_cast<uint32_t>(Ann->ArgIndices.size()));
      for (uint32_t I : Ann->ArgIndices)
        W.writeU32(I);
    } else {
      W.writeU8(0);
    }
    W.writeU32(static_cast<uint32_t>(F.getNumArgs()));
    for (const auto &A : F.args()) {
      W.writeU8(static_cast<uint8_t>(A->getType()->getKind()));
      W.writeString(A->getName());
    }
  }

  void writeOperand(Value *V) {
    if (auto *CI = dyn_cast<ConstantInt>(V)) {
      W.writeU8(TagConstInt);
      W.writeU8(static_cast<uint8_t>(CI->getType()->getKind()));
      W.writeU64(CI->getZExtValue());
      return;
    }
    if (auto *CF = dyn_cast<ConstantFP>(V)) {
      W.writeU8(TagConstFP);
      W.writeU8(static_cast<uint8_t>(CF->getType()->getKind()));
      W.writeF64(CF->getValue());
      return;
    }
    if (auto *CP = dyn_cast<ConstantPtr>(V)) {
      W.writeU8(TagConstPtr);
      W.writeU64(CP->getAddress());
      return;
    }
    if (auto *G = dyn_cast<GlobalVariable>(V)) {
      W.writeU8(TagGlobal);
      W.writeU32(GlobalIds.at(G));
      return;
    }
    if (auto *F = dyn_cast<Function>(V)) {
      W.writeU8(TagFunction);
      W.writeU32(FunctionIds.at(F));
      return;
    }
    if (auto *BB = dyn_cast<BasicBlock>(V)) {
      W.writeU8(TagBlock);
      W.writeU32(BlockIds.at(BB));
      return;
    }
    W.writeU8(TagSlot);
    W.writeU32(SlotIds.at(V));
  }

  void writeFunctionBody(Function &F) {
    SlotIds.clear();
    BlockIds.clear();
    if (F.isDeclaration()) {
      W.writeU32(0);
      return;
    }
    uint32_t Slot = 0;
    for (const auto &A : F.args())
      SlotIds[A.get()] = Slot++;
    uint32_t BIdx = 0;
    std::vector<BasicBlock *> Blocks;
    for (BasicBlock &BB : F) {
      BlockIds[&BB] = BIdx++;
      Blocks.push_back(&BB);
      for (Instruction &I : BB)
        if (!I.getType()->isVoid())
          SlotIds[&I] = Slot++;
    }
    W.writeU32(static_cast<uint32_t>(Blocks.size()));
    for (BasicBlock *BB : Blocks)
      W.writeString(BB->getName());
    for (BasicBlock *BB : Blocks) {
      W.writeU32(static_cast<uint32_t>(BB->size()));
      for (Instruction &I : *BB)
        writeInstruction(I);
    }
  }

  void writeInstruction(Instruction &I) {
    W.writeU8(static_cast<uint8_t>(I.getKind()));
    W.writeString(I.getName());
    switch (I.getKind()) {
    case ValueKind::ICmp:
      W.writeU8(static_cast<uint8_t>(cast<ICmpInst>(I).getPredicate()));
      writeOperand(I.getOperand(0));
      writeOperand(I.getOperand(1));
      return;
    case ValueKind::FCmp:
      W.writeU8(static_cast<uint8_t>(cast<FCmpInst>(I).getPredicate()));
      writeOperand(I.getOperand(0));
      writeOperand(I.getOperand(1));
      return;
    case ValueKind::Alloca: {
      auto &A = cast<AllocaInst>(I);
      W.writeU8(static_cast<uint8_t>(A.getAllocatedType()->getKind()));
      W.writeU32(A.getNumElements());
      return;
    }
    case ValueKind::Load:
      W.writeU8(static_cast<uint8_t>(I.getType()->getKind()));
      writeOperand(I.getOperand(0));
      return;
    case ValueKind::PtrAdd: {
      auto &P = cast<PtrAddInst>(I);
      W.writeU32(P.getElemSize());
      writeOperand(P.getBase());
      writeOperand(P.getIndex());
      return;
    }
    case ValueKind::ThreadIdx:
    case ValueKind::BlockIdx:
    case ValueKind::BlockDim:
    case ValueKind::GridDim:
      W.writeU8(cast<GpuIndexInst>(I).getDim());
      return;
    case ValueKind::Barrier:
      return;
    case ValueKind::Phi:
      W.writeU8(static_cast<uint8_t>(I.getType()->getKind()));
      W.writeU32(static_cast<uint32_t>(I.getNumOperands()));
      for (size_t K = 0; K != I.getNumOperands(); ++K)
        writeOperand(I.getOperand(K));
      return;
    default:
      // Variable/fixed-arity kinds handled uniformly: optional cast result
      // type, then operand count + operands.
      if (isa<CastInst>(&I))
        W.writeU8(static_cast<uint8_t>(I.getType()->getKind()));
      W.writeU32(static_cast<uint32_t>(I.getNumOperands()));
      for (size_t K = 0; K != I.getNumOperands(); ++K)
        writeOperand(I.getOperand(K));
      return;
    }
  }

  Module &M;
  ByteWriter W;
  std::unordered_map<const GlobalVariable *, uint32_t> GlobalIds;
  std::unordered_map<const Function *, uint32_t> FunctionIds;
  std::unordered_map<const Value *, uint32_t> SlotIds;
  std::unordered_map<const BasicBlock *, uint32_t> BlockIds;
};

//===----------------------------------------------------------------------===//
// Reader
//===----------------------------------------------------------------------===//

class Reader {
public:
  Reader(Context &Ctx, const std::vector<uint8_t> &Bytes)
      : Ctx(Ctx), R(Bytes) {}

  BitcodeReadResult run() {
    if (R.readU32() != Magic || R.readU32() != Version)
      return fail("bad bitcode magic/version");
    std::string Name = R.readString();
    M = std::make_unique<Module>(Ctx, Name);

    uint32_t NumGlobals = R.readU32();
    if (NumGlobals > 1u << 20)
      return fail("global count too large");
    for (uint32_t I = 0; I != NumGlobals && R.ok(); ++I) {
      std::string GName = R.readString();
      Type *ElemTy = readType();
      uint64_t Count = R.readU64();
      std::vector<uint8_t> Init = R.readBytes();
      if (!R.ok() || !ElemTy || ElemTy->isVoid())
        return fail("bad global record");
      if (!Init.empty() && Init.size() != Count * ElemTy->sizeInBytes())
        return fail("global initializer size mismatch");
      if (M->getGlobal(GName))
        return fail("duplicate global");
      Globals.push_back(
          M->createGlobal(GName, ElemTy, Count, std::move(Init)));
    }

    uint32_t NumFunctions = R.readU32();
    if (NumFunctions > 1u << 20)
      return fail("function count too large");
    for (uint32_t I = 0; I != NumFunctions && R.ok(); ++I)
      if (!readFunctionHeader())
        return fail(Diag.empty() ? "bad function header" : Diag);
    for (uint32_t I = 0; I != NumFunctions && R.ok(); ++I)
      if (!readFunctionBody(Functions[I]))
        return fail(Diag.empty() ? "bad function body" : Diag);
    if (!R.ok())
      return fail("truncated bitcode");
    BitcodeReadResult Out;
    Out.M = std::move(M);
    return Out;
  }

private:
  struct Fixup {
    Instruction *I;
    size_t OperandIndex;
    uint32_t Slot;
  };

  BitcodeReadResult fail(const std::string &Msg) {
    BitcodeReadResult Out;
    Out.Error = Msg;
    return Out;
  }

  bool err(const std::string &Msg) {
    if (Diag.empty())
      Diag = Msg;
    return false;
  }

  Type *readType() {
    uint8_t K = R.readU8();
    if (K > static_cast<uint8_t>(Type::Kind::Ptr))
      return nullptr;
    return Ctx.getType(static_cast<Type::Kind>(K));
  }

  bool readFunctionHeader() {
    std::string Name = R.readString();
    Type *RetTy = readType();
    uint8_t FK = R.readU8();
    uint8_t Inline = R.readU8();
    if (!RetTy || FK > 1)
      return err("bad function header fields");
    std::optional<LaunchBounds> LB;
    if (R.readU8()) {
      LaunchBounds B;
      B.MaxThreadsPerBlock = R.readU32();
      B.MinBlocksPerProcessor = R.readU32();
      LB = B;
    }
    std::optional<JitAnnotation> Ann;
    if (R.readU8()) {
      JitAnnotation A;
      uint32_t N = R.readU32();
      if (N > 4096)
        return err("annotation list too long");
      for (uint32_t I = 0; I != N; ++I)
        A.ArgIndices.push_back(R.readU32());
      Ann = std::move(A);
    }
    uint32_t NumParams = R.readU32();
    if (NumParams > 65536)
      return err("parameter list too long");
    std::vector<Type *> ParamTypes;
    std::vector<std::string> ParamNames;
    for (uint32_t I = 0; I != NumParams && R.ok(); ++I) {
      Type *Ty = readType();
      if (!Ty || Ty->isVoid())
        return err("bad parameter type");
      ParamTypes.push_back(Ty);
      ParamNames.push_back(R.readString());
    }
    if (!R.ok() || M->getFunction(Name))
      return err("bad or duplicate function");
    Function *F = M->createFunction(Name, RetTy, ParamTypes, ParamNames,
                                    static_cast<FunctionKind>(FK));
    F->setAlwaysInline(Inline != 0);
    if (LB)
      F->setLaunchBounds(*LB);
    if (Ann)
      F->setJitAnnotation(std::move(*Ann));
    Functions.push_back(F);
    return true;
  }

  /// Reads an operand reference; for not-yet-defined SSA slots (phi forward
  /// references) returns a placeholder and records a fixup when \p FixupSink
  /// is provided.
  Value *readOperand(std::vector<Fixup> *FixupSink, Instruction *ForInst,
                     size_t OperandIndex, Type *PlaceholderTy) {
    uint8_t Tag = R.readU8();
    switch (Tag) {
    case TagSlot: {
      uint32_t Slot = R.readU32();
      if (Slot < Slots.size() && Slots[Slot])
        return Slots[Slot];
      if (FixupSink && PlaceholderTy) {
        FixupSink->push_back(Fixup{ForInst, OperandIndex, Slot});
        return placeholder(PlaceholderTy);
      }
      err("operand slot out of range");
      return nullptr;
    }
    case TagConstInt: {
      Type *Ty = readType();
      uint64_t V = R.readU64();
      if (!Ty || !Ty->isInteger()) {
        err("bad integer constant");
        return nullptr;
      }
      return Ctx.getConstantInt(Ty, V);
    }
    case TagConstFP: {
      Type *Ty = readType();
      double V = R.readF64();
      if (!Ty || !Ty->isFloatingPoint()) {
        err("bad fp constant");
        return nullptr;
      }
      return Ctx.getConstantFP(Ty, V);
    }
    case TagConstPtr:
      return Ctx.getConstantPtr(R.readU64());
    case TagGlobal: {
      uint32_t I = R.readU32();
      if (I >= Globals.size()) {
        err("global index out of range");
        return nullptr;
      }
      return Globals[I];
    }
    case TagFunction: {
      uint32_t I = R.readU32();
      if (I >= Functions.size()) {
        err("function index out of range");
        return nullptr;
      }
      return Functions[I];
    }
    case TagBlock: {
      uint32_t I = R.readU32();
      if (I >= Blocks.size()) {
        err("block index out of range");
        return nullptr;
      }
      return Blocks[I];
    }
    default:
      err("bad operand tag");
      return nullptr;
    }
  }

  Value *readOperand() { return readOperand(nullptr, nullptr, 0, nullptr); }

  Value *placeholder(Type *Ty) {
    if (Ty->isInteger())
      return Ctx.getConstantInt(Ty, 0);
    if (Ty->isFloatingPoint())
      return Ctx.getConstantFP(Ty, 0.0);
    return Ctx.getNullPtr();
  }

  bool readFunctionBody(Function *F) {
    uint32_t NumBlocks = R.readU32();
    if (NumBlocks == 0)
      return R.ok();
    if (NumBlocks > 1u << 20)
      return err("block count too large");
    Slots.clear();
    Blocks.clear();
    for (const auto &A : F->args())
      Slots.push_back(A.get());
    for (uint32_t I = 0; I != NumBlocks && R.ok(); ++I)
      Blocks.push_back(F->createBlock(R.readString(), Ctx.getVoidTy()));

    std::vector<Fixup> Fixups;
    for (uint32_t B = 0; B != NumBlocks && R.ok(); ++B) {
      uint32_t NumInsts = R.readU32();
      if (NumInsts > 1u << 24)
        return err("instruction count too large");
      for (uint32_t K = 0; K != NumInsts && R.ok(); ++K)
        if (!readInstructionInto(Blocks[B], Fixups))
          return false;
    }
    for (const Fixup &Fx : Fixups) {
      if (Fx.Slot >= Slots.size() || !Slots[Fx.Slot])
        return err("phi fixup slot out of range");
      if (Slots[Fx.Slot]->getType() !=
          Fx.I->getOperand(Fx.OperandIndex)->getType())
        return err("phi fixup type mismatch");
      Fx.I->setOperand(Fx.OperandIndex, Slots[Fx.Slot]);
    }
    return R.ok();
  }

  bool readInstructionInto(BasicBlock *BB, std::vector<Fixup> &Fixups);

  Context &Ctx;
  ByteReader R;
  std::unique_ptr<Module> M;
  std::string Diag;
  std::vector<GlobalVariable *> Globals;
  std::vector<Function *> Functions;
  std::vector<Value *> Slots;
  std::vector<BasicBlock *> Blocks;
};

bool Reader::readInstructionInto(BasicBlock *BB, std::vector<Fixup> &Fixups) {
  uint8_t RawKind = R.readU8();
  std::string Name = R.readString();
  if (RawKind <= static_cast<uint8_t>(ValueKind::InstBegin) ||
      RawKind >= static_cast<uint8_t>(ValueKind::InstEnd))
    return err("bad instruction kind");
  ValueKind K = static_cast<ValueKind>(RawKind);

  std::unique_ptr<Instruction> I;
  switch (K) {
  case ValueKind::ICmp: {
    uint8_t P = R.readU8();
    if (P > static_cast<uint8_t>(ICmpPred::UGE))
      return err("bad icmp predicate");
    Value *L = readOperand();
    Value *Rv = readOperand();
    if (!L || !Rv || L->getType() != Rv->getType())
      return err("bad icmp operands");
    I = std::make_unique<ICmpInst>(static_cast<ICmpPred>(P), L, Rv,
                                   Ctx.getI1Ty());
    break;
  }
  case ValueKind::FCmp: {
    uint8_t P = R.readU8();
    if (P > static_cast<uint8_t>(FCmpPred::OGE))
      return err("bad fcmp predicate");
    Value *L = readOperand();
    Value *Rv = readOperand();
    if (!L || !Rv || L->getType() != Rv->getType() ||
        !L->getType()->isFloatingPoint())
      return err("bad fcmp operands");
    I = std::make_unique<FCmpInst>(static_cast<FCmpPred>(P), L, Rv,
                                   Ctx.getI1Ty());
    break;
  }
  case ValueKind::Alloca: {
    Type *ElemTy = readType();
    uint32_t N = R.readU32();
    if (!ElemTy || ElemTy->isVoid())
      return err("bad alloca type");
    I = std::make_unique<AllocaInst>(Ctx.getPtrTy(), ElemTy, N);
    break;
  }
  case ValueKind::Load: {
    Type *Ty = readType();
    Value *P = readOperand();
    if (!Ty || Ty->isVoid() || !P || !P->getType()->isPointer())
      return err("bad load");
    I = std::make_unique<LoadInst>(Ty, P);
    break;
  }
  case ValueKind::PtrAdd: {
    uint32_t ElemSize = R.readU32();
    Value *Base = readOperand();
    Value *Idx = readOperand();
    if (!Base || !Idx || !Base->getType()->isPointer() ||
        !Idx->getType()->isInteger() || Idx->getType()->isI1())
      return err("bad ptradd");
    I = std::make_unique<PtrAddInst>(Base, Idx, ElemSize);
    break;
  }
  case ValueKind::ThreadIdx:
  case ValueKind::BlockIdx:
  case ValueKind::BlockDim:
  case ValueKind::GridDim: {
    uint8_t Dim = R.readU8();
    if (Dim > 2)
      return err("bad geometry dimension");
    I = std::make_unique<GpuIndexInst>(K, Dim, Ctx.getI32Ty());
    break;
  }
  case ValueKind::Barrier:
    I = std::make_unique<BarrierInst>(Ctx.getVoidTy());
    break;
  case ValueKind::Phi: {
    Type *Ty = readType();
    uint32_t N = R.readU32();
    if (!Ty || Ty->isVoid() || (N % 2) != 0 || N > 1u << 16)
      return err("bad phi record");
    auto Phi = std::make_unique<PhiInst>(Ty);
    for (uint32_t Op = 0; Op != N && R.ok(); Op += 2) {
      Value *V = readOperand(&Fixups, Phi.get(), Op, Ty);
      Value *B = readOperand();
      auto *InBB = dyn_cast_if_present<BasicBlock>(B);
      if (!V || !InBB || V->getType() != Ty)
        return err("bad phi incoming");
      Phi->addIncoming(V, InBB);
    }
    I = std::move(Phi);
    break;
  }
  default: {
    if (CastInst::isCastKind(K)) {
      Type *DstTy = readType();
      uint32_t N = R.readU32();
      Value *Src = N == 1 ? readOperand() : nullptr;
      if (!DstTy || !Src)
        return err("bad cast record");
      I = std::make_unique<CastInst>(K, Src, DstTy);
      break;
    }
    uint32_t N = R.readU32();
    if (N > 1u << 16)
      return err("operand count too large");
    std::vector<Value *> Ops;
    for (uint32_t Op = 0; Op != N && R.ok(); ++Op) {
      Value *V = readOperand();
      if (!V)
        return err("bad operand");
      Ops.push_back(V);
    }
    switch (K) {
    case ValueKind::Select:
      if (Ops.size() != 3 || !Ops[0]->getType()->isI1() ||
          Ops[1]->getType() != Ops[2]->getType())
        return err("bad select");
      I = std::make_unique<SelectInst>(Ops[0], Ops[1], Ops[2]);
      break;
    case ValueKind::Store:
      if (Ops.size() != 2 || !Ops[1]->getType()->isPointer())
        return err("bad store");
      I = std::make_unique<StoreInst>(Ops[0], Ops[1], Ctx.getVoidTy());
      break;
    case ValueKind::AtomicAdd:
      if (Ops.size() != 2 || !Ops[0]->getType()->isPointer())
        return err("bad atomicadd");
      I = std::make_unique<AtomicAddInst>(Ops[0], Ops[1]);
      break;
    case ValueKind::Call: {
      if (Ops.empty())
        return err("bad call");
      auto *Callee = dyn_cast<Function>(Ops[0]);
      if (!Callee || Ops.size() - 1 != Callee->getNumArgs())
        return err("bad call target/arity");
      std::vector<Value *> Args(Ops.begin() + 1, Ops.end());
      for (size_t A = 0; A != Args.size(); ++A)
        if (Args[A]->getType() != Callee->getArg(A)->getType())
          return err("call argument type mismatch");
      I = std::make_unique<CallInst>(Callee->getReturnType(), Callee, Args);
      break;
    }
    case ValueKind::Br: {
      auto *Dest = Ops.size() == 1 ? dyn_cast<BasicBlock>(Ops[0]) : nullptr;
      if (!Dest)
        return err("bad br");
      I = std::make_unique<BranchInst>(Dest, Ctx.getVoidTy());
      break;
    }
    case ValueKind::CondBr: {
      if (Ops.size() != 3 || !Ops[0]->getType()->isI1())
        return err("bad condbr");
      auto *T = dyn_cast<BasicBlock>(Ops[1]);
      auto *F = dyn_cast<BasicBlock>(Ops[2]);
      if (!T || !F)
        return err("bad condbr targets");
      I = std::make_unique<BranchInst>(Ops[0], T, F, Ctx.getVoidTy());
      break;
    }
    case ValueKind::Ret:
      if (Ops.size() > 1)
        return err("bad ret");
      I = Ops.empty()
              ? std::make_unique<RetInst>(Ctx.getVoidTy())
              : std::make_unique<RetInst>(Ops[0], Ctx.getVoidTy());
      break;
    default:
      if (BinaryInst::isBinaryKind(K)) {
        if (Ops.size() != 2 || Ops[0]->getType() != Ops[1]->getType())
          return err("bad binary operands");
        I = std::make_unique<BinaryInst>(K, Ops[0], Ops[1]);
        break;
      }
      if (UnaryInst::isUnaryKind(K)) {
        if (Ops.size() != 1)
          return err("bad unary operands");
        I = std::make_unique<UnaryInst>(K, Ops[0]);
        break;
      }
      return err("unhandled instruction kind");
    }
    break;
  }
  }

  if (!R.ok() || !I)
    return err("truncated instruction record");
  I->setName(Name);
  Instruction *Raw = BB->append(std::move(I));
  if (!Raw->getType()->isVoid())
    Slots.push_back(Raw);
  return true;
}

} // namespace

std::vector<uint8_t> proteus::writeBitcode(Module &M) {
  return Writer(M).run();
}

BitcodeReadResult proteus::readBitcode(Context &Ctx,
                                       const std::vector<uint8_t> &Bytes) {
  return Reader(Ctx, Bytes).run();
}
