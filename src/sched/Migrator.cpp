//===- Migrator.cpp - cross-arch kernel + state migration -----------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//

#include "sched/Migrator.h"

#include "support/Trace.h"

using namespace proteus;
using namespace proteus::gpu;
using namespace proteus::sched;

Migrator::Migrator(JitRuntime &Jit, metrics::Registry &Reg)
    : Jit(Jit), Reg(Reg) {}

MigrationResult Migrator::migrate(unsigned SrcIndex, unsigned DstIndex,
                                  const std::string &Symbol, Dim3 Block,
                                  const std::vector<KernelArg> &Args,
                                  Stream *SrcS, Stream *DstS) {
  MigrationResult R;
  if (SrcIndex == DstIndex) {
    R.Error = "migration source and target are the same device";
    return R;
  }
  if (SrcIndex >= Jit.numDevices() || DstIndex >= Jit.numDevices()) {
    R.Error = "migration device index out of range (" +
              std::to_string(Jit.numDevices()) + " device(s) attached)";
    return R;
  }
  trace::Span Sp("sched.migrate", "sched");

  // Phase 1 — drain the source: enqueue the copy-out of every live
  // allocation FIFO on the source stream (behind the in-flight work), then
  // stamp the drain event. One region buffer per allocation; addresses are
  // preserved so target-side pointers remain valid verbatim.
  struct Region {
    DevicePtr Base = 0;
    std::vector<uint8_t> Bytes;
  };
  std::vector<Region> Regions;
  std::vector<std::pair<std::string, DevicePtr>> Symbols;
  Event Drain;
  std::string Phase1Error;
  Jit.withDeviceLocked(SrcIndex, [&](Device &Src) {
    Stream *S = SrcS ? SrcS : &Src.defaultStream();
    for (const auto &[Base, Size] : Src.liveAllocations()) {
      Region Rg;
      Rg.Base = Base;
      Rg.Bytes.resize(Size);
      if (gpuMemcpyDtoHAsync(Src, Rg.Bytes.data(), Base, Size, S) !=
          GpuError::Success) {
        Phase1Error = "migration copy-out failed for allocation at " +
                      std::to_string(Base);
        return;
      }
      Regions.push_back(std::move(Rg));
    }
    Symbols = Src.symbolBindings();
    gpuEventRecord(Src, Drain, S);
  });
  if (!Phase1Error.empty()) {
    R.Error = Phase1Error;
    return R;
  }
  R.DrainTimeSec = Drain.TimeSec;

  // Phase 2 — rebuild on the target: wait for the drain (cross-device
  // event wait; all timelines share one simulated-time coordinate), claim
  // each region at its original address (an identical existing allocation
  // is reused — repeated and round-trip migrations land on their own prior
  // claims), copy the bytes in, and re-bind the symbols before any module
  // load needs them.
  std::string Phase2Error;
  Jit.withDeviceLocked(DstIndex, [&](Device &Dst) {
    Stream *S = DstS ? DstS : &Dst.defaultStream();
    gpuStreamWaitEvent(S, Drain);
    for (Region &Rg : Regions) {
      DevicePtr Base = 0;
      uint64_t Size = 0;
      bool Known = Dst.findAllocation(Rg.Base, &Base, &Size);
      if (Known && (Base != Rg.Base || Size != Rg.Bytes.size())) {
        Phase2Error = "migration target address " + std::to_string(Rg.Base) +
                      " collides with a differently-shaped allocation";
        return;
      }
      if (!Known && !Dst.claimRange(Rg.Base, Rg.Bytes.size())) {
        Phase2Error = "migration target cannot claim range at " +
                      std::to_string(Rg.Base);
        return;
      }
      if (gpuMemcpyHtoDAsync(Dst, Rg.Base, Rg.Bytes.data(), Rg.Bytes.size(),
                             S) != GpuError::Success) {
        Phase2Error = "migration copy-in failed for allocation at " +
                      std::to_string(Rg.Base);
        return;
      }
      R.BytesCopied += Rg.Bytes.size();
      ++R.RegionsCopied;
    }
    for (const auto &[Name, Address] : Symbols) {
      Dst.defineSymbol(Name, Address);
      ++R.SymbolsRebound;
    }
  });
  if (!Phase2Error.empty()) {
    R.Error = Phase2Error;
    return R;
  }

  // Phase 3 — retarget the code onto the target device (compile-or-reuse
  // per the target's arch; symbols are already bound, so symbolic-linkage
  // relocations resolve at load time).
  std::string RetargetError;
  if (Jit.retargetKernel(Symbol, Block, Args, DstIndex,
                         &R.RetargetReusedCache,
                         &RetargetError) != GpuError::Success) {
    R.Error = "migration retarget failed: " + RetargetError;
    return R;
  }

  Reg.counter("sched.migrations").add();
  Reg.counter("sched.migration_bytes").add(R.BytesCopied);
  Reg.counter("sched.migration_regions").add(R.RegionsCopied);
  Reg.counter("sched.migration_symbols").add(R.SymbolsRebound);
  Reg.counter(R.RetargetReusedCache ? "sched.migration_retarget_reused"
                                    : "sched.migration_retarget_compiled")
      .add();
  R.Ok = true;
  return R;
}
