//===- Scheduler.h - heterogeneous placement scheduler ----------*- C++ -*-===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The placement half of the heterogeneous scheduling subsystem: decides,
/// per launch, which device of a mixed-arch pool should run a kernel. Sits
/// in front of JitRuntime::launchKernelOn — callers route launches through
/// Scheduler::launch (or place + launchKernelOn) instead of naming a device
/// themselves. Four modes (PROTEUS_SCHED, warn-don't-coerce):
///
///   * off    — every launch goes to device 0's default stream, byte- and
///              timing-identical to calling launchKernel directly;
///   * static — round-robin across the pool, the uniform-load baseline;
///   * load   — argmin over the per-device load gauge (the lock-free
///              published makespan, Device::loadGaugeNs), so launches route
///              around busy devices;
///   * perf   — load-aware *and* model-aware: each candidate device is
///              scored as ready-time + predicted kernel seconds from the
///              static roofline profile on that device's arch
///              (analysis/Roofline.h), so a kernel lands where it will
///              *finish* first, not merely start first.
///
/// Critical-path slack (analysis/CriticalPath.h) biases placement: when an
/// installed timeline report says a kernel is entirely off the critical
/// path (criticalityOf == 0), perf and load modes place it by ready time
/// alone — an idle-but-slower device absorbs slack work without lengthening
/// the run (counted as sched.placements.slack).
///
/// Thread safety: place()/launch() may be called concurrently. Device load
/// gauges are relaxed atomics published by the streams; the scheduler's own
/// mutable state (round-robin cursors, profiles, the criticality map) is
/// guarded by one internal mutex. The scheduler never touches a device —
/// it only picks one; the launch itself goes through the JIT runtime's
/// per-device locking.
///
//===----------------------------------------------------------------------===//

#ifndef PROTEUS_SCHED_SCHEDULER_H
#define PROTEUS_SCHED_SCHEDULER_H

#include "analysis/CriticalPath.h"
#include "analysis/Roofline.h"
#include "jit/JitRuntime.h"
#include "support/Metrics.h"

#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace proteus {
namespace sched {

/// Placement policy (PROTEUS_SCHED=off|static|perf|load).
enum class SchedMode {
  Off,    ///< pin everything to device 0 (today's behavior)
  Static, ///< round-robin across the pool
  Perf,   ///< predicted-finish-first (roofline + load gauge)
  Load,   ///< emptiest-queue-first (load gauge only)
};

const char *schedModeName(SchedMode M);

struct SchedConfig {
  SchedMode Mode = SchedMode::Off;

  /// Reads PROTEUS_SCHED. Invalid values keep the default and emit a
  /// warning (into \p Warnings when given, else stderr) with a counted
  /// "config.errors" — the same warn-don't-coerce policy as
  /// JitConfig::fromEnvironment.
  static SchedConfig fromEnvironment(std::vector<std::string> *Warnings =
                                         nullptr);
};

/// A placement decision: the device to launch on and the stream within it
/// (null = the device's default stream with legacy barrier semantics —
/// only Off mode returns null; the other modes spread across streams).
struct Placement {
  unsigned DeviceIndex = 0;
  gpu::Stream *S = nullptr;
};

/// Decides placements over the devices attached to one JitRuntime.
///
/// Owns a metrics::Registry with the placement accounting:
///   sched.placements.dev<N> — launches placed on device N;
///   sched.placements.slack — placements biased by critical-path slack.
class Scheduler {
public:
  Scheduler(JitRuntime &Jit, SchedConfig Config);

  SchedMode mode() const { return Config.Mode; }

  /// Supplies the static roofline profile for \p Symbol — the input of
  /// perf-mode prediction (programs obtain it from computeStaticProfile on
  /// their kernel IR). Without a profile, perf mode degrades to load mode
  /// for that kernel.
  void noteKernelProfile(const std::string &Symbol,
                         const pir::analysis::KernelStaticProfile &P);

  /// Installs a timeline criticality report (analysis::analyzeTimeline over
  /// a previous run's trace); kernels it marks slack-only are placed by
  /// ready time alone. Replaces any previous report.
  void setCriticalPathReport(const analysis::CriticalPathReport &R);

  /// Picks the device + stream for one launch of \p Symbol. Deterministic
  /// given the same gauge readings (ties break toward the lower device
  /// index / stream id).
  Placement place(const std::string &Symbol, gpu::Dim3 Grid, gpu::Dim3 Block);

  /// place() + launchKernelOn in one step. \p ArgsFor maps the chosen
  /// device index to that device's argument values (buffers live per
  /// device); \p PlacedOn, when non-null, reports the decision.
  gpu::GpuError launch(const std::string &Symbol, gpu::Dim3 Grid,
                       gpu::Dim3 Block,
                       const std::function<std::vector<gpu::KernelArg>(
                           unsigned DeviceIndex)> &ArgsFor,
                       std::string *Error = nullptr,
                       unsigned *PlacedOn = nullptr);

  /// The placement accounting registry (sched.placements.*).
  metrics::Registry &registry() { return Reg; }

  /// Predicted execution seconds of \p Symbol's grid on device \p Device,
  /// from the noted static profile and the device arch's roofline; negative
  /// when no profile was noted. Exposed so tests and benches can assert the
  /// perf-mode ranking instead of hard-coding device indices.
  double predictedSeconds(const std::string &Symbol, unsigned Device,
                          gpu::Dim3 Grid, gpu::Dim3 Block) const;

private:
  JitRuntime &Jit;
  const SchedConfig Config;
  metrics::Registry Reg;
  std::vector<metrics::Counter *> PlacementCounters; // one per device
  metrics::Counter *SlackPlacements = nullptr;

  mutable std::mutex Mutex; // guards everything below
  std::map<std::string, pir::analysis::KernelStaticProfile> Profiles;
  /// Kernel name -> criticality fraction from the installed report.
  std::map<std::string, double> Criticality;
  uint64_t NextDevice = 0;              // static-mode cursor
  std::vector<uint64_t> NextStream;     // per-device stream cursor
};

} // namespace sched
} // namespace proteus

#endif // PROTEUS_SCHED_SCHEDULER_H
