//===- Scheduler.cpp - heterogeneous placement scheduler ------------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//

#include "sched/Scheduler.h"

#include <cstdio>
#include <cstdlib>
#include <limits>

using namespace proteus;
using namespace proteus::sched;

const char *proteus::sched::schedModeName(SchedMode M) {
  switch (M) {
  case SchedMode::Off:
    return "off";
  case SchedMode::Static:
    return "static";
  case SchedMode::Perf:
    return "perf";
  case SchedMode::Load:
    return "load";
  }
  return "off";
}

namespace {

void emitConfigWarning(std::vector<std::string> *Warnings, std::string Msg) {
  metrics::processRegistry().counter("config.errors").add();
  if (Warnings)
    Warnings->push_back(std::move(Msg));
  else
    std::fprintf(stderr, "proteus: warning: %s\n", Msg.c_str());
}

} // namespace

SchedConfig SchedConfig::fromEnvironment(std::vector<std::string> *Warnings) {
  SchedConfig C;
  if (const char *S = std::getenv("PROTEUS_SCHED")) {
    std::string V = S;
    if (V == "off")
      C.Mode = SchedMode::Off;
    else if (V == "static")
      C.Mode = SchedMode::Static;
    else if (V == "perf")
      C.Mode = SchedMode::Perf;
    else if (V == "load")
      C.Mode = SchedMode::Load;
    else
      emitConfigWarning(Warnings, "ignoring invalid PROTEUS_SCHED value '" +
                                      V + "' (expected off|static|perf|load)");
  }
  return C;
}

Scheduler::Scheduler(JitRuntime &Jit, SchedConfig Config)
    : Jit(Jit), Config(Config) {
  SlackPlacements = &Reg.counter("sched.placements.slack");
  for (unsigned D = 0; D != Jit.numDevices(); ++D)
    PlacementCounters.push_back(
        &Reg.counter("sched.placements.dev" + std::to_string(D)));
  NextStream.resize(Jit.numDevices(), 0);
}

void Scheduler::noteKernelProfile(
    const std::string &Symbol, const pir::analysis::KernelStaticProfile &P) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Profiles[Symbol] = P;
}

void Scheduler::setCriticalPathReport(const analysis::CriticalPathReport &R) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Criticality.clear();
  for (const analysis::NameCriticality &N : R.ByName)
    Criticality[N.Name] = N.CriticalityFraction;
}

namespace {

/// Predicted kernel seconds for one profile on one target: the grid's total
/// FLOPs over the roofline-attainable rate, falling back to pure bandwidth
/// time for a kernel that moves bytes without computing. Deterministic and
/// cheap — a ranking heuristic, not a simulation.
double predictForTarget(const pir::analysis::KernelStaticProfile &P,
                        const TargetInfo &T, uint64_t TotalThreads) {
  pir::analysis::RooflineReport R =
      pir::analysis::classifyProfile(P, T, nullptr, TotalThreads);
  double Threads = static_cast<double>(TotalThreads ? TotalThreads : 1);
  if (P.Flops > 0 && R.AttainableGFlops > 0)
    return P.Flops * Threads / (R.AttainableGFlops * 1e9);
  double Bytes = P.bytesMoved(T.WaveSize) * Threads;
  if (Bytes > 0 && R.Model.PeakBandwidthGBs > 0)
    return Bytes / (R.Model.PeakBandwidthGBs * 1e9);
  return 0.0;
}

} // namespace

double Scheduler::predictedSeconds(const std::string &Symbol, unsigned Device,
                                   gpu::Dim3 Grid, gpu::Dim3 Block) const {
  pir::analysis::KernelStaticProfile P;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    auto It = Profiles.find(Symbol);
    if (It == Profiles.end())
      return -1.0;
    P = It->second;
  }
  return predictForTarget(P, Jit.device(Device).target(),
                          Grid.count() * Block.count());
}

Placement Scheduler::place(const std::string &Symbol, gpu::Dim3 Grid,
                           gpu::Dim3 Block) {
  const unsigned N = Jit.numDevices();
  std::lock_guard<std::mutex> Lock(Mutex);
  // Devices attached after construction get their cursor and counter here.
  while (PlacementCounters.size() < N)
    PlacementCounters.push_back(&Reg.counter(
        "sched.placements.dev" + std::to_string(PlacementCounters.size())));
  if (NextStream.size() < N)
    NextStream.resize(N, 0);

  if (Config.Mode == SchedMode::Off || N == 1) {
    // Off pins to the primary device's default stream — indistinguishable
    // from launchKernel, which is the compatibility contract.
    PlacementCounters[0]->add();
    return Placement{0, nullptr};
  }

  unsigned Chosen = 0;
  if (Config.Mode == SchedMode::Static) {
    Chosen = static_cast<unsigned>(NextDevice++ % N);
  } else {
    // Slack bias: a kernel every span of which had slack cannot lengthen
    // the run, so ready time alone decides and the model is ignored — the
    // idle (possibly slower) device absorbs it.
    auto CIt = Criticality.find(Symbol);
    const bool SlackOnly = CIt != Criticality.end() && CIt->second == 0.0;
    pir::analysis::KernelStaticProfile P;
    bool HaveProfile = false;
    if (Config.Mode == SchedMode::Perf && !SlackOnly) {
      auto PIt = Profiles.find(Symbol);
      if (PIt != Profiles.end()) {
        P = PIt->second;
        HaveProfile = true;
      }
    }
    double Best = std::numeric_limits<double>::infinity();
    for (unsigned D = 0; D != N; ++D) {
      double Score = static_cast<double>(Jit.device(D).loadGaugeNs()) * 1e-9;
      if (HaveProfile)
        Score += predictForTarget(P, Jit.device(D).target(),
                                  Grid.count() * Block.count());
      if (Score < Best) {
        Best = Score;
        Chosen = D;
      }
    }
    if (SlackOnly)
      SlackPlacements->add();
  }

  gpu::Device &Dev = Jit.device(Chosen);
  gpu::Stream *S =
      Dev.stream(static_cast<unsigned>(NextStream[Chosen]++ % Dev.numStreams()));
  PlacementCounters[Chosen]->add();
  return Placement{Chosen, S};
}

gpu::GpuError Scheduler::launch(
    const std::string &Symbol, gpu::Dim3 Grid, gpu::Dim3 Block,
    const std::function<std::vector<gpu::KernelArg>(unsigned)> &ArgsFor,
    std::string *Error, unsigned *PlacedOn) {
  Placement P = place(Symbol, Grid, Block);
  if (PlacedOn)
    *PlacedOn = P.DeviceIndex;
  return Jit.launchKernelOn(P.DeviceIndex, Symbol, Grid, Block,
                            ArgsFor(P.DeviceIndex), P.S, Error);
}
