//===- Migrator.h - cross-arch kernel + state migration ---------*- C++ -*-===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The migration half of the heterogeneous scheduling subsystem: moves a
/// kernel's execution — its compiled code and the device state it reaches —
/// from one device of the pool to another, across architectures, at a
/// stream boundary. The protocol (DESIGN §2k):
///
///   1. *Drain the source.* Copy every live allocation out on the source
///      stream (async DtoH, so the copies queue FIFO behind the in-flight
///      work), then record the drain event: its stamp is the simulated time
///      at which the source's tail — including the copy-out — completes.
///   2. *Rebuild on the target.* The target stream first waits on the drain
///      event (cross-device event waits are legal: one global simulated-time
///      coordinate), then each allocation is claimed at its *original*
///      address on the target and copied in (async HtoD) — pointers held in
///      kernel arguments and device globals stay valid verbatim, exactly as
///      capture replay rebuilds an address map. Symbol bindings are
///      re-defined on the target before any code loads, so symbolic-linkage
///      relocations resolve to the migrated globals.
///   3. *Retarget the code.* JitRuntime::retargetKernel compiles the
///      specialization for the target arch from the cached parse-once
///      module index — or serves a warm final-tier cache object — and loads
///      it, hot-swapping any previous mapping. Subsequent launches of the
///      shape on the target device run with zero compiles and byte-identical
///      results (the timeline tail simply replays there).
///
/// Device access goes through JitRuntime::withDeviceLocked — one device
/// lock at a time, source first, then target, never both — so migrations
/// are safe against concurrent launches (the TSan migration-storm lane
/// exercises exactly this).
///
/// Accounting on the caller-supplied registry: sched.migrations,
/// sched.migration_bytes, sched.migration_regions, sched.migration_symbols,
/// and mirrors of the runtime's retarget outcome (sched.migration_retarget_
/// compiled / _reused).
///
//===----------------------------------------------------------------------===//

#ifndef PROTEUS_SCHED_MIGRATOR_H
#define PROTEUS_SCHED_MIGRATOR_H

#include "jit/JitRuntime.h"
#include "support/Metrics.h"

#include <string>

namespace proteus {
namespace sched {

/// Outcome of one migration.
struct MigrationResult {
  bool Ok = false;
  std::string Error;
  uint64_t BytesCopied = 0;    ///< payload moved device-to-device
  uint64_t RegionsCopied = 0;  ///< live allocations migrated
  uint64_t SymbolsRebound = 0; ///< device globals re-defined on the target
  /// Whether the retarget was served from a warm cache entry (local or
  /// fleet) instead of compiling.
  bool RetargetReusedCache = false;
  /// The drain stamp: simulated time at which the source stream's FIFO —
  /// including the migration copy-out — completes.
  double DrainTimeSec = 0.0;
};

/// Executes migrations between devices attached to one JitRuntime.
class Migrator {
public:
  /// \p Reg receives the sched.migration* counters (typically
  /// Scheduler::registry(), so placement and migration accounting land in
  /// one place).
  Migrator(JitRuntime &Jit, metrics::Registry &Reg);

  /// Migrates the specialization that (\p Symbol, \p Block, \p Args)
  /// resolve to — and all reachable device state — from \p SrcIndex to
  /// \p DstIndex. \p SrcS / \p DstS select the streams forming the
  /// boundary; null means the respective device's default stream. The
  /// caller resumes launching on the target device afterwards.
  MigrationResult migrate(unsigned SrcIndex, unsigned DstIndex,
                          const std::string &Symbol, gpu::Dim3 Block,
                          const std::vector<gpu::KernelArg> &Args,
                          gpu::Stream *SrcS = nullptr,
                          gpu::Stream *DstS = nullptr);

private:
  JitRuntime &Jit;
  metrics::Registry &Reg;
};

} // namespace sched
} // namespace proteus

#endif // PROTEUS_SCHED_MIGRATOR_H
