//===- LocalBackend.h - sharded on-disk cache backend -----------*- C++ -*-===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The single-node storage backend: framed blobs as files in a directory
/// tree, consistent-hash sharded across K shard subdirectories (K = 1 keeps
/// every file at the top level, byte-compatible with the pre-fleet cache).
/// A size budget triggers LRU/LFU eviction that accounts code objects
/// (cache-jit-<hex>.o) and tuning decisions (cache-tune-<hex>) alike — the
/// fix for decision files growing a "size-limited" cache without bound.
///
/// Cross-process compile claims are O_CREAT|O_EXCL lock files
/// (cache-lock-<hex>, holding the owner pid): the winner compiles, everyone
/// else sees InFlightElsewhere and waits for the publish. A crashed owner
/// leaves a stale lock; claims older than Options::StaleLockMs are stolen,
/// so recovery costs one bounded wait and exactly one recompile.
///
/// Eviction never corrupts a reader: files are replaced by atomic rename
/// and removed by unlink, so a process mid-read keeps its (complete) bytes
/// under POSIX semantics — an evicted entry is re-published on the next
/// miss, never half-served.
///
//===----------------------------------------------------------------------===//

#ifndef PROTEUS_FLEET_LOCALBACKEND_H
#define PROTEUS_FLEET_LOCALBACKEND_H

#include "fleet/CacheBackend.h"
#include "fleet/ShardIndex.h"

#include <atomic>
#include <mutex>

namespace proteus {
namespace fleet {

struct LocalBackendOptions {
  /// Shard directories under the root (PROTEUS_CACHE_SHARDS). 1 = flat.
  uint32_t Shards = 1;
  /// Total on-disk byte budget across shards, code + tune files
  /// (PROTEUS_CACHE_BUDGET); 0 = unlimited.
  uint64_t BudgetBytes = 0;
  EvictPolicy Policy = EvictPolicy::LRU;
  /// Frame-frequency decoder for LFU victim selection (null → LRU order).
  FrequencyExtractor FreqOf;
  /// Age after which an unreleased compile claim is considered abandoned
  /// (owner crashed) and may be stolen.
  unsigned StaleLockMs = 2000;
};

class LocalDirBackend final : public CacheBackend {
public:
  LocalDirBackend(std::string RootDir, LocalBackendOptions Options);

  std::optional<Blob> lookup(BlobKind Kind, uint64_t Key) override;
  bool publish(BlobKind Kind, uint64_t Key,
               const std::vector<uint8_t> &Bytes) override;
  bool remove(BlobKind Kind, uint64_t Key) override;
  void clear() override;
  uint64_t totalBytes() override;
  CompileClaim beginCompile(uint64_t Key) override;
  void endCompile(uint64_t Key) override;
  std::string describe() const override;
  BackendStats stats() const override;

  const std::string &rootDir() const { return Root; }

  /// Path of the entry file for (\p Kind, \p Key) — exposed for tests and
  /// the crash-injection battery; production callers go through the
  /// CacheBackend interface only.
  std::string pathFor(BlobKind Kind, uint64_t Key) const;

private:
  std::string shardDir(uint64_t Key) const;
  std::string lockPathFor(uint64_t Key) const;
  /// Every directory that may hold entries (root + shard subdirectories).
  std::vector<std::string> allDirs() const;
  void enforceBudget();

  const std::string Root;
  const LocalBackendOptions Options;
  const ShardIndex Index;

  /// Serializes eviction scans (lookup/publish themselves are lock-free
  /// with respect to each other — the filesystem provides atomicity).
  std::mutex EvictMutex;

  std::atomic<uint64_t> NLookups{0}, NHits{0}, NMisses{0}, NPublishes{0},
      NPublishBytes{0}, NEvictions{0}, NDedupHits{0};
};

} // namespace fleet
} // namespace proteus

#endif // PROTEUS_FLEET_LOCALBACKEND_H
