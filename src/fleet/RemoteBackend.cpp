//===- RemoteBackend.cpp - shared cache service client --------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//

#include "fleet/RemoteBackend.h"

#include "support/Metrics.h"

using namespace proteus;
using namespace proteus::fleet;

namespace {

metrics::Counter &fleetCounter(const char *Name) {
  return metrics::processRegistry().counter(Name);
}

} // namespace

RemoteCacheBackend::RemoteCacheBackend(RemoteBackendOptions OptionsIn)
    : Options(std::move(OptionsIn)) {}

RemoteCacheBackend::~RemoteCacheBackend() {
  std::lock_guard<std::mutex> Lock(ConnMutex);
  dropConnectionLocked();
}

LocalDirBackend &RemoteCacheBackend::fallback() {
  // Lazily constructed: a healthy fleet never touches the local directory
  // from the client side (the daemon owns it).
  std::lock_guard<std::mutex> Lock(ConnMutex);
  if (!FallbackBackend)
    FallbackBackend = std::make_unique<LocalDirBackend>(Options.FallbackDir,
                                                        Options.Fallback);
  return *FallbackBackend;
}

bool RemoteCacheBackend::ensureConnectedLocked() {
  if (Fd >= 0)
    return true;
  if (DaemonDown.load(std::memory_order_relaxed))
    return false;
  Fd = net::connectUnix(Options.SocketPath, Options.TimeoutMs);
  if (Fd < 0) {
    DaemonDown.store(true, std::memory_order_relaxed);
    return false;
  }
  return true;
}

void RemoteCacheBackend::dropConnectionLocked() {
  net::closeFd(Fd);
  Fd = -1;
}

std::optional<wire::Response> RemoteCacheBackend::rpc(const wire::Request &R) {
  std::lock_guard<std::mutex> Lock(ConnMutex);
  if (!ensureConnectedLocked())
    return std::nullopt;
  if (!net::writeFrame(Fd, wire::encodeRequest(R))) {
    dropConnectionLocked();
    DaemonDown.store(true, std::memory_order_relaxed);
    return std::nullopt;
  }
  auto Payload = net::readFrame(Fd);
  if (!Payload) {
    dropConnectionLocked();
    DaemonDown.store(true, std::memory_order_relaxed);
    return std::nullopt;
  }
  auto Resp = wire::decodeResponse(*Payload);
  if (!Resp) {
    dropConnectionLocked();
    DaemonDown.store(true, std::memory_order_relaxed);
    return std::nullopt;
  }
  return Resp;
}

std::optional<Blob> RemoteCacheBackend::lookup(BlobKind Kind, uint64_t Key) {
  NLookups.fetch_add(1, std::memory_order_relaxed);
  metrics::ScopedTimer T(
      metrics::processRegistry().timer("fleetcache.lookup_seconds"));

  if (DaemonDown.load(std::memory_order_relaxed)) {
    NFallbackOps.fetch_add(1, std::memory_order_relaxed);
    fleetCounter("fleetcache.fallback_ops").add();
    auto B = fallback().lookup(Kind, Key);
    if (B) {
      NHits.fetch_add(1, std::memory_order_relaxed);
      fleetCounter("fleetcache.hits").add();
    } else {
      NMisses.fetch_add(1, std::memory_order_relaxed);
      fleetCounter("fleetcache.misses").add();
    }
    return B;
  }

  // Group-commit: queue the lookup; the first waiter becomes the flusher
  // and carries everyone queued behind it in one Batch round-trip.
  auto P = std::make_shared<PendingLookup>();
  P->Kind = Kind;
  P->Key = Key;
  bool IAmFlusher;
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    Pending.push_back(P);
    IAmFlusher = !FlusherActive;
    if (IAmFlusher)
      FlusherActive = true;
  }

  if (IAmFlusher) {
    for (;;) {
      std::vector<std::shared_ptr<PendingLookup>> Window;
      {
        std::lock_guard<std::mutex> Lock(QueueMutex);
        if (Pending.empty()) {
          FlusherActive = false;
          break;
        }
        Window.assign(Pending.begin(), Pending.end());
        Pending.clear();
      }

      wire::Request Req;
      Req.Kind = wire::Op::Batch;
      Req.BatchKeys.reserve(Window.size());
      for (const auto &W : Window)
        Req.BatchKeys.emplace_back(static_cast<uint8_t>(W->Kind), W->Key);
      if (Window.size() > 1) {
        NBatchedLookups.fetch_add(1, std::memory_order_relaxed);
        fleetCounter("fleetcache.batched_lookups").add();
      }

      auto Resp = rpc(Req);
      {
        std::lock_guard<std::mutex> Lock(QueueMutex);
        for (size_t I = 0; I != Window.size(); ++I) {
          PendingLookup &W = *Window[I];
          if (Resp && Resp->Code == wire::Status::Ok &&
              I < Resp->BatchResults.size() &&
              Resp->BatchResults[I].first == wire::Status::Hit) {
            W.Hit = true;
            W.Bytes = std::move(Resp->BatchResults[I].second);
          }
          W.Done = true;
        }
      }
      QueueCv.notify_all();
      if (!Resp)
        break; // transport died; DaemonDown is set, stop flushing
    }
    // If the transport died with requests still queued, fail them so their
    // threads retry on the fallback instead of blocking forever.
    if (DaemonDown.load(std::memory_order_relaxed)) {
      std::lock_guard<std::mutex> Lock(QueueMutex);
      FlusherActive = false;
      for (const auto &W : Pending)
        W->Done = true;
      Pending.clear();
      QueueCv.notify_all();
    }
  } else {
    std::unique_lock<std::mutex> Lock(QueueMutex);
    QueueCv.wait(Lock, [&] { return P->Done; });
  }

  if (!P->Done || (!P->Hit && DaemonDown.load(std::memory_order_relaxed))) {
    // The daemon vanished under this lookup: answer from the fallback.
    NFallbackOps.fetch_add(1, std::memory_order_relaxed);
    fleetCounter("fleetcache.fallback_ops").add();
    auto B = fallback().lookup(Kind, Key);
    if (B) {
      NHits.fetch_add(1, std::memory_order_relaxed);
      fleetCounter("fleetcache.hits").add();
    } else {
      NMisses.fetch_add(1, std::memory_order_relaxed);
      fleetCounter("fleetcache.misses").add();
    }
    return B;
  }

  if (P->Hit) {
    NHits.fetch_add(1, std::memory_order_relaxed);
    fleetCounter("fleetcache.hits").add();
    Blob B;
    B.Bytes = std::move(P->Bytes);
    B.Remote = true;
    return B;
  }
  NMisses.fetch_add(1, std::memory_order_relaxed);
  fleetCounter("fleetcache.misses").add();
  return std::nullopt;
}

bool RemoteCacheBackend::publish(BlobKind Kind, uint64_t Key,
                                 const std::vector<uint8_t> &Bytes) {
  NPublishes.fetch_add(1, std::memory_order_relaxed);
  NPublishBytes.fetch_add(Bytes.size(), std::memory_order_relaxed);
  fleetCounter("fleetcache.publish_bytes").add(Bytes.size());
  if (!DaemonDown.load(std::memory_order_relaxed)) {
    wire::Request Req;
    Req.Kind = wire::Op::Publish;
    Req.Blob = Kind;
    Req.Key = Key;
    Req.Bytes = Bytes;
    auto Resp = rpc(Req);
    if (Resp)
      return Resp->Code == wire::Status::Ok;
  }
  NFallbackOps.fetch_add(1, std::memory_order_relaxed);
  fleetCounter("fleetcache.fallback_ops").add();
  return fallback().publish(Kind, Key, Bytes);
}

bool RemoteCacheBackend::remove(BlobKind Kind, uint64_t Key) {
  if (!DaemonDown.load(std::memory_order_relaxed)) {
    wire::Request Req;
    Req.Kind = wire::Op::Remove;
    Req.Blob = Kind;
    Req.Key = Key;
    auto Resp = rpc(Req);
    if (Resp)
      return Resp->Code == wire::Status::Ok;
  }
  NFallbackOps.fetch_add(1, std::memory_order_relaxed);
  return fallback().remove(Kind, Key);
}

void RemoteCacheBackend::clear() {
  if (!DaemonDown.load(std::memory_order_relaxed)) {
    wire::Request Req;
    Req.Kind = wire::Op::Clear;
    if (rpc(Req))
      return;
  }
  NFallbackOps.fetch_add(1, std::memory_order_relaxed);
  fallback().clear();
}

uint64_t RemoteCacheBackend::totalBytes() {
  if (!DaemonDown.load(std::memory_order_relaxed)) {
    wire::Request Req;
    Req.Kind = wire::Op::Stats;
    auto Resp = rpc(Req);
    if (Resp && Resp->Code == wire::Status::Ok)
      for (const auto &[Name, Value] : Resp->Stats)
        if (Name == "total_bytes")
          return Value;
  }
  NFallbackOps.fetch_add(1, std::memory_order_relaxed);
  return fallback().totalBytes();
}

CompileClaim RemoteCacheBackend::beginCompile(uint64_t Key) {
  if (!DaemonDown.load(std::memory_order_relaxed)) {
    wire::Request Req;
    Req.Kind = wire::Op::Acquire;
    Req.Key = Key;
    auto Resp = rpc(Req);
    if (Resp) {
      if (Resp->Code == wire::Status::Owner)
        return CompileClaim::Owner;
      NDedupHits.fetch_add(1, std::memory_order_relaxed);
      fleetCounter("fleetcache.remote_dedup").add();
      return CompileClaim::InFlightElsewhere;
    }
  }
  NFallbackOps.fetch_add(1, std::memory_order_relaxed);
  fleetCounter("fleetcache.fallback_ops").add();
  CompileClaim C = fallback().beginCompile(Key);
  if (C == CompileClaim::InFlightElsewhere)
    fleetCounter("fleetcache.remote_dedup").add();
  return C;
}

void RemoteCacheBackend::endCompile(uint64_t Key) {
  if (!DaemonDown.load(std::memory_order_relaxed)) {
    wire::Request Req;
    Req.Kind = wire::Op::Release;
    Req.Key = Key;
    if (rpc(Req))
      return;
  }
  fallback().endCompile(Key);
}

std::string RemoteCacheBackend::describe() const {
  std::string D = "socket:" + Options.SocketPath;
  if (DaemonDown.load(std::memory_order_relaxed))
    D += " (fallback:" + Options.FallbackDir + ")";
  return D;
}

BackendStats RemoteCacheBackend::stats() const {
  BackendStats S;
  S.Lookups = NLookups.load(std::memory_order_relaxed);
  S.Hits = NHits.load(std::memory_order_relaxed);
  S.Misses = NMisses.load(std::memory_order_relaxed);
  S.Publishes = NPublishes.load(std::memory_order_relaxed);
  S.PublishBytes = NPublishBytes.load(std::memory_order_relaxed);
  S.DedupHits = NDedupHits.load(std::memory_order_relaxed);
  S.FallbackOps = NFallbackOps.load(std::memory_order_relaxed);
  S.BatchedLookups = NBatchedLookups.load(std::memory_order_relaxed);
  return S;
}

std::vector<std::pair<std::string, uint64_t>>
RemoteCacheBackend::remoteStats() {
  if (DaemonDown.load(std::memory_order_relaxed))
    return {};
  wire::Request Req;
  Req.Kind = wire::Op::Stats;
  auto Resp = rpc(Req);
  if (!Resp || Resp->Code != wire::Status::Ok)
    return {};
  return Resp->Stats;
}
