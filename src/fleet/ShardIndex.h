//===- ShardIndex.h - consistent-hash key sharding --------------*- C++ -*-===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Consistent-hash mapping of the 64-bit cache key space onto K shard
/// directories. Each shard contributes V virtual points on a hash ring; a
/// key is owned by the first point clockwise from its own hash. Growing or
/// shrinking K therefore remaps only the keys between the moved points
/// (~1/K of the space per shard change) instead of reshuffling everything —
/// the property that lets a fleet bump PROTEUS_CACHE_SHARDS without
/// invalidating a warm cache wholesale.
///
//===----------------------------------------------------------------------===//

#ifndef PROTEUS_FLEET_SHARDINDEX_H
#define PROTEUS_FLEET_SHARDINDEX_H

#include <cstdint>
#include <string>
#include <vector>

namespace proteus {
namespace fleet {

class ShardIndex {
public:
  /// \p Shards in [1, 256]; values outside are clamped. \p VirtualPoints
  /// per shard smooths the distribution (default 64).
  explicit ShardIndex(uint32_t Shards, uint32_t VirtualPoints = 64);

  uint32_t shardCount() const { return Shards; }

  /// Shard ordinal in [0, shardCount()) owning \p Key. Deterministic and
  /// stable across processes and runs.
  uint32_t shardFor(uint64_t Key) const;

  /// Conventional shard subdirectory name ("shard-00" ... "shard-NN").
  static std::string shardDirName(uint32_t Shard);

private:
  struct Point {
    uint64_t Hash;
    uint32_t Shard;
  };
  uint32_t Shards;
  /// Ring points sorted by hash.
  std::vector<Point> Ring;
};

} // namespace fleet
} // namespace proteus

#endif // PROTEUS_FLEET_SHARDINDEX_H
