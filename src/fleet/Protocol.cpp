//===- Protocol.cpp - fleet cache wire protocol ---------------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//

#include "fleet/Protocol.h"

#include "support/BinaryStream.h"

#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace proteus;
using namespace proteus::fleet;

//===----------------------------------------------------------------------===//
// Wire codec
//===----------------------------------------------------------------------===//

std::vector<uint8_t> wire::encodeRequest(const Request &R) {
  ByteWriter W;
  W.writeU8(static_cast<uint8_t>(R.Kind));
  switch (R.Kind) {
  case Op::Ping:
  case Op::Clear:
  case Op::Stats:
    break;
  case Op::Lookup:
  case Op::Remove:
    W.writeU8(static_cast<uint8_t>(R.Blob));
    W.writeU64(R.Key);
    break;
  case Op::Publish:
    W.writeU8(static_cast<uint8_t>(R.Blob));
    W.writeU64(R.Key);
    W.writeBytes(R.Bytes);
    break;
  case Op::Acquire:
  case Op::Release:
    W.writeU64(R.Key);
    break;
  case Op::Batch:
    W.writeU32(static_cast<uint32_t>(R.BatchKeys.size()));
    for (const auto &[Kind, Key] : R.BatchKeys) {
      W.writeU8(Kind);
      W.writeU64(Key);
    }
    break;
  }
  return W.take();
}

std::optional<wire::Request>
wire::decodeRequest(const std::vector<uint8_t> &Payload) {
  ByteReader Rd(Payload);
  Request R;
  uint8_t OpByte = Rd.readU8();
  if (!Rd.ok() || OpByte < static_cast<uint8_t>(Op::Ping) ||
      OpByte > static_cast<uint8_t>(Op::Batch))
    return std::nullopt;
  R.Kind = static_cast<Op>(OpByte);
  switch (R.Kind) {
  case Op::Ping:
  case Op::Clear:
  case Op::Stats:
    break;
  case Op::Lookup:
  case Op::Remove: {
    uint8_t B = Rd.readU8();
    if (B > static_cast<uint8_t>(BlobKind::Tune))
      return std::nullopt;
    R.Blob = static_cast<BlobKind>(B);
    R.Key = Rd.readU64();
    break;
  }
  case Op::Publish: {
    uint8_t B = Rd.readU8();
    if (B > static_cast<uint8_t>(BlobKind::Tune))
      return std::nullopt;
    R.Blob = static_cast<BlobKind>(B);
    R.Key = Rd.readU64();
    R.Bytes = Rd.readBytes();
    break;
  }
  case Op::Acquire:
  case Op::Release:
    R.Key = Rd.readU64();
    break;
  case Op::Batch: {
    uint32_t N = Rd.readU32();
    if (!Rd.ok() || N > MaxFrameBytes / 9)
      return std::nullopt;
    R.BatchKeys.reserve(N);
    for (uint32_t I = 0; I != N; ++I) {
      uint8_t B = Rd.readU8();
      uint64_t K = Rd.readU64();
      if (B > static_cast<uint8_t>(BlobKind::Tune))
        return std::nullopt;
      R.BatchKeys.emplace_back(B, K);
    }
    break;
  }
  }
  if (!Rd.ok() || Rd.remaining() != 0)
    return std::nullopt;
  return R;
}

std::vector<uint8_t> wire::encodeResponse(const Response &R) {
  ByteWriter W;
  W.writeU8(static_cast<uint8_t>(R.Code));
  if (R.Code == Status::Hit) {
    W.writeBytes(R.Bytes);
    return W.take();
  }
  if (R.Code == Status::Error) {
    W.writeString(R.Message);
    return W.take();
  }
  if (R.Code == Status::Ok && !R.Stats.empty()) {
    W.writeU8(1); // stats body present
    W.writeU32(static_cast<uint32_t>(R.Stats.size()));
    for (const auto &[Name, Value] : R.Stats) {
      W.writeString(Name);
      W.writeU64(Value);
    }
    return W.take();
  }
  if (R.Code == Status::Ok && !R.BatchResults.empty()) {
    W.writeU8(2); // batch body present
    W.writeU32(static_cast<uint32_t>(R.BatchResults.size()));
    for (const auto &[S, Bytes] : R.BatchResults) {
      W.writeU8(static_cast<uint8_t>(S));
      if (S == Status::Hit)
        W.writeBytes(Bytes);
    }
    return W.take();
  }
  if (R.Code == Status::Ok)
    W.writeU8(0); // empty Ok
  return W.take();
}

std::optional<wire::Response>
wire::decodeResponse(const std::vector<uint8_t> &Payload) {
  ByteReader Rd(Payload);
  Response R;
  uint8_t StatusByte = Rd.readU8();
  if (!Rd.ok() || StatusByte > static_cast<uint8_t>(Status::Error))
    return std::nullopt;
  R.Code = static_cast<Status>(StatusByte);
  switch (R.Code) {
  case Status::Hit:
    R.Bytes = Rd.readBytes();
    break;
  case Status::Error:
    R.Message = Rd.readString();
    break;
  case Status::Ok: {
    uint8_t Body = Rd.readU8();
    if (Body == 1) {
      uint32_t N = Rd.readU32();
      if (!Rd.ok() || N > MaxFrameBytes / 12)
        return std::nullopt;
      for (uint32_t I = 0; I != N; ++I) {
        std::string Name = Rd.readString();
        uint64_t Value = Rd.readU64();
        R.Stats.emplace_back(std::move(Name), Value);
      }
    } else if (Body == 2) {
      uint32_t N = Rd.readU32();
      if (!Rd.ok() || N > MaxFrameBytes)
        return std::nullopt;
      for (uint32_t I = 0; I != N; ++I) {
        uint8_t S = Rd.readU8();
        if (S > static_cast<uint8_t>(Status::Error))
          return std::nullopt;
        std::vector<uint8_t> Bytes;
        if (static_cast<Status>(S) == Status::Hit)
          Bytes = Rd.readBytes();
        R.BatchResults.emplace_back(static_cast<Status>(S), std::move(Bytes));
      }
    } else if (Body != 0) {
      return std::nullopt;
    }
    break;
  }
  case Status::Miss:
  case Status::Owner:
  case Status::InFlight:
    break;
  }
  if (!Rd.ok() || Rd.remaining() != 0)
    return std::nullopt;
  return R;
}

//===----------------------------------------------------------------------===//
// Unix-domain socket transport
//===----------------------------------------------------------------------===//

namespace {

bool fillSockAddr(const std::string &Path, sockaddr_un &Addr) {
  if (Path.size() + 1 > sizeof(Addr.sun_path))
    return false; // path too long for sun_path
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  return true;
}

bool writeAll(int Fd, const uint8_t *Data, size_t Size) {
  size_t Off = 0;
  while (Off < Size) {
    ssize_t N = ::send(Fd, Data + Off, Size - Off, MSG_NOSIGNAL);
    if (N <= 0) {
      if (N < 0 && errno == EINTR)
        continue;
      return false;
    }
    Off += static_cast<size_t>(N);
  }
  return true;
}

bool readAll(int Fd, uint8_t *Data, size_t Size) {
  size_t Off = 0;
  while (Off < Size) {
    ssize_t N = ::recv(Fd, Data + Off, Size - Off, 0);
    if (N <= 0) {
      if (N < 0 && errno == EINTR)
        continue;
      return false;
    }
    Off += static_cast<size_t>(N);
  }
  return true;
}

} // namespace

int net::listenUnix(const std::string &Path) {
  sockaddr_un Addr;
  if (!fillSockAddr(Path, Addr))
    return -1;
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return -1;
  ::unlink(Path.c_str()); // stale socket from a previous daemon run
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0 ||
      ::listen(Fd, 64) < 0) {
    ::close(Fd);
    return -1;
  }
  return Fd;
}

int net::connectUnix(const std::string &Path, unsigned TimeoutMs) {
  sockaddr_un Addr;
  if (!fillSockAddr(Path, Addr))
    return -1;
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return -1;
  timeval Tv;
  Tv.tv_sec = TimeoutMs / 1000;
  Tv.tv_usec = (TimeoutMs % 1000) * 1000;
  ::setsockopt(Fd, SOL_SOCKET, SO_RCVTIMEO, &Tv, sizeof(Tv));
  ::setsockopt(Fd, SOL_SOCKET, SO_SNDTIMEO, &Tv, sizeof(Tv));
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    ::close(Fd);
    return -1;
  }
  return Fd;
}

bool net::writeFrame(int Fd, const std::vector<uint8_t> &Payload) {
  if (Payload.size() > wire::MaxFrameBytes)
    return false;
  uint8_t Len[4];
  uint32_t N = static_cast<uint32_t>(Payload.size());
  for (int I = 0; I < 4; ++I)
    Len[I] = static_cast<uint8_t>(N >> (8 * I));
  return writeAll(Fd, Len, sizeof(Len)) &&
         (Payload.empty() || writeAll(Fd, Payload.data(), Payload.size()));
}

std::optional<std::vector<uint8_t>> net::readFrame(int Fd) {
  uint8_t Len[4];
  if (!readAll(Fd, Len, sizeof(Len)))
    return std::nullopt;
  uint32_t N = 0;
  for (int I = 0; I < 4; ++I)
    N |= static_cast<uint32_t>(Len[I]) << (8 * I);
  if (N > wire::MaxFrameBytes)
    return std::nullopt;
  std::vector<uint8_t> Payload(N);
  if (N && !readAll(Fd, Payload.data(), N))
    return std::nullopt;
  return Payload;
}

void net::closeFd(int Fd) {
  if (Fd >= 0)
    ::close(Fd);
}
