//===- CacheBackend.cpp - transport-agnostic cache storage ----------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//

#include "fleet/CacheBackend.h"

using namespace proteus;
using namespace proteus::fleet;

CacheBackend::~CacheBackend() = default;

const char *proteus::fleet::blobKindName(BlobKind K) {
  switch (K) {
  case BlobKind::Code:
    return "code";
  case BlobKind::Tune:
    return "tune";
  }
  return "unknown";
}
