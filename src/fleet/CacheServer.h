//===- CacheServer.h - shared cache service ---------------------*- C++ -*-===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The node-level shared cache service behind tools/proteus-cached (and
/// runnable in-process by tests). One daemon serves every JIT process on a
/// node: a unix-domain socket accepting the fleet/Protocol.h framing, backed
/// by a LocalDirBackend (sharded storage + budget eviction), with a
/// fleet-wide in-flight compile table.
///
/// Threading: one accept loop, one reader thread per connection, and Batch
/// sub-lookups fanned across a shared ThreadPool so one client's 64-wide
/// warm-start batch does not serialize behind another's. Responses per
/// connection stay in request order (the reader thread writes them).
///
/// In-flight dedup: Acquire(key) answers Owner to exactly one connection at
/// a time; every other Acquire answers InFlight until the owner Releases or
/// publishes. Claims die with their connection — a client crash mid-compile
/// releases all its claims automatically, so the fleet recovers with one
/// bounded re-acquire instead of waiting on a corpse.
///
//===----------------------------------------------------------------------===//

#ifndef PROTEUS_FLEET_CACHESERVER_H
#define PROTEUS_FLEET_CACHESERVER_H

#include "fleet/LocalBackend.h"

#include <atomic>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

namespace proteus {

class ThreadPool;

namespace fleet {

struct CacheServerOptions {
  std::string SocketPath;
  std::string Dir;
  uint32_t Shards = 4;
  uint64_t BudgetBytes = 0;
  EvictPolicy Policy = EvictPolicy::LRU;
  FrequencyExtractor FreqOf;
  unsigned Workers = 4;
};

class CacheServer {
public:
  /// Binds the socket and starts the accept loop. Returns null when the
  /// socket cannot be bound (path too long, address in use by a live
  /// daemon, ...).
  static std::unique_ptr<CacheServer> start(CacheServerOptions Options);

  ~CacheServer();

  /// Stops accepting, closes every connection, joins all threads. Idempotent.
  void stop();

  const std::string &socketPath() const { return Options.SocketPath; }
  LocalDirBackend &backend() { return *Backend; }

  /// Connections accepted over the server's lifetime.
  uint64_t connectionsAccepted() const {
    return NConnections.load(std::memory_order_relaxed);
  }
  /// Requests served (a Batch counts once plus once per sub-lookup).
  uint64_t requestsServed() const {
    return NRequests.load(std::memory_order_relaxed);
  }

private:
  explicit CacheServer(CacheServerOptions OptionsIn);

  void acceptLoop();
  void serveConnection(int Fd);
  /// Handles one decoded request; ConnId scopes compile claims.
  struct wireResponse;
  void releaseClaimsOf(uint64_t ConnId);

  CacheServerOptions Options;
  std::unique_ptr<LocalDirBackend> Backend;
  std::unique_ptr<ThreadPool> Pool;

  int ListenFd = -1;
  std::thread AcceptThread;
  std::atomic<bool> Stopping{false};

  std::mutex ConnMutex;
  std::vector<std::thread> ConnThreads;
  std::vector<int> ConnFds;

  /// key -> owning connection id. The daemon-side half of the fleet-wide
  /// compile dedup (the lock-file half covers daemon-less processes).
  std::mutex ClaimMutex;
  std::unordered_map<uint64_t, uint64_t> Claims;

  std::atomic<uint64_t> NConnections{0};
  std::atomic<uint64_t> NRequests{0};
  std::atomic<uint64_t> NextConnId{1};
};

} // namespace fleet
} // namespace proteus

#endif // PROTEUS_FLEET_CACHESERVER_H
