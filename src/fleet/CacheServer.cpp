//===- CacheServer.cpp - shared cache service -----------------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//

#include "fleet/CacheServer.h"

#include "fleet/Protocol.h"
#include "support/ThreadPool.h"

#include <condition_variable>

#include <sys/socket.h>
#include <unistd.h>

using namespace proteus;
using namespace proteus::fleet;

CacheServer::CacheServer(CacheServerOptions OptionsIn)
    : Options(std::move(OptionsIn)) {
  LocalBackendOptions BO;
  BO.Shards = Options.Shards;
  BO.BudgetBytes = Options.BudgetBytes;
  BO.Policy = Options.Policy;
  BO.FreqOf = Options.FreqOf;
  Backend = std::make_unique<LocalDirBackend>(Options.Dir, BO);
  Pool = std::make_unique<ThreadPool>(Options.Workers);
}

std::unique_ptr<CacheServer> CacheServer::start(CacheServerOptions Options) {
  std::unique_ptr<CacheServer> S(new CacheServer(std::move(Options)));
  S->ListenFd = net::listenUnix(S->Options.SocketPath);
  if (S->ListenFd < 0)
    return nullptr;
  S->AcceptThread = std::thread([Srv = S.get()] { Srv->acceptLoop(); });
  return S;
}

CacheServer::~CacheServer() { stop(); }

void CacheServer::stop() {
  if (Stopping.exchange(true))
    return;
  if (ListenFd >= 0)
    ::shutdown(ListenFd, SHUT_RDWR);
  {
    std::lock_guard<std::mutex> Lock(ConnMutex);
    for (int Fd : ConnFds)
      ::shutdown(Fd, SHUT_RDWR);
  }
  if (AcceptThread.joinable())
    AcceptThread.join();
  std::vector<std::thread> Threads;
  {
    std::lock_guard<std::mutex> Lock(ConnMutex);
    Threads.swap(ConnThreads);
  }
  for (std::thread &T : Threads)
    if (T.joinable())
      T.join();
  net::closeFd(ListenFd);
  ListenFd = -1;
  ::unlink(Options.SocketPath.c_str());
  Pool->shutdown();
}

void CacheServer::acceptLoop() {
  for (;;) {
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0) {
      if (Stopping.load())
        return;
      if (errno == EINTR)
        continue;
      return;
    }
    if (Stopping.load()) {
      ::close(Fd);
      return;
    }
    NConnections.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> Lock(ConnMutex);
    ConnFds.push_back(Fd);
    ConnThreads.emplace_back([this, Fd] { serveConnection(Fd); });
  }
}

void CacheServer::releaseClaimsOf(uint64_t ConnId) {
  std::vector<uint64_t> Owned;
  {
    std::lock_guard<std::mutex> Lock(ClaimMutex);
    for (auto It = Claims.begin(); It != Claims.end();) {
      if (It->second == ConnId) {
        Owned.push_back(It->first);
        It = Claims.erase(It);
      } else {
        ++It;
      }
    }
  }
  // Drop the on-disk half of each claim too, so lock-file-only processes
  // sharing the directory stop seeing the dead client as in-flight.
  for (uint64_t Key : Owned)
    Backend->endCompile(Key);
}

void CacheServer::serveConnection(int Fd) {
  const uint64_t ConnId = NextConnId.fetch_add(1, std::memory_order_relaxed);
  while (!Stopping.load()) {
    auto Payload = net::readFrame(Fd);
    if (!Payload)
      break; // client disconnected (or sent garbage framing)
    NRequests.fetch_add(1, std::memory_order_relaxed);

    wire::Response Resp;
    auto Req = wire::decodeRequest(*Payload);
    if (!Req) {
      Resp.Code = wire::Status::Error;
      Resp.Message = "malformed request";
      if (!net::writeFrame(Fd, wire::encodeResponse(Resp)))
        break;
      continue;
    }

    switch (Req->Kind) {
    case wire::Op::Ping:
      Resp.Code = wire::Status::Ok;
      break;

    case wire::Op::Lookup: {
      auto Blob = Backend->lookup(Req->Blob, Req->Key);
      if (Blob) {
        Resp.Code = wire::Status::Hit;
        Resp.Bytes = std::move(Blob->Bytes);
      } else {
        Resp.Code = wire::Status::Miss;
      }
      break;
    }

    case wire::Op::Publish: {
      bool Ok = Backend->publish(Req->Blob, Req->Key, Req->Bytes);
      Resp.Code = Ok ? wire::Status::Ok : wire::Status::Error;
      if (!Ok)
        Resp.Message = "publish failed";
      // An owner's publish completes its compile: release the claim so
      // waiters' next lookup-and-acquire round sees the entry, not the
      // in-flight marker.
      if (Ok && Req->Blob == BlobKind::Code) {
        bool Owned = false;
        {
          std::lock_guard<std::mutex> Lock(ClaimMutex);
          auto It = Claims.find(Req->Key);
          if (It != Claims.end() && It->second == ConnId) {
            Claims.erase(It);
            Owned = true;
          }
        }
        if (Owned)
          Backend->endCompile(Req->Key);
      }
      break;
    }

    case wire::Op::Acquire: {
      std::unique_lock<std::mutex> Lock(ClaimMutex);
      auto It = Claims.find(Req->Key);
      if (It != Claims.end()) {
        Resp.Code = It->second == ConnId ? wire::Status::Owner
                                         : wire::Status::InFlight;
        break;
      }
      // Take the on-disk lock as well: processes running without the
      // daemon on the same directory honor the same claim.
      Lock.unlock();
      CompileClaim C = Backend->beginCompile(Req->Key);
      Lock.lock();
      if (C == CompileClaim::Owner && !Claims.count(Req->Key)) {
        Claims[Req->Key] = ConnId;
        Resp.Code = wire::Status::Owner;
      } else {
        if (C == CompileClaim::Owner)
          Backend->endCompile(Req->Key); // raced another connection
        Resp.Code = wire::Status::InFlight;
      }
      break;
    }

    case wire::Op::Release: {
      bool Owned = false;
      {
        std::lock_guard<std::mutex> Lock(ClaimMutex);
        auto It = Claims.find(Req->Key);
        if (It != Claims.end() && It->second == ConnId) {
          Claims.erase(It);
          Owned = true;
        }
      }
      if (Owned)
        Backend->endCompile(Req->Key);
      Resp.Code = wire::Status::Ok;
      break;
    }

    case wire::Op::Remove:
      Resp.Code = Backend->remove(Req->Blob, Req->Key) ? wire::Status::Ok
                                                       : wire::Status::Error;
      break;

    case wire::Op::Clear:
      Backend->clear();
      Resp.Code = wire::Status::Ok;
      break;

    case wire::Op::Stats: {
      BackendStats S = Backend->stats();
      Resp.Code = wire::Status::Ok;
      Resp.Stats = {
          {"lookups", S.Lookups},
          {"hits", S.Hits},
          {"misses", S.Misses},
          {"publishes", S.Publishes},
          {"publish_bytes", S.PublishBytes},
          {"evictions", S.Evictions},
          {"dedup_hits", S.DedupHits},
          {"connections", connectionsAccepted()},
          {"requests", requestsServed()},
          {"total_bytes", Backend->totalBytes()},
      };
      break;
    }

    case wire::Op::Batch: {
      // Fan the sub-lookups across the shared pool; answers keep request
      // order because the response frame is assembled after the last one.
      const size_t N = Req->BatchKeys.size();
      NRequests.fetch_add(N, std::memory_order_relaxed);
      std::vector<std::pair<wire::Status, std::vector<uint8_t>>> Results(N);
      std::mutex DoneMutex;
      std::condition_variable DoneCv;
      size_t Pending = N;
      for (size_t I = 0; I != N; ++I) {
        auto Work = [&, I] {
          auto [KindByte, Key] = Req->BatchKeys[I];
          auto Blob = Backend->lookup(static_cast<BlobKind>(KindByte), Key);
          if (Blob)
            Results[I] = {wire::Status::Hit, std::move(Blob->Bytes)};
          else
            Results[I] = {wire::Status::Miss, {}};
          std::lock_guard<std::mutex> Lock(DoneMutex);
          if (--Pending == 0)
            DoneCv.notify_one();
        };
        if (!Pool->enqueue(Work))
          Work(); // pool is shutting down — serve inline
      }
      {
        std::unique_lock<std::mutex> Lock(DoneMutex);
        DoneCv.wait(Lock, [&] { return Pending == 0; });
      }
      Resp.Code = wire::Status::Ok;
      Resp.BatchResults = std::move(Results);
      break;
    }
    }

    if (!net::writeFrame(Fd, wire::encodeResponse(Resp)))
      break;
  }
  releaseClaimsOf(ConnId);
  net::closeFd(Fd);
}
