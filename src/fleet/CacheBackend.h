//===- CacheBackend.h - transport-agnostic cache storage --------*- C++ -*-===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The storage interface behind the fleet-scale code cache. CodeCache keeps
/// the entry framing (integrity header, tier tag, fingerprint) and the
/// in-memory first level; everything persistent goes through a CacheBackend,
/// which stores opaque framed blobs keyed by (kind, 64-bit key):
///
///   * LocalDirBackend — the single-node fast path: a directory tree,
///     consistent-hash sharded across K shard subdirectories, with LFU /
///     size-budget eviction that covers cache-jit-*.o objects and
///     cache-tune-* decision files alike, and lock-file based cross-process
///     compile claims.
///   * RemoteCacheBackend — a client of the shared cache service
///     (tools/proteus-cached or an in-process fleet::CacheServer) speaking
///     the compact length-prefixed protocol of fleet/Protocol.h, with
///     request batching and a local-directory fallback for daemon outages.
///
/// The compile-claim trio (beginCompile / endCompile, plus CodeCache's
/// waitRemoteCompile polling loop on top) is the fleet-wide in-flight dedup:
/// exactly one process compiles a given specialization hash at a time;
/// later requesters wait for the publish or inherit the claim when the
/// owner dies (stale lock / closed connection).
///
/// Backends are thread-safe; every operation may be called concurrently
/// from launch threads and async compile workers. Fleet-level accounting
/// (fleetcache.hits / misses / remote_dedup / publish_bytes /
/// lookup_seconds) lands on metrics::processRegistry(), because one process
/// may host several CodeCache instances sharing one node-level service.
///
//===----------------------------------------------------------------------===//

#ifndef PROTEUS_FLEET_CACHEBACKEND_H
#define PROTEUS_FLEET_CACHEBACKEND_H

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace proteus {
namespace fleet {

/// What a blob stores. Kinds live in disjoint key spaces and map to the
/// historical on-disk names (cache-jit-<hex>.o / cache-tune-<hex>), so a
/// pre-fleet cache directory is readable as a 1-shard local backend.
enum class BlobKind : uint8_t {
  Code = 0, ///< framed compiled-object entry (cache-jit-<hex>.o)
  Tune = 1, ///< framed tuning-decision record (cache-tune-<hex>)
};

const char *blobKindName(BlobKind K);

/// A lookup result: the framed bytes plus the tier that served them, so
/// CodeCache can count a daemon-served hit (RemoteHits) apart from a local
/// disk read (PersistentHits) — the two cost very different latencies and
/// BENCH_fleet.json asserts the tier it actually exercised.
struct Blob {
  std::vector<uint8_t> Bytes;
  bool Remote = false;
};

/// Outcome of a fleet-wide compile claim.
enum class CompileClaim : uint8_t {
  Owner,             ///< this caller must compile and publish
  InFlightElsewhere, ///< another thread/process/daemon client is compiling
};

/// Backend-level accounting (monotonic; snapshot by value).
struct BackendStats {
  uint64_t Lookups = 0;
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Publishes = 0;
  uint64_t PublishBytes = 0;
  /// Files evicted by the size budget (code and tune entries alike).
  uint64_t Evictions = 0;
  /// beginCompile calls that found the key already claimed fleet-wide.
  uint64_t DedupHits = 0;
  /// Operations served by the local fallback because the remote service
  /// was unreachable (always 0 on the local backend).
  uint64_t FallbackOps = 0;
  /// Lookup batches that carried more than one request in one round-trip.
  uint64_t BatchedLookups = 0;
};

/// Abstract persistent blob store. All methods are thread-safe.
class CacheBackend {
public:
  virtual ~CacheBackend();

  /// Returns the framed bytes for (\p Kind, \p Key), or nullopt on a miss.
  /// A hit refreshes the entry's recency (LRU touch).
  virtual std::optional<Blob> lookup(BlobKind Kind, uint64_t Key) = 0;

  /// Stores \p Bytes under (\p Kind, \p Key), replacing any existing entry,
  /// crash-safely (write-to-temp + atomic-rename — a reader never observes
  /// a partial entry). May evict other entries to satisfy the size budget.
  virtual bool publish(BlobKind Kind, uint64_t Key,
                       const std::vector<uint8_t> &Bytes) = 0;

  /// Deletes the entry for (\p Kind, \p Key) if present (corrupt-entry
  /// cleanup). Returns true when the entry no longer exists.
  virtual bool remove(BlobKind Kind, uint64_t Key) = 0;

  /// Removes every cache entry (code, tune, stale temp/lock leftovers).
  virtual void clear() = 0;

  /// Total bytes currently held by cache entries (code + tune, across all
  /// shards) — the number the size budget constrains.
  virtual uint64_t totalBytes() = 0;

  /// Claims the fleet-wide right to compile \p Key. Owner means this caller
  /// compiles; InFlightElsewhere means someone else is already on it and
  /// the caller should wait for the publish (CodeCache::waitRemoteCompile).
  virtual CompileClaim beginCompile(uint64_t Key) = 0;

  /// Releases a claim obtained from beginCompile (idempotent; called on
  /// every compile exit path, success or failure).
  virtual void endCompile(uint64_t Key) = 0;

  /// Human-readable description for logs ("dir:<path> shards=K" or
  /// "socket:<path>").
  virtual std::string describe() const = 0;

  /// Snapshot of the backend counters.
  virtual BackendStats stats() const = 0;
};

/// Eviction order under a size budget (mirrors the jit-level
/// EvictionPolicy without depending on jit headers).
enum class EvictPolicy : uint8_t {
  LRU, ///< oldest write/touch time first
  LFU, ///< least-frequently-executed first (frequency via FreqOf), ties by
       ///< recency; entries without a frequency (tune records) order by
       ///< recency among themselves
};

/// Extracts an execution-frequency word from a framed blob for LFU
/// eviction, or 0 when the frame carries none. CodeCache supplies a
/// decoder for its entry header; backends never parse frames themselves.
using FrequencyExtractor =
    std::function<uint64_t(BlobKind, const std::vector<uint8_t> &)>;

} // namespace fleet
} // namespace proteus

#endif // PROTEUS_FLEET_CACHEBACKEND_H
