//===- Protocol.h - fleet cache wire protocol -------------------*- C++ -*-===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compact binary protocol between JIT client processes and the shared
/// cache service (tools/proteus-cached). Framing: every message is a u32
/// little-endian payload length followed by the payload; payloads larger
/// than MaxFrameBytes are rejected (a garbage length prefix must not make
/// the daemon allocate gigabytes). Payload layout (all little-endian, via
/// ByteWriter/ByteReader):
///
///   request  := op:u8 body
///     Ping                   —
///     Lookup                 kind:u8 key:u64
///     Publish                kind:u8 key:u64 bytes:[u32 n]
///     Acquire                key:u64          (fleet-wide compile claim)
///     Release                key:u64
///     Remove                 kind:u8 key:u64
///     Clear                  —
///     Stats                  —
///     Batch                  count:u32 { kind:u8 key:u64 }*   (lookups)
///
///   response := status:u8 body
///     Ok / Error             —           (Error carries message:string)
///     Hit                    bytes:[u32 n]
///     Miss                   —
///     Owner / InFlight       —           (Acquire outcomes)
///     Ok (Stats)             count:u32 { name:string value:u64 }*
///     Ok (Batch)             count:u32 { status:u8 [bytes if Hit] }*
///
/// One connection, one client thread-of-control: requests are answered in
/// order. The batching layer in RemoteCacheBackend coalesces concurrent
/// lookups from many launch threads into single Batch frames, which is what
/// amortizes the round-trip under fleet-wide warm-start storms.
///
//===----------------------------------------------------------------------===//

#ifndef PROTEUS_FLEET_PROTOCOL_H
#define PROTEUS_FLEET_PROTOCOL_H

#include "fleet/CacheBackend.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace proteus {
namespace fleet {

namespace wire {

enum class Op : uint8_t {
  Ping = 1,
  Lookup = 2,
  Publish = 3,
  Acquire = 4,
  Release = 5,
  Remove = 6,
  Clear = 7,
  Stats = 8,
  Batch = 9,
};

enum class Status : uint8_t {
  Ok = 0,
  Hit = 1,
  Miss = 2,
  Owner = 3,
  InFlight = 4,
  Error = 5,
};

/// Upper bound for one frame's payload. Large enough for any realistic
/// compiled object (the biggest entries in the bench corpus are well under
/// 1 MiB); small enough that a corrupted length prefix cannot drive an
/// allocation storm.
constexpr uint32_t MaxFrameBytes = 64u << 20;

/// A decoded request.
struct Request {
  Op Kind = Op::Ping;
  BlobKind Blob = BlobKind::Code;
  uint64_t Key = 0;
  std::vector<uint8_t> Bytes;                          // Publish payload
  std::vector<std::pair<uint8_t, uint64_t>> BatchKeys; // Batch lookups
};

/// A decoded response.
struct Response {
  Status Code = Status::Ok;
  std::vector<uint8_t> Bytes;                      // Hit payload
  std::string Message;                             // Error detail
  std::vector<std::pair<std::string, uint64_t>> Stats;
  /// Per-lookup results of a Batch (status + payload when Hit).
  std::vector<std::pair<Status, std::vector<uint8_t>>> BatchResults;
};

std::vector<uint8_t> encodeRequest(const Request &R);
std::optional<Request> decodeRequest(const std::vector<uint8_t> &Payload);

std::vector<uint8_t> encodeResponse(const Response &R);
std::optional<Response> decodeResponse(const std::vector<uint8_t> &Payload);

} // namespace wire

namespace net {

/// Creates, binds, and listens on a unix-domain socket at \p Path (removing
/// any stale socket file first). Returns the listening fd or -1.
int listenUnix(const std::string &Path);

/// Connects to the unix-domain socket at \p Path with a bounded timeout.
/// Returns the connected fd or -1.
int connectUnix(const std::string &Path, unsigned TimeoutMs = 1000);

/// Writes one length-prefixed frame. Returns false on any short write or
/// peer reset (SIGPIPE is suppressed).
bool writeFrame(int Fd, const std::vector<uint8_t> &Payload);

/// Reads one length-prefixed frame. Returns std::nullopt on EOF, a
/// malformed length, or a payload exceeding wire::MaxFrameBytes.
std::optional<std::vector<uint8_t>> readFrame(int Fd);

void closeFd(int Fd);

} // namespace net

} // namespace fleet
} // namespace proteus

#endif // PROTEUS_FLEET_PROTOCOL_H
