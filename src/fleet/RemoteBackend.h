//===- RemoteBackend.h - shared cache service client ------------*- C++ -*-===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CacheBackend speaking the fleet protocol to a shared cache service
/// (tools/proteus-cached), with two properties the single-process backends
/// don't need:
///
///   * Request batching. Concurrent lookups from many launch threads are
///     group-committed: the first thread to arrive becomes the flusher,
///     drains every queued lookup into one Batch frame, and distributes the
///     answers. A K-thread warm-start storm costs O(1) round-trips per
///     flush window instead of K — the amortization BENCH_fleet.json's
///     latency gate measures.
///
///   * Fallback. When the daemon is unreachable (never started, crashed
///     mid-publish), operations divert to an embedded LocalDirBackend over
///     the same cache directory — sticky, counted in stats().FallbackOps.
///     The JIT never blocks on a dead service; it degrades to the exact
///     pre-fleet behavior.
///
/// Fleet-level accounting lands on metrics::processRegistry():
/// fleetcache.hits / fleetcache.misses / fleetcache.remote_dedup /
/// fleetcache.publish_bytes / fleetcache.fallback_ops and the
/// fleetcache.lookup_seconds timer.
///
//===----------------------------------------------------------------------===//

#ifndef PROTEUS_FLEET_REMOTEBACKEND_H
#define PROTEUS_FLEET_REMOTEBACKEND_H

#include "fleet/LocalBackend.h"
#include "fleet/Protocol.h"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>

namespace proteus {
namespace fleet {

struct RemoteBackendOptions {
  std::string SocketPath;
  /// Directory for the embedded fallback backend (the process's cache dir).
  std::string FallbackDir;
  LocalBackendOptions Fallback;
  /// Per-RPC socket timeout.
  unsigned TimeoutMs = 2000;
};

class RemoteCacheBackend final : public CacheBackend {
public:
  explicit RemoteCacheBackend(RemoteBackendOptions Options);
  ~RemoteCacheBackend() override;

  std::optional<Blob> lookup(BlobKind Kind, uint64_t Key) override;
  bool publish(BlobKind Kind, uint64_t Key,
               const std::vector<uint8_t> &Bytes) override;
  bool remove(BlobKind Kind, uint64_t Key) override;
  void clear() override;
  uint64_t totalBytes() override;
  CompileClaim beginCompile(uint64_t Key) override;
  void endCompile(uint64_t Key) override;
  std::string describe() const override;
  BackendStats stats() const override;

  /// True while the daemon answered the most recent RPC (false once the
  /// backend has diverted to the local fallback).
  bool connected() const { return !DaemonDown.load(std::memory_order_relaxed); }

  /// Stats RPC passthrough (daemon-side counters), empty when unreachable.
  std::vector<std::pair<std::string, uint64_t>> remoteStats();

private:
  /// One queued lookup awaiting the next batch flush.
  struct PendingLookup {
    BlobKind Kind;
    uint64_t Key;
    bool Done = false;
    bool Hit = false;
    std::vector<uint8_t> Bytes;
  };

  /// Sends one request and reads its response over the shared connection.
  /// Returns std::nullopt on transport failure (and marks the daemon down —
  /// subsequent operations divert to the fallback).
  std::optional<wire::Response> rpc(const wire::Request &R);

  bool ensureConnectedLocked();
  void dropConnectionLocked();

  LocalDirBackend &fallback();

  RemoteBackendOptions Options;
  std::unique_ptr<LocalDirBackend> FallbackBackend;

  /// Serializes use of the connection (one request/response in flight).
  std::mutex ConnMutex;
  int Fd = -1;

  /// Group-commit lookup combiner.
  std::mutex QueueMutex;
  std::condition_variable QueueCv;
  std::deque<std::shared_ptr<PendingLookup>> Pending;
  bool FlusherActive = false;

  std::atomic<bool> DaemonDown{false};

  std::atomic<uint64_t> NLookups{0}, NHits{0}, NMisses{0}, NPublishes{0},
      NPublishBytes{0}, NDedupHits{0}, NFallbackOps{0}, NBatchedLookups{0};
};

} // namespace fleet
} // namespace proteus

#endif // PROTEUS_FLEET_REMOTEBACKEND_H
