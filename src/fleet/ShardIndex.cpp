//===- ShardIndex.cpp - consistent-hash key sharding ------------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//

#include "fleet/ShardIndex.h"

#include "support/Hashing.h"
#include "support/StringUtils.h"

#include <algorithm>

using namespace proteus;
using namespace proteus::fleet;

ShardIndex::ShardIndex(uint32_t ShardsIn, uint32_t VirtualPoints)
    : Shards(std::min<uint32_t>(std::max<uint32_t>(ShardsIn, 1), 256)) {
  if (VirtualPoints == 0)
    VirtualPoints = 1;
  Ring.reserve(static_cast<size_t>(Shards) * VirtualPoints);
  for (uint32_t S = 0; S != Shards; ++S)
    for (uint32_t V = 0; V != VirtualPoints; ++V) {
      FNV1aHash H;
      H.update(std::string_view("proteus-shard"));
      H.update(S);
      H.update(V);
      Ring.push_back(Point{H.digest(), S});
    }
  std::sort(Ring.begin(), Ring.end(), [](const Point &A, const Point &B) {
    return A.Hash < B.Hash || (A.Hash == B.Hash && A.Shard < B.Shard);
  });
}

uint32_t ShardIndex::shardFor(uint64_t Key) const {
  if (Shards == 1)
    return 0;
  // Re-mix the key so consecutive cache hashes spread over the ring even if
  // the key generator clusters them.
  uint64_t H = hashCombine(0x9e3779b97f4a7c15ULL, Key);
  auto It = std::lower_bound(Ring.begin(), Ring.end(), H,
                             [](const Point &P, uint64_t V) {
                               return P.Hash < V;
                             });
  if (It == Ring.end())
    It = Ring.begin(); // wrap around the ring
  return It->Shard;
}

std::string ShardIndex::shardDirName(uint32_t Shard) {
  return formatString("shard-%02u", Shard);
}
