//===- LocalBackend.cpp - sharded on-disk cache backend -------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//

#include "fleet/LocalBackend.h"

#include "support/FileSystem.h"
#include "support/Hashing.h"
#include "support/StringUtils.h"

#include <algorithm>

#include <unistd.h>

using namespace proteus;
using namespace proteus::fleet;

namespace {

constexpr char CodePrefix[] = "cache-jit-";
constexpr char CodeSuffix[] = ".o";
constexpr char TunePrefix[] = "cache-tune-";
constexpr char LockPrefix[] = "cache-lock-";

std::string entryName(BlobKind Kind, uint64_t Key) {
  if (Kind == BlobKind::Code)
    return CodePrefix + hashToHex(Key) + CodeSuffix;
  return TunePrefix + hashToHex(Key);
}

bool isEntryName(const std::string &Name) {
  return startsWith(Name, CodePrefix) || startsWith(Name, TunePrefix);
}

} // namespace

LocalDirBackend::LocalDirBackend(std::string RootDir,
                                 LocalBackendOptions OptionsIn)
    : Root(std::move(RootDir)), Options(OptionsIn), Index(OptionsIn.Shards) {
  fs::createDirectories(Root);
  if (Index.shardCount() > 1)
    for (uint32_t S = 0; S != Index.shardCount(); ++S)
      fs::createDirectories(Root + "/" + ShardIndex::shardDirName(S));
}

std::string LocalDirBackend::shardDir(uint64_t Key) const {
  if (Index.shardCount() == 1)
    return Root;
  return Root + "/" + ShardIndex::shardDirName(Index.shardFor(Key));
}

std::string LocalDirBackend::pathFor(BlobKind Kind, uint64_t Key) const {
  return shardDir(Key) + "/" + entryName(Kind, Key);
}

std::string LocalDirBackend::lockPathFor(uint64_t Key) const {
  return shardDir(Key) + "/" + LockPrefix + hashToHex(Key);
}

std::vector<std::string> LocalDirBackend::allDirs() const {
  std::vector<std::string> Dirs{Root};
  if (Index.shardCount() > 1)
    for (uint32_t S = 0; S != Index.shardCount(); ++S)
      Dirs.push_back(Root + "/" + ShardIndex::shardDirName(S));
  return Dirs;
}

std::optional<Blob> LocalDirBackend::lookup(BlobKind Kind, uint64_t Key) {
  NLookups.fetch_add(1, std::memory_order_relaxed);
  std::string Path = pathFor(Kind, Key);
  auto Bytes = fs::readFile(Path);
  if (!Bytes) {
    NMisses.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  NHits.fetch_add(1, std::memory_order_relaxed);
  fs::touchFile(Path); // LRU recency refresh
  Blob B;
  B.Bytes = std::move(*Bytes);
  B.Remote = false;
  return B;
}

bool LocalDirBackend::publish(BlobKind Kind, uint64_t Key,
                              const std::vector<uint8_t> &Bytes) {
  if (!fs::writeFileAtomic(pathFor(Kind, Key), Bytes))
    return false;
  NPublishes.fetch_add(1, std::memory_order_relaxed);
  NPublishBytes.fetch_add(Bytes.size(), std::memory_order_relaxed);
  enforceBudget();
  return true;
}

bool LocalDirBackend::remove(BlobKind Kind, uint64_t Key) {
  return fs::removeFile(pathFor(Kind, Key));
}

void LocalDirBackend::clear() {
  for (const std::string &Dir : allDirs())
    for (const std::string &Name : fs::listFiles(Dir))
      if (isEntryName(Name) || startsWith(Name, LockPrefix) ||
          Name.find(".tmp-") != std::string::npos)
        fs::removeFile(Dir + "/" + Name);
}

uint64_t LocalDirBackend::totalBytes() {
  uint64_t Total = 0;
  for (const std::string &Dir : allDirs())
    for (const fs::FileInfo &F : fs::listFilesWithInfo(Dir))
      if (isEntryName(F.Name))
        Total += F.Bytes;
  return Total;
}

CompileClaim LocalDirBackend::beginCompile(uint64_t Key) {
  std::string Lock = lockPathFor(Key);
  // The lock body records the owner pid — purely diagnostic; ownership is
  // the file's existence.
  std::string Pid = std::to_string(::getpid());
  std::vector<uint8_t> Body(Pid.begin(), Pid.end());
  if (fs::createFileExclusive(Lock, Body))
    return CompileClaim::Owner;
  // Claimed already. Steal it only if the holder looks dead (lock older
  // than the stale threshold — a live compile keeps finishing and releases
  // well within it, or keeps the wait loop in waitRemoteCompile spinning).
  auto AgeNs = fs::fileAgeNs(Lock);
  if (AgeNs && *AgeNs > int64_t(Options.StaleLockMs) * 1000000) {
    fs::removeFile(Lock);
    if (fs::createFileExclusive(Lock, Body))
      return CompileClaim::Owner;
  }
  NDedupHits.fetch_add(1, std::memory_order_relaxed);
  return CompileClaim::InFlightElsewhere;
}

void LocalDirBackend::endCompile(uint64_t Key) {
  fs::removeFile(lockPathFor(Key));
}

std::string LocalDirBackend::describe() const {
  return "dir:" + Root + " shards=" + std::to_string(Index.shardCount());
}

BackendStats LocalDirBackend::stats() const {
  BackendStats S;
  S.Lookups = NLookups.load(std::memory_order_relaxed);
  S.Hits = NHits.load(std::memory_order_relaxed);
  S.Misses = NMisses.load(std::memory_order_relaxed);
  S.Publishes = NPublishes.load(std::memory_order_relaxed);
  S.PublishBytes = NPublishBytes.load(std::memory_order_relaxed);
  S.Evictions = NEvictions.load(std::memory_order_relaxed);
  S.DedupHits = NDedupHits.load(std::memory_order_relaxed);
  return S;
}

void LocalDirBackend::enforceBudget() {
  if (!Options.BudgetBytes)
    return;
  std::lock_guard<std::mutex> Lock(EvictMutex);

  struct Victim {
    std::string Path;
    uint64_t Bytes;
    int64_t WriteTimeNs;
    uint64_t Freq;
    BlobKind Kind;
  };
  std::vector<Victim> Entries;
  uint64_t Total = 0;
  for (const std::string &Dir : allDirs())
    for (const fs::FileInfo &F : fs::listFilesWithInfo(Dir)) {
      if (!isEntryName(F.Name))
        continue; // locks and .tmp- siblings are not budgeted entries
      Total += F.Bytes;
      Entries.push_back(Victim{Dir + "/" + F.Name, F.Bytes, F.WriteTimeNs, 0,
                               startsWith(F.Name, CodePrefix)
                                   ? BlobKind::Code
                                   : BlobKind::Tune});
    }
  if (Total <= Options.BudgetBytes)
    return;

  if (Options.Policy == EvictPolicy::LFU && Options.FreqOf) {
    for (Victim &V : Entries)
      if (auto Bytes = fs::readFile(V.Path))
        V.Freq = Options.FreqOf(V.Kind, *Bytes);
    std::sort(Entries.begin(), Entries.end(),
              [](const Victim &A, const Victim &B) {
                if (A.Freq != B.Freq)
                  return A.Freq < B.Freq;
                return A.WriteTimeNs < B.WriteTimeNs;
              });
  } else {
    std::sort(Entries.begin(), Entries.end(),
              [](const Victim &A, const Victim &B) {
                return A.WriteTimeNs < B.WriteTimeNs;
              });
  }

  size_t Remaining = Entries.size();
  for (const Victim &V : Entries) {
    if (Total <= Options.BudgetBytes || Remaining <= 1)
      break;
    if (fs::removeFile(V.Path)) {
      Total -= V.Bytes;
      --Remaining;
      NEvictions.fetch_add(1, std::memory_order_relaxed);
    }
  }
}
