//===- ThreadPool.h - reusable fixed-size worker pool -----------*- C++ -*-===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fixed-size worker pool used by the asynchronous JIT compilation
/// pipeline (JitConfig::AsyncMode). Tasks are plain std::function thunks;
/// the pool guarantees that every enqueued task runs exactly once, that
/// shutdown() drains the queue before joining (no compile result is ever
/// lost), and that waitIdle() returns only when the queue is empty and no
/// worker is executing a task — the property JitRuntime::drain() relies on
/// before reading final statistics.
///
/// When a trace session is active (support/Trace.h) the pool emits
/// "pool.queue_depth" and "pool.active_workers" counter series plus one
/// "pool.task" span per executed task, which is how worker occupancy shows
/// up in chrome://tracing.
///
//===----------------------------------------------------------------------===//

#ifndef PROTEUS_SUPPORT_THREADPOOL_H
#define PROTEUS_SUPPORT_THREADPOOL_H

#include "support/Trace.h"

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace proteus {

class ThreadPool {
public:
  /// Spawns \p Workers threads (at least one).
  explicit ThreadPool(unsigned Workers) {
    if (Workers == 0)
      Workers = 1;
    WorkerCount = Workers;
    Threads.reserve(Workers);
    for (unsigned I = 0; I != Workers; ++I)
      Threads.emplace_back([this] { workerLoop(); });
  }

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  ~ThreadPool() { shutdown(); }

  /// Schedules \p Task. Tasks enqueued after shutdown() began are rejected
  /// (returns false) — callers must not rely on fire-and-forget during
  /// teardown.
  bool enqueue(std::function<void()> Task) {
    {
      std::lock_guard<std::mutex> L(M);
      if (Stopping)
        return false;
      Queue.push_back(std::move(Task));
      ++Enqueued;
      trace::counterValue("pool.queue_depth", double(Queue.size()));
    }
    WorkCv.notify_one();
    return true;
  }

  /// Blocks until the queue is empty and every worker is idle. Tasks that
  /// enqueue follow-up tasks are waited for transitively.
  void waitIdle() {
    std::unique_lock<std::mutex> L(M);
    IdleCv.wait(L, [this] { return Queue.empty() && Active == 0; });
  }

  /// Drains the queue, then joins all workers. Idempotent.
  void shutdown() {
    {
      std::lock_guard<std::mutex> L(M);
      if (Stopping)
        return;
      Stopping = true;
    }
    WorkCv.notify_all();
    for (std::thread &T : Threads)
      T.join();
    Threads.clear();
  }

  unsigned workerCount() const { return WorkerCount; }

  uint64_t tasksEnqueued() const {
    std::lock_guard<std::mutex> L(M);
    return Enqueued;
  }

  uint64_t tasksCompleted() const {
    std::lock_guard<std::mutex> L(M);
    return Completed;
  }

private:
  void workerLoop() {
    for (;;) {
      std::function<void()> Task;
      {
        std::unique_lock<std::mutex> L(M);
        WorkCv.wait(L, [this] { return Stopping || !Queue.empty(); });
        if (Queue.empty())
          return; // stopping and fully drained
        Task = std::move(Queue.front());
        Queue.pop_front();
        ++Active;
        trace::counterValue("pool.queue_depth", double(Queue.size()));
        trace::counterValue("pool.active_workers", double(Active));
      }
      {
        trace::Span S("pool.task", "pool");
        Task();
      }
      {
        std::lock_guard<std::mutex> L(M);
        --Active;
        ++Completed;
        trace::counterValue("pool.active_workers", double(Active));
        if (Queue.empty() && Active == 0)
          IdleCv.notify_all();
      }
    }
  }

  mutable std::mutex M;
  std::condition_variable WorkCv;
  std::condition_variable IdleCv;
  std::deque<std::function<void()>> Queue;
  std::vector<std::thread> Threads;
  unsigned WorkerCount = 0;
  unsigned Active = 0;
  uint64_t Enqueued = 0;
  uint64_t Completed = 0;
  bool Stopping = false;
};

} // namespace proteus

#endif // PROTEUS_SUPPORT_THREADPOOL_H
