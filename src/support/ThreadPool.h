//===- ThreadPool.h - reusable fixed-size worker pool -----------*- C++ -*-===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fixed-size worker pool used by the asynchronous JIT compilation
/// pipeline (JitConfig::AsyncMode). Tasks are plain std::function thunks;
/// the pool guarantees that every enqueued task runs exactly once, that
/// shutdown() drains the queue before joining (no compile result is ever
/// lost), and that waitIdle() returns only when the queue is empty and no
/// worker is executing a task — the property JitRuntime::drain() relies on
/// before reading final statistics.
///
/// Tasks carry a two-level priority: High (the default — launch-visible
/// Tier-0 compiles and plain async compiles) always runs before Low
/// (background Tier-1 re-optimization). Workers drain the high queue first;
/// a flood of background promotions can therefore never delay a pending
/// first-launch compile by more than the task currently executing.
///
/// When a trace session is active (support/Trace.h) the pool emits
/// "pool.queue_depth" and "pool.active_workers" counter series plus one
/// "pool.task" span per executed task, which is how worker occupancy shows
/// up in chrome://tracing.
///
//===----------------------------------------------------------------------===//

#ifndef PROTEUS_SUPPORT_THREADPOOL_H
#define PROTEUS_SUPPORT_THREADPOOL_H

#include "support/Trace.h"

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace proteus {

class ThreadPool {
public:
  /// Scheduling class for enqueued tasks. High always dispatches before Low.
  enum class Priority { High, Low };

  /// Spawns \p Workers threads (at least one).
  explicit ThreadPool(unsigned Workers) {
    if (Workers == 0)
      Workers = 1;
    WorkerCount = Workers;
    Threads.reserve(Workers);
    for (unsigned I = 0; I != Workers; ++I)
      Threads.emplace_back([this] { workerLoop(); });
  }

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  ~ThreadPool() { shutdown(); }

  /// Schedules \p Task at \p Pri. Tasks enqueued after shutdown() began are
  /// rejected (returns false) — callers must not rely on fire-and-forget
  /// during teardown.
  bool enqueue(std::function<void()> Task, Priority Pri = Priority::High) {
    {
      std::lock_guard<std::mutex> L(M);
      if (Stopping)
        return false;
      if (Pri == Priority::High)
        HighQueue.push_back(std::move(Task));
      else
        LowQueue.push_back(std::move(Task));
      ++Enqueued;
      trace::counterValue("pool.queue_depth", double(queueDepthLocked()));
    }
    WorkCv.notify_one();
    return true;
  }

  /// Blocks until both queues are empty and every worker is idle. Tasks that
  /// enqueue follow-up tasks are waited for transitively.
  void waitIdle() {
    std::unique_lock<std::mutex> L(M);
    IdleCv.wait(L, [this] { return queueDepthLocked() == 0 && Active == 0; });
  }

  /// Drains both queues, then joins all workers. Idempotent.
  void shutdown() {
    {
      std::lock_guard<std::mutex> L(M);
      if (Stopping)
        return;
      Stopping = true;
    }
    WorkCv.notify_all();
    for (std::thread &T : Threads)
      T.join();
    Threads.clear();
  }

  unsigned workerCount() const { return WorkerCount; }

  uint64_t tasksEnqueued() const {
    std::lock_guard<std::mutex> L(M);
    return Enqueued;
  }

  uint64_t tasksCompleted() const {
    std::lock_guard<std::mutex> L(M);
    return Completed;
  }

private:
  size_t queueDepthLocked() const { return HighQueue.size() + LowQueue.size(); }

  void workerLoop() {
    for (;;) {
      std::function<void()> Task;
      {
        std::unique_lock<std::mutex> L(M);
        WorkCv.wait(L, [this] { return Stopping || queueDepthLocked() != 0; });
        if (queueDepthLocked() == 0)
          return; // stopping and fully drained
        std::deque<std::function<void()>> &Q =
            HighQueue.empty() ? LowQueue : HighQueue;
        Task = std::move(Q.front());
        Q.pop_front();
        ++Active;
        trace::counterValue("pool.queue_depth", double(queueDepthLocked()));
        trace::counterValue("pool.active_workers", double(Active));
      }
      {
        trace::Span S("pool.task", "pool");
        Task();
      }
      {
        std::lock_guard<std::mutex> L(M);
        --Active;
        ++Completed;
        trace::counterValue("pool.active_workers", double(Active));
        if (queueDepthLocked() == 0 && Active == 0)
          IdleCv.notify_all();
      }
    }
  }

  mutable std::mutex M;
  std::condition_variable WorkCv;
  std::condition_variable IdleCv;
  /// High before Low, strictly: a worker only pops LowQueue when HighQueue
  /// is empty at dispatch time.
  std::deque<std::function<void()>> HighQueue;
  std::deque<std::function<void()>> LowQueue;
  std::vector<std::thread> Threads;
  unsigned WorkerCount = 0;
  unsigned Active = 0;
  uint64_t Enqueued = 0;
  uint64_t Completed = 0;
  bool Stopping = false;
};

} // namespace proteus

#endif // PROTEUS_SUPPORT_THREADPOOL_H
