//===- FileSystem.h - file IO helpers --------------------------*- C++ -*-===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small filesystem helpers backing the persistent code cache: atomic-enough
/// binary reads/writes, directory listing, and cleanup. All functions report
/// failure through their return value rather than aborting, because cache
/// storage problems are recoverable (the JIT simply recompiles).
///
//===----------------------------------------------------------------------===//

#ifndef PROTEUS_SUPPORT_FILESYSTEM_H
#define PROTEUS_SUPPORT_FILESYSTEM_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace proteus {
namespace fs {

/// Reads the entire file at \p Path; returns std::nullopt if it cannot be
/// opened or read.
std::optional<std::vector<uint8_t>> readFile(const std::string &Path);

/// Writes \p Data to \p Path, replacing any existing file. Returns false on
/// IO failure.
bool writeFile(const std::string &Path, const std::vector<uint8_t> &Data);

/// Crash-safe replacement of \p Path: writes \p Data to a unique sibling
/// temporary file (\p Path + ".tmp-<pid>-<n>") and renames it over \p Path.
/// A crash mid-write leaves either the previous file or a stale .tmp-*
/// sibling, never a truncated \p Path. Returns false on IO failure.
bool writeFileAtomic(const std::string &Path,
                     const std::vector<uint8_t> &Data);

/// Process-unique token ("<pid>-<counter>") used to build collision-free
/// temporary names (shared by writeFileAtomic and makeTempDirectory).
std::string uniqueNameToken();

/// Atomically creates \p Path with \p Data only if no file exists there yet
/// (O_CREAT|O_EXCL semantics — the cross-process mutual-exclusion primitive
/// behind the fleet cache's compile-claim lock files). Returns false when
/// the file already exists or on IO failure.
bool createFileExclusive(const std::string &Path,
                         const std::vector<uint8_t> &Data);

/// Returns true if a regular file exists at \p Path.
bool exists(const std::string &Path);

/// Creates \p Path (and parents) as a directory; returns false on failure.
bool createDirectories(const std::string &Path);

/// Removes the file at \p Path if present; returns true if it no longer
/// exists afterwards.
bool removeFile(const std::string &Path);

/// Lists regular files directly inside \p Dir (names, not full paths).
std::vector<std::string> listFiles(const std::string &Dir);

/// A directory entry with size and a monotonically comparable write time.
struct FileInfo {
  std::string Name;
  uint64_t Bytes = 0;
  int64_t WriteTimeNs = 0;
};

/// Lists regular files with sizes and write times (for LRU eviction of the
/// persistent code cache).
std::vector<FileInfo> listFilesWithInfo(const std::string &Dir);

/// Updates the write time of \p Path to "now" (LRU touch on cache hits).
void touchFile(const std::string &Path);

/// Removes every regular file inside \p Dir. Used by tests and by the
/// "clear the persistent cache on rebuild" workflow the paper describes.
void removeAllFiles(const std::string &Dir);

/// Total size in bytes of all regular files inside \p Dir.
uint64_t directorySize(const std::string &Dir);

/// Creates a fresh unique temporary directory and returns its path.
std::string makeTempDirectory(const std::string &Prefix);

/// Removes \p Path recursively (files and subdirectories — e.g. a sharded
/// fleet-cache tree). A missing path counts as success.
bool removeTree(const std::string &Path);

/// Nanoseconds elapsed since \p Path was last written, or std::nullopt if
/// it does not exist. Drives stale compile-claim detection: a lock file
/// older than the steal threshold belongs to a crashed owner.
std::optional<int64_t> fileAgeNs(const std::string &Path);

} // namespace fs
} // namespace proteus

#endif // PROTEUS_SUPPORT_FILESYSTEM_H
