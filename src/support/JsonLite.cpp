//===- JsonLite.cpp - minimal JSON parser -----------------------------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//

#include "support/JsonLite.h"

#include <cctype>
#include <cstdlib>
#include <cstring>

using namespace proteus;
using namespace proteus::json;

const Value *Value::find(std::string_view Key) const {
  if (K != Kind::Object)
    return nullptr;
  for (const auto &[Name, V] : Obj)
    if (Name == Key)
      return &V;
  return nullptr;
}

namespace {

constexpr unsigned MaxDepth = 64;

class Parser {
public:
  explicit Parser(std::string_view Text) : Text(Text) {}

  ParseResult run() {
    ParseResult R;
    skipWs();
    if (!parseValue(R.V, 0)) {
      R.Error = Err;
      R.ErrorOffset = Pos;
      return R;
    }
    skipWs();
    if (Pos != Text.size()) {
      R.Error = "trailing garbage after document";
      R.ErrorOffset = Pos;
      return R;
    }
    R.Ok = true;
    return R;
  }

private:
  bool fail(const char *Msg) {
    if (Err.empty())
      Err = Msg;
    return false;
  }

  void skipWs() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool consume(char C) {
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool parseLiteral(const char *Lit) {
    size_t Len = std::strlen(Lit);
    if (Text.substr(Pos, Len) != Lit)
      return fail("invalid literal");
    Pos += Len;
    return true;
  }

  bool parseString(std::string &Out) {
    if (!consume('"'))
      return fail("expected string");
    while (Pos < Text.size()) {
      char C = Text[Pos++];
      if (C == '"')
        return true;
      if (static_cast<unsigned char>(C) < 0x20)
        return fail("raw control character in string");
      if (C != '\\') {
        Out.push_back(C);
        continue;
      }
      if (Pos >= Text.size())
        return fail("dangling escape");
      char E = Text[Pos++];
      switch (E) {
      case '"': Out.push_back('"'); break;
      case '\\': Out.push_back('\\'); break;
      case '/': Out.push_back('/'); break;
      case 'b': Out.push_back('\b'); break;
      case 'f': Out.push_back('\f'); break;
      case 'n': Out.push_back('\n'); break;
      case 'r': Out.push_back('\r'); break;
      case 't': Out.push_back('\t'); break;
      case 'u': {
        if (Pos + 4 > Text.size())
          return fail("truncated \\u escape");
        unsigned V = 0;
        for (int I = 0; I != 4; ++I) {
          char H = Text[Pos++];
          V <<= 4;
          if (H >= '0' && H <= '9')
            V |= unsigned(H - '0');
          else if (H >= 'a' && H <= 'f')
            V |= unsigned(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            V |= unsigned(H - 'A' + 10);
          else
            return fail("invalid \\u escape");
        }
        // UTF-8 encode the code point (surrogate pairs are passed through
        // as two separate encodings; good enough for trace names).
        if (V < 0x80) {
          Out.push_back(static_cast<char>(V));
        } else if (V < 0x800) {
          Out.push_back(static_cast<char>(0xC0 | (V >> 6)));
          Out.push_back(static_cast<char>(0x80 | (V & 0x3F)));
        } else {
          Out.push_back(static_cast<char>(0xE0 | (V >> 12)));
          Out.push_back(static_cast<char>(0x80 | ((V >> 6) & 0x3F)));
          Out.push_back(static_cast<char>(0x80 | (V & 0x3F)));
        }
        break;
      }
      default:
        return fail("invalid escape character");
      }
    }
    return fail("unterminated string");
  }

  bool parseNumber(Value &Out) {
    size_t Start = Pos;
    if (consume('-')) {
    }
    if (Pos >= Text.size() || !std::isdigit(static_cast<unsigned char>(Text[Pos])))
      return fail("invalid number");
    if (Text[Pos] == '0') {
      ++Pos;
      if (Pos < Text.size() &&
          std::isdigit(static_cast<unsigned char>(Text[Pos])))
        return fail("leading zero in number");
    } else {
      while (Pos < Text.size() &&
             std::isdigit(static_cast<unsigned char>(Text[Pos])))
        ++Pos;
    }
    if (consume('.')) {
      if (Pos >= Text.size() ||
          !std::isdigit(static_cast<unsigned char>(Text[Pos])))
        return fail("digit expected after decimal point");
      while (Pos < Text.size() &&
             std::isdigit(static_cast<unsigned char>(Text[Pos])))
        ++Pos;
    }
    if (Pos < Text.size() && (Text[Pos] == 'e' || Text[Pos] == 'E')) {
      ++Pos;
      if (Pos < Text.size() && (Text[Pos] == '+' || Text[Pos] == '-'))
        ++Pos;
      if (Pos >= Text.size() ||
          !std::isdigit(static_cast<unsigned char>(Text[Pos])))
        return fail("digit expected in exponent");
      while (Pos < Text.size() &&
             std::isdigit(static_cast<unsigned char>(Text[Pos])))
        ++Pos;
    }
    Out.K = Value::Kind::Number;
    Out.Num = std::strtod(std::string(Text.substr(Start, Pos - Start)).c_str(),
                          nullptr);
    return true;
  }

  bool parseValue(Value &Out, unsigned Depth) {
    if (Depth > MaxDepth)
      return fail("nesting too deep");
    skipWs();
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    char C = Text[Pos];
    switch (C) {
    case '{': {
      ++Pos;
      Out.K = Value::Kind::Object;
      skipWs();
      if (consume('}'))
        return true;
      for (;;) {
        skipWs();
        std::string Key;
        if (!parseString(Key))
          return false;
        skipWs();
        if (!consume(':'))
          return fail("expected ':' in object");
        Value V;
        if (!parseValue(V, Depth + 1))
          return false;
        Out.Obj.emplace_back(std::move(Key), std::move(V));
        skipWs();
        if (consume(','))
          continue;
        if (consume('}'))
          return true;
        return fail("expected ',' or '}' in object");
      }
    }
    case '[': {
      ++Pos;
      Out.K = Value::Kind::Array;
      skipWs();
      if (consume(']'))
        return true;
      for (;;) {
        Value V;
        if (!parseValue(V, Depth + 1))
          return false;
        Out.Arr.push_back(std::move(V));
        skipWs();
        if (consume(','))
          continue;
        if (consume(']'))
          return true;
        return fail("expected ',' or ']' in array");
      }
    }
    case '"':
      Out.K = Value::Kind::String;
      return parseString(Out.Str);
    case 't':
      Out.K = Value::Kind::Bool;
      Out.B = true;
      return parseLiteral("true");
    case 'f':
      Out.K = Value::Kind::Bool;
      Out.B = false;
      return parseLiteral("false");
    case 'n':
      Out.K = Value::Kind::Null;
      return parseLiteral("null");
    default:
      return parseNumber(Out);
    }
  }

  std::string_view Text;
  size_t Pos = 0;
  std::string Err;
};

} // namespace

ParseResult proteus::json::parse(std::string_view Text) {
  return Parser(Text).run();
}
