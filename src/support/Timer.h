//===- Timer.h - wall-clock timing -----------------------------*- C++ -*-===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Wall-clock timers used to measure the *real* cost of JIT compilation
/// stages. Simulated GPU time is accounted separately by the device model
/// (see gpu/Device.h); end-to-end program time is the sum of both.
///
//===----------------------------------------------------------------------===//

#ifndef PROTEUS_SUPPORT_TIMER_H
#define PROTEUS_SUPPORT_TIMER_H

#include <chrono>

namespace proteus {

/// Measures elapsed wall time in seconds from construction or last reset.
class Timer {
public:
  Timer() : Start(Clock::now()) {}

  void reset() { Start = Clock::now(); }

  /// Seconds elapsed since construction/reset.
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

/// Accumulates wall time across multiple start/stop intervals.
class AccumulatingTimer {
public:
  void start() { Running.reset(); IsRunning = true; }

  void stop() {
    if (!IsRunning)
      return;
    Total += Running.seconds();
    IsRunning = false;
  }

  double seconds() const {
    return IsRunning ? Total + Running.seconds() : Total;
  }

  void clear() {
    Total = 0.0;
    IsRunning = false;
  }

private:
  Timer Running;
  double Total = 0.0;
  bool IsRunning = false;
};

/// RAII helper that adds the scope's duration to an AccumulatingTimer.
class TimeRegion {
public:
  explicit TimeRegion(AccumulatingTimer &T) : TheTimer(T) { TheTimer.start(); }
  ~TimeRegion() { TheTimer.stop(); }

  TimeRegion(const TimeRegion &) = delete;
  TimeRegion &operator=(const TimeRegion &) = delete;

private:
  AccumulatingTimer &TheTimer;
};

} // namespace proteus

#endif // PROTEUS_SUPPORT_TIMER_H
