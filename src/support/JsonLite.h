//===- JsonLite.h - minimal JSON parser -------------------------*- C++ -*-===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, dependency-free JSON reader used to round-trip and validate the
/// chrome://tracing exports produced by support/Trace. It parses the full
/// JSON grammar (objects, arrays, strings with escapes, numbers, booleans,
/// null) into a simple tree; malformed input yields a diagnostic with the
/// byte offset, never undefined behavior — exports may be truncated by a
/// crashed process.
///
//===----------------------------------------------------------------------===//

#ifndef PROTEUS_SUPPORT_JSONLITE_H
#define PROTEUS_SUPPORT_JSONLITE_H

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace proteus {
namespace json {

/// One parsed JSON value. Members are public; only the slot matching the
/// kind is meaningful.
struct Value {
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind K = Kind::Null;
  bool B = false;
  double Num = 0;
  std::string Str;
  std::vector<Value> Arr;
  /// Object members in document order (duplicate keys are preserved).
  std::vector<std::pair<std::string, Value>> Obj;

  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  /// First object member named \p Key, or nullptr (also for non-objects).
  const Value *find(std::string_view Key) const;
};

/// Outcome of a parse: the document, or a diagnostic with its byte offset.
struct ParseResult {
  bool Ok = false;
  Value V;
  std::string Error;
  size_t ErrorOffset = 0;

  explicit operator bool() const { return Ok; }
};

/// Parses \p Text as one JSON document (trailing whitespace allowed,
/// trailing garbage rejected). Nesting depth is bounded to keep recursion
/// safe on adversarial input.
ParseResult parse(std::string_view Text);

} // namespace json
} // namespace proteus

#endif // PROTEUS_SUPPORT_JSONLITE_H
