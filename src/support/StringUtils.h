//===- StringUtils.h - string formatting helpers ---------------*- C++ -*-===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Formatting and tokenizing helpers shared by the IR printer/parser and the
/// benchmark report writers.
///
//===----------------------------------------------------------------------===//

#ifndef PROTEUS_SUPPORT_STRINGUTILS_H
#define PROTEUS_SUPPORT_STRINGUTILS_H

#include <cstdarg>
#include <string>
#include <string_view>
#include <vector>

namespace proteus {

/// printf-style formatting into a std::string.
std::string formatString(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Strips ASCII whitespace from both ends.
std::string_view trim(std::string_view S);

/// Splits \p S on \p Sep, keeping empty fields.
std::vector<std::string_view> split(std::string_view S, char Sep);

/// True if \p S starts with \p Prefix.
bool startsWith(std::string_view S, std::string_view Prefix);

/// Formats a double so that it round-trips exactly through the IR parser.
std::string formatDouble(double V);

/// Formats a byte count as a human-readable "5.9KB"-style string (used in
/// the Table 3 reproduction).
std::string formatByteSize(uint64_t Bytes);

} // namespace proteus

#endif // PROTEUS_SUPPORT_STRINGUTILS_H
