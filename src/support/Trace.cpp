//===- Trace.cpp - structured runtime tracing ---------------------------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//

#include "support/Trace.h"

#include "support/FileSystem.h"
#include "support/JsonLite.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <memory>
#include <set>

using namespace proteus;

std::atomic<bool> trace::detail::EnabledFlag{false};

namespace {

using Clock = std::chrono::steady_clock;

/// One recorded event. Names are interned/static pointers so the ring stays
/// allocation-free after start().
struct Event {
  const char *Name = nullptr;
  const char *Cat = nullptr;
  uint64_t TsNs = 0;  // span start (or event time) since session start
  uint64_t DurNs = 0; // 'X' events only
  double Value = 0;   // 'C' events only
  uint32_t Tid = 0;
  uint32_t Depth = 0; // span nesting depth on its thread ('X' only)
  char Ph = 'X';      // 'X' complete, 'i' instant, 'C' counter
};

struct TraceState {
  std::mutex Mutex;
  std::vector<Event> Ring; // capacity fixed at start()
  size_t Head = 0;         // index of the oldest event
  size_t Count = 0;
  uint64_t Dropped = 0;
  /// Every distinct event name seen this session — survives ring wraparound
  /// and is exported in the JSON metadata.
  std::set<const char *> SeenNames;
  std::string OutputPath;
  Clock::time_point SessionStart = Clock::now();
  bool AtExitRegistered = false;
};

TraceState &state() {
  // Intentionally leaked: the atexit flush can run after function-local
  // static destructors, so the state must never be destroyed.
  static TraceState *S = new TraceState;
  return *S;
}

/// Session-lifetime interned name storage (never freed: names are few and
/// events reference them by pointer).
struct InternTable {
  std::mutex Mutex;
  std::map<std::string, std::unique_ptr<std::string>> Names;
};

InternTable &internTable() {
  // Intentionally leaked: events hold interned pointers and the atexit
  // flush reads them after static destructors have already run — a
  // destructible table would leave the export with dangling names.
  static InternTable *T = new InternTable;
  return *T;
}

uint32_t threadId() {
  static std::atomic<uint32_t> Next{1};
  thread_local uint32_t Tid = Next.fetch_add(1, std::memory_order_relaxed);
  return Tid;
}

thread_local uint32_t SpanDepth = 0;

void record(Event E) {
  TraceState &S = state();
  std::lock_guard<std::mutex> Lock(S.Mutex);
  if (!trace::enabled() || S.Ring.empty())
    return; // session stopped between the probe and here
  S.SeenNames.insert(E.Name);
  if (S.Count < S.Ring.size()) {
    S.Ring[(S.Head + S.Count) % S.Ring.size()] = E;
    ++S.Count;
  } else {
    S.Ring[S.Head] = E; // overwrite the oldest
    S.Head = (S.Head + 1) % S.Ring.size();
    ++S.Dropped;
  }
}

void flushAtExit() {
  TraceState &S = state();
  std::string Path;
  {
    std::lock_guard<std::mutex> Lock(S.Mutex);
    Path = S.OutputPath;
  }
  if (trace::enabled() && !Path.empty())
    trace::writeJson(Path);
}

void appendJsonString(std::string &Out, const char *Str) {
  Out.push_back('"');
  for (const char *P = Str; *P; ++P) {
    unsigned char C = static_cast<unsigned char>(*P);
    switch (C) {
    case '"': Out += "\\\""; break;
    case '\\': Out += "\\\\"; break;
    case '\n': Out += "\\n"; break;
    case '\t': Out += "\\t"; break;
    case '\r': Out += "\\r"; break;
    default:
      if (C < 0x20)
        Out += formatString("\\u%04x", C);
      else
        Out.push_back(static_cast<char>(C));
    }
  }
  Out.push_back('"');
}

/// Reads PROTEUS_TRACE / PROTEUS_TRACE_BUFFER once at load time so traced
/// processes need no code changes. The object file is linked in whenever
/// anything references the trace probes.
struct EnvActivation {
  EnvActivation() {
    const char *Path = std::getenv("PROTEUS_TRACE");
    if (!Path || !*Path)
      return;
    size_t Capacity = trace::DefaultCapacity;
    if (const char *Buf = std::getenv("PROTEUS_TRACE_BUFFER")) {
      char *End = nullptr;
      unsigned long long N = std::strtoull(Buf, &End, 10);
      if (End && *End == '\0' && N > 0)
        Capacity = static_cast<size_t>(N);
      else
        std::fprintf(stderr,
                     "proteus: warning: ignoring invalid "
                     "PROTEUS_TRACE_BUFFER value '%s' (expected a positive "
                     "event count)\n",
                     Buf);
    }
    trace::start(Path, Capacity);
  }
} TheEnvActivation;

} // namespace

void trace::start(const std::string &OutputPath, size_t CapacityEvents) {
  TraceState &S = state();
  std::lock_guard<std::mutex> Lock(S.Mutex);
  S.Ring.assign(std::max<size_t>(CapacityEvents, 1), Event{});
  S.Head = 0;
  S.Count = 0;
  S.Dropped = 0;
  S.SeenNames.clear();
  S.OutputPath = OutputPath;
  S.SessionStart = Clock::now();
  if (!S.AtExitRegistered) {
    std::atexit(flushAtExit);
    S.AtExitRegistered = true;
  }
  detail::EnabledFlag.store(true, std::memory_order_relaxed);
}

void trace::stop() {
  TraceState &S = state();
  std::string Path;
  {
    std::lock_guard<std::mutex> Lock(S.Mutex);
    if (!detail::EnabledFlag.load(std::memory_order_relaxed))
      return;
    detail::EnabledFlag.store(false, std::memory_order_relaxed);
    Path = S.OutputPath;
  }
  if (!Path.empty())
    writeJson(Path);
}

uint64_t trace::nowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          Clock::now() - state().SessionStart)
          .count());
}

const char *trace::internName(const std::string &Name) {
  InternTable &T = internTable();
  std::lock_guard<std::mutex> Lock(T.Mutex);
  auto &Slot = T.Names[Name];
  if (!Slot)
    Slot = std::make_unique<std::string>(Name);
  return Slot->c_str();
}

void trace::instant(const char *Name, const char *Cat) {
  if (!enabled())
    return;
  Event E;
  E.Name = Name;
  E.Cat = Cat;
  E.TsNs = nowNs();
  E.Tid = threadId();
  E.Ph = 'i';
  record(E);
}

void trace::counterValue(const char *Name, double Value) {
  if (!enabled())
    return;
  Event E;
  E.Name = Name;
  E.Cat = "counter";
  E.TsNs = nowNs();
  E.Value = Value;
  E.Tid = threadId();
  E.Ph = 'C';
  record(E);
}

void trace::complete(const char *Name, const char *Cat, uint64_t StartNs,
                     uint64_t DurNs) {
  if (!enabled())
    return;
  Event E;
  E.Name = Name;
  E.Cat = Cat;
  E.TsNs = StartNs;
  E.DurNs = DurNs;
  E.Tid = threadId();
  E.Depth = SpanDepth;
  E.Ph = 'X';
  record(E);
}

void trace::lane(const char *Name, const char *Cat, uint32_t Tid,
                 uint64_t TsNs, uint64_t DurNs) {
  if (!enabled())
    return;
  Event E;
  E.Name = Name;
  E.Cat = Cat;
  E.TsNs = TsNs;
  E.DurNs = DurNs;
  E.Tid = Tid;
  E.Depth = 0; // lanes carry flat FIFO spans, no nesting
  E.Ph = 'X';
  record(E);
}

trace::Span::Span(const char *Name, const char *Cat)
    : Name(Name), Cat(Cat), StartNs(0), Active(enabled()) {
  if (!Active)
    return;
  ++SpanDepth;
  StartNs = nowNs();
}

trace::Span::~Span() {
  if (!Active)
    return;
  uint64_t End = nowNs();
  // Depth is decremented first so the recorded depth counts enclosing
  // spans only (outermost span = depth 0).
  --SpanDepth;
  complete(Name, Cat, StartNs, End > StartNs ? End - StartNs : 0);
}

size_t trace::recordedEvents() {
  TraceState &S = state();
  std::lock_guard<std::mutex> Lock(S.Mutex);
  return S.Count;
}

uint64_t trace::droppedEvents() {
  TraceState &S = state();
  std::lock_guard<std::mutex> Lock(S.Mutex);
  return S.Dropped;
}

std::string trace::exportJson() {
  TraceState &S = state();
  std::vector<Event> Events;
  uint64_t Dropped;
  std::vector<const char *> Names;
  {
    std::lock_guard<std::mutex> Lock(S.Mutex);
    Events.reserve(S.Count);
    for (size_t I = 0; I != S.Count; ++I)
      Events.push_back(S.Ring[(S.Head + I) % S.Ring.size()]);
    Dropped = S.Dropped;
    Names.assign(S.SeenNames.begin(), S.SeenNames.end());
  }
  std::stable_sort(Events.begin(), Events.end(),
                   [](const Event &A, const Event &B) {
                     return A.TsNs < B.TsNs;
                   });

  std::string Out;
  Out.reserve(128 + Events.size() * 96);
  Out += "{\"traceEvents\":[\n";
  Out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
         "\"args\":{\"name\":\"proteus\"}}";
  for (const Event &E : Events) {
    Out += ",\n{\"name\":";
    appendJsonString(Out, E.Name);
    Out += ",\"cat\":";
    appendJsonString(Out, E.Cat ? E.Cat : "proteus");
    Out += formatString(",\"ph\":\"%c\",\"pid\":1,\"tid\":%u,\"ts\":%.3f",
                        E.Ph, E.Tid, E.TsNs / 1e3);
    switch (E.Ph) {
    case 'X':
      Out += formatString(",\"dur\":%.3f,\"args\":{\"depth\":%u}",
                          E.DurNs / 1e3, E.Depth);
      break;
    case 'C':
      Out += formatString(",\"args\":{\"value\":%g}", E.Value);
      break;
    default: // instant
      Out += ",\"s\":\"t\",\"args\":{}";
      break;
    }
    Out += "}";
  }
  Out += "\n],\"otherData\":{";
  Out += formatString("\"droppedEvents\":%llu,\"recordedEvents\":%llu,",
                      static_cast<unsigned long long>(Dropped),
                      static_cast<unsigned long long>(Events.size()));
  Out += "\"spanNames\":[";
  for (size_t I = 0; I != Names.size(); ++I) {
    if (I)
      Out += ",";
    appendJsonString(Out, Names[I]);
  }
  Out += "]}}\n";
  return Out;
}

bool trace::writeJson(const std::string &Path) {
  std::string Json = exportJson();
  std::vector<uint8_t> Bytes(Json.begin(), Json.end());
  return fs::writeFileAtomic(Path, Bytes);
}

// --- Export validation -------------------------------------------------------

namespace {

bool validationFail(std::string *ErrorOut, const std::string &Msg) {
  if (ErrorOut)
    *ErrorOut = Msg;
  return false;
}

} // namespace

bool trace::validateTraceFile(const std::string &Path,
                              const std::vector<std::string> &RequiredNames,
                              std::string *ErrorOut) {
  std::optional<std::vector<uint8_t>> Bytes = fs::readFile(Path);
  if (!Bytes)
    return validationFail(ErrorOut, "cannot read trace file " + Path);
  json::ParseResult Doc = json::parse(
      std::string_view(reinterpret_cast<const char *>(Bytes->data()),
                       Bytes->size()));
  if (!Doc)
    return validationFail(ErrorOut,
                          "invalid JSON at byte " +
                              std::to_string(Doc.ErrorOffset) + ": " +
                              Doc.Error);
  if (!Doc.V.isObject())
    return validationFail(ErrorOut, "top-level value is not an object");
  const json::Value *Events = Doc.V.find("traceEvents");
  if (!Events || !Events->isArray())
    return validationFail(ErrorOut, "missing traceEvents array");

  struct SpanIv {
    double Start, End;
  };
  std::map<double, std::vector<SpanIv>> SpansByTid;
  std::set<std::string> Seen;

  for (const json::Value &E : Events->Arr) {
    if (!E.isObject())
      return validationFail(ErrorOut, "event is not an object");
    const json::Value *Name = E.find("name");
    const json::Value *Ph = E.find("ph");
    if (!Name || !Name->isString() || !Ph || !Ph->isString() ||
        Ph->Str.size() != 1)
      return validationFail(ErrorOut, "event missing name/ph");
    if (Ph->Str == "M")
      continue; // metadata events carry no timestamps
    Seen.insert(Name->Str);
    const json::Value *Ts = E.find("ts");
    const json::Value *Tid = E.find("tid");
    if (!Ts || !Ts->isNumber() || Ts->Num < 0 || !Tid || !Tid->isNumber())
      return validationFail(ErrorOut,
                            "event '" + Name->Str + "' missing ts/tid");
    if (Ph->Str == "X") {
      const json::Value *Dur = E.find("dur");
      if (!Dur || !Dur->isNumber() || Dur->Num < 0)
        return validationFail(ErrorOut,
                              "span '" + Name->Str + "' missing dur");
      SpansByTid[Tid->Num].push_back(SpanIv{Ts->Num, Ts->Num + Dur->Num});
    } else if (Ph->Str == "C") {
      const json::Value *Args = E.find("args");
      if (!Args || !Args->find("value") || !Args->find("value")->isNumber())
        return validationFail(ErrorOut,
                              "counter '" + Name->Str + "' missing value");
    }
  }

  // Per-thread spans must be properly nested: for any two spans on a
  // thread, one contains the other or they are disjoint. Sweep with a
  // stack of enclosing end-times.
  constexpr double EpsUs = 0.0015; // export granularity is 1 ns = 0.001 us
  for (auto &[Tid, Spans] : SpansByTid) {
    std::sort(Spans.begin(), Spans.end(), [](const SpanIv &A, const SpanIv &B) {
      if (A.Start != B.Start)
        return A.Start < B.Start;
      return A.End > B.End; // enclosing span first
    });
    std::vector<double> Stack; // end-times of open spans
    for (const SpanIv &Iv : Spans) {
      while (!Stack.empty() && Stack.back() <= Iv.Start + EpsUs)
        Stack.pop_back();
      if (!Stack.empty() && Iv.End > Stack.back() + EpsUs)
        return validationFail(
            ErrorOut, formatString("partially overlapping spans on tid %g "
                                   "([%.3f, %.3f] vs enclosing end %.3f)",
                                   Tid, Iv.Start, Iv.End, Stack.back()));
      Stack.push_back(Iv.End);
    }
  }

  // Names recorded only in the metadata set (ring wraparound) still count.
  const json::Value *Other = Doc.V.find("otherData");
  if (const json::Value *MetaNames = Other ? Other->find("spanNames") : nullptr)
    if (MetaNames->isArray())
      for (const json::Value &N : MetaNames->Arr)
        if (N.isString())
          Seen.insert(N.Str);

  for (const std::string &Req : RequiredNames)
    if (!Seen.count(Req))
      return validationFail(ErrorOut,
                            "required event '" + Req + "' not present");
  return true;
}
