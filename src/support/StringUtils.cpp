//===- StringUtils.cpp - string formatting helpers ------------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//

#include "support/StringUtils.h"

#include <cmath>
#include <cstdio>

using namespace proteus;

std::string proteus::formatString(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list ArgsCopy;
  va_copy(ArgsCopy, Args);
  int Size = std::vsnprintf(nullptr, 0, Fmt, Args);
  va_end(Args);
  if (Size < 0) {
    va_end(ArgsCopy);
    return std::string();
  }
  std::string Out(static_cast<size_t>(Size), '\0');
  std::vsnprintf(Out.data(), Out.size() + 1, Fmt, ArgsCopy);
  va_end(ArgsCopy);
  return Out;
}

std::string_view proteus::trim(std::string_view S) {
  size_t Begin = 0;
  while (Begin < S.size() && std::isspace(static_cast<unsigned char>(S[Begin])))
    ++Begin;
  size_t End = S.size();
  while (End > Begin && std::isspace(static_cast<unsigned char>(S[End - 1])))
    --End;
  return S.substr(Begin, End - Begin);
}

std::vector<std::string_view> proteus::split(std::string_view S, char Sep) {
  std::vector<std::string_view> Parts;
  size_t Pos = 0;
  for (;;) {
    size_t Next = S.find(Sep, Pos);
    if (Next == std::string_view::npos) {
      Parts.push_back(S.substr(Pos));
      return Parts;
    }
    Parts.push_back(S.substr(Pos, Next - Pos));
    Pos = Next + 1;
  }
}

bool proteus::startsWith(std::string_view S, std::string_view Prefix) {
  return S.size() >= Prefix.size() && S.substr(0, Prefix.size()) == Prefix;
}

std::string proteus::formatDouble(double V) {
  // %.17g guarantees a round-trip for IEEE doubles.
  std::string S = formatString("%.17g", V);
  // Make sure integral values still look like floating point to the lexer.
  if (S.find_first_of(".eEnN") == std::string::npos)
    S += ".0";
  return S;
}

std::string proteus::formatByteSize(uint64_t Bytes) {
  if (Bytes < 1024)
    return formatString("%lluB", static_cast<unsigned long long>(Bytes));
  double KB = static_cast<double>(Bytes) / 1024.0;
  if (KB < 1024.0)
    return formatString("%.1fKB", KB);
  return formatString("%.1fMB", KB / 1024.0);
}
