//===- Hashing.h - FNV-1a hashing utilities --------------------*- C++ -*-===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic 64-bit FNV-1a hashing used for code-cache keys and module
/// identifiers. Hashes must be stable across runs so that the persistent
/// cache (cache-jit-<hash>.o files) remains valid between executions.
///
//===----------------------------------------------------------------------===//

#ifndef PROTEUS_SUPPORT_HASHING_H
#define PROTEUS_SUPPORT_HASHING_H

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace proteus {

/// Incremental FNV-1a 64-bit hasher.
class FNV1aHash {
public:
  static constexpr uint64_t OffsetBasis = 0xcbf29ce484222325ULL;
  static constexpr uint64_t Prime = 0x100000001b3ULL;

  FNV1aHash() = default;

  void updateBytes(const void *Data, size_t Size) {
    const auto *P = static_cast<const uint8_t *>(Data);
    for (size_t I = 0; I != Size; ++I) {
      State ^= P[I];
      State *= Prime;
    }
  }

  void update(std::string_view S) { updateBytes(S.data(), S.size()); }

  void update(uint64_t V) { updateBytes(&V, sizeof(V)); }
  void update(int64_t V) { updateBytes(&V, sizeof(V)); }
  void update(uint32_t V) { updateBytes(&V, sizeof(V)); }
  void update(int32_t V) { updateBytes(&V, sizeof(V)); }
  void update(uint8_t V) { updateBytes(&V, sizeof(V)); }
  void update(bool V) { update(static_cast<uint8_t>(V)); }

  void update(double V) {
    uint64_t Bits;
    std::memcpy(&Bits, &V, sizeof(Bits));
    update(Bits);
  }

  void update(const std::vector<uint8_t> &Bytes) {
    updateBytes(Bytes.data(), Bytes.size());
  }

  /// Returns the current digest.
  uint64_t digest() const { return State; }

private:
  uint64_t State = OffsetBasis;
};

/// One-shot convenience hash of a byte string.
inline uint64_t hashBytes(const void *Data, size_t Size) {
  FNV1aHash H;
  H.updateBytes(Data, Size);
  return H.digest();
}

inline uint64_t hashString(std::string_view S) {
  return hashBytes(S.data(), S.size());
}

/// Mixes \p V into \p Seed (Boost-style combiner over FNV output).
inline uint64_t hashCombine(uint64_t Seed, uint64_t V) {
  FNV1aHash H;
  H.update(Seed);
  H.update(V);
  return H.digest();
}

/// Renders a hash as a fixed-width lowercase hex string, suitable for use in
/// persistent cache file names.
std::string hashToHex(uint64_t Hash);

} // namespace proteus

#endif // PROTEUS_SUPPORT_HASHING_H
