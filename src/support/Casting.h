//===- Casting.h - LLVM-style isa/cast/dyn_cast ----------------*- C++ -*-===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-rolled RTTI helpers in the style of llvm/Support/Casting.h. A class
/// opts in by providing `static bool classof(const Base *)`.
///
//===----------------------------------------------------------------------===//

#ifndef PROTEUS_SUPPORT_CASTING_H
#define PROTEUS_SUPPORT_CASTING_H

#include <cassert>
#include <type_traits>

namespace proteus {

/// Returns true if \p V is an instance of \p To (or a subclass of it).
template <typename To, typename From> bool isa(const From *V) {
  assert(V && "isa<> used on a null pointer");
  return To::classof(V);
}

template <typename To, typename From>
  requires(!std::is_pointer_v<From>)
bool isa(const From &V) {
  return To::classof(&V);
}

/// Checked downcast: asserts that \p V really is a \p To.
template <typename To, typename From> To *cast(From *V) {
  assert(isa<To>(V) && "cast<> argument of incompatible type");
  return static_cast<To *>(V);
}

template <typename To, typename From> const To *cast(const From *V) {
  assert(isa<To>(V) && "cast<> argument of incompatible type");
  return static_cast<const To *>(V);
}

template <typename To, typename From>
  requires(!std::is_pointer_v<From>)
To &cast(From &V) {
  assert(isa<To>(V) && "cast<> argument of incompatible type");
  return static_cast<To &>(V);
}

template <typename To, typename From>
  requires(!std::is_pointer_v<From>)
const To &cast(const From &V) {
  assert(isa<To>(V) && "cast<> argument of incompatible type");
  return static_cast<const To &>(V);
}

/// Checking downcast: returns null when \p V is not a \p To.
template <typename To, typename From> To *dyn_cast(From *V) {
  return isa<To>(V) ? static_cast<To *>(V) : nullptr;
}

template <typename To, typename From> const To *dyn_cast(const From *V) {
  return isa<To>(V) ? static_cast<const To *>(V) : nullptr;
}

/// Like isa<>, but tolerates a null pointer (returns false).
template <typename To, typename From> bool isa_and_present(const From *V) {
  return V && isa<To>(V);
}

/// Like dyn_cast<>, but tolerates a null pointer (propagates null).
template <typename To, typename From> To *dyn_cast_if_present(From *V) {
  return V ? dyn_cast<To>(V) : nullptr;
}

template <typename To, typename From>
const To *dyn_cast_if_present(const From *V) {
  return V ? dyn_cast<To>(V) : nullptr;
}

} // namespace proteus

#endif // PROTEUS_SUPPORT_CASTING_H
