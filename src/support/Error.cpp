//===- Error.cpp - fatal-error reporting ----------------------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//

#include "support/Error.h"

#include <cstdio>
#include <cstdlib>

using namespace proteus;

void proteus::reportFatalError(std::string_view Message) {
  std::fprintf(stderr, "proteus fatal error: %.*s\n",
               static_cast<int>(Message.size()), Message.data());
  std::abort();
}

void proteus::proteusUnreachableImpl(const char *Message, const char *File,
                                     unsigned Line) {
  std::fprintf(stderr, "unreachable executed at %s:%u: %s\n", File, Line,
               Message);
  std::abort();
}
