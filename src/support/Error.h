//===- Error.h - fatal-error reporting -------------------------*- C++ -*-===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal error-reporting facilities. The library does not use exceptions
/// (LLVM style); programmatic errors abort via reportFatalError or
/// proteus_unreachable, and recoverable errors (e.g. parser input) are
/// surfaced through status returns with a diagnostic string.
///
//===----------------------------------------------------------------------===//

#ifndef PROTEUS_SUPPORT_ERROR_H
#define PROTEUS_SUPPORT_ERROR_H

#include <string>
#include <string_view>

namespace proteus {

/// Prints \p Message to stderr and aborts. Used for unrecoverable internal
/// errors (broken invariants in caller-provided IR, corrupt cache files that
/// should have been validated earlier, etc.).
[[noreturn]] void reportFatalError(std::string_view Message);

/// Marks a point in code that must be unreachable if program invariants hold.
[[noreturn]] void proteusUnreachableImpl(const char *Message, const char *File,
                                         unsigned Line);

#define proteus_unreachable(MSG)                                              \
  ::proteus::proteusUnreachableImpl(MSG, __FILE__, __LINE__)

} // namespace proteus

#endif // PROTEUS_SUPPORT_ERROR_H
