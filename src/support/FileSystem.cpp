//===- FileSystem.cpp - file IO helpers -----------------------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//

#include "support/FileSystem.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <system_error>

#include <fcntl.h>
#include <unistd.h>

namespace stdfs = std::filesystem;
using namespace proteus;

std::optional<std::vector<uint8_t>> fs::readFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return std::nullopt;
  std::vector<uint8_t> Data((std::istreambuf_iterator<char>(In)),
                            std::istreambuf_iterator<char>());
  if (In.bad())
    return std::nullopt;
  return Data;
}

bool fs::writeFile(const std::string &Path, const std::vector<uint8_t> &Data) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  if (!Out)
    return false;
  Out.write(reinterpret_cast<const char *>(Data.data()),
            static_cast<std::streamsize>(Data.size()));
  return static_cast<bool>(Out);
}

std::string fs::uniqueNameToken() {
  static std::atomic<uint64_t> Counter{0};
  return std::to_string(::getpid()) + "-" +
         std::to_string(Counter.fetch_add(1));
}

bool fs::createFileExclusive(const std::string &Path,
                             const std::vector<uint8_t> &Data) {
  int Fd = ::open(Path.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
  if (Fd < 0)
    return false;
  size_t Off = 0;
  while (Off < Data.size()) {
    ssize_t N = ::write(Fd, Data.data() + Off, Data.size() - Off);
    if (N <= 0) {
      ::close(Fd);
      ::unlink(Path.c_str());
      return false;
    }
    Off += static_cast<size_t>(N);
  }
  ::close(Fd);
  return true;
}

bool fs::writeFileAtomic(const std::string &Path,
                         const std::vector<uint8_t> &Data) {
  std::string Tmp = Path + ".tmp-" + uniqueNameToken();
  if (!writeFile(Tmp, Data)) {
    removeFile(Tmp);
    return false;
  }
  std::error_code EC;
  stdfs::rename(Tmp, Path, EC);
  if (EC) {
    removeFile(Tmp);
    return false;
  }
  return true;
}

bool fs::exists(const std::string &Path) {
  std::error_code EC;
  return stdfs::is_regular_file(Path, EC);
}

bool fs::createDirectories(const std::string &Path) {
  std::error_code EC;
  stdfs::create_directories(Path, EC);
  return !EC || stdfs::is_directory(Path, EC);
}

bool fs::removeFile(const std::string &Path) {
  std::error_code EC;
  stdfs::remove(Path, EC);
  return !stdfs::exists(Path, EC);
}

std::vector<std::string> fs::listFiles(const std::string &Dir) {
  std::vector<std::string> Names;
  std::error_code EC;
  for (const auto &Entry : stdfs::directory_iterator(Dir, EC)) {
    if (Entry.is_regular_file(EC))
      Names.push_back(Entry.path().filename().string());
  }
  return Names;
}

void fs::removeAllFiles(const std::string &Dir) {
  std::error_code EC;
  for (const auto &Entry : stdfs::directory_iterator(Dir, EC)) {
    if (Entry.is_regular_file(EC))
      stdfs::remove(Entry.path(), EC);
  }
}

std::vector<fs::FileInfo> fs::listFilesWithInfo(const std::string &Dir) {
  std::vector<FileInfo> Out;
  std::error_code EC;
  for (const auto &Entry : stdfs::directory_iterator(Dir, EC)) {
    if (!Entry.is_regular_file(EC))
      continue;
    FileInfo Info;
    Info.Name = Entry.path().filename().string();
    Info.Bytes = Entry.file_size(EC);
    auto T = Entry.last_write_time(EC);
    Info.WriteTimeNs = static_cast<int64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            T.time_since_epoch())
            .count());
    Out.push_back(std::move(Info));
  }
  return Out;
}

void fs::touchFile(const std::string &Path) {
  std::error_code EC;
  stdfs::last_write_time(Path, stdfs::file_time_type::clock::now(), EC);
}

uint64_t fs::directorySize(const std::string &Dir) {
  uint64_t Total = 0;
  std::error_code EC;
  for (const auto &Entry : stdfs::directory_iterator(Dir, EC)) {
    if (Entry.is_regular_file(EC))
      Total += Entry.file_size(EC);
  }
  return Total;
}

std::optional<int64_t> fs::fileAgeNs(const std::string &Path) {
  std::error_code EC;
  auto T = stdfs::last_write_time(Path, EC);
  if (EC)
    return std::nullopt;
  auto Now = stdfs::file_time_type::clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Now - T).count();
}

bool fs::removeTree(const std::string &Path) {
  std::error_code EC;
  stdfs::remove_all(Path, EC);
  return !stdfs::exists(Path, EC);
}

std::string fs::makeTempDirectory(const std::string &Prefix) {
  std::error_code EC;
  stdfs::path Base = stdfs::temp_directory_path(EC);
  if (EC)
    Base = ".";
  for (;;) {
    stdfs::path Candidate = Base / (Prefix + "-" + uniqueNameToken());
    if (stdfs::create_directories(Candidate, EC) && !EC)
      return Candidate.string();
  }
}
