//===- Metrics.h - lock-free counters behind a named registry ---*- C++ -*-===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The metrics substrate of the JIT observability layer. A Registry owns
/// named Counter (monotonic u64) and TimerMetric (accumulated wall seconds)
/// instruments; creation is serialized, but every update on an obtained
/// handle is a relaxed atomic — hot paths (launches, async compile workers)
/// never contend on a stats lock. JitRuntimeStats snapshots are built by
/// enumerating a registry, so each counter is defined exactly once (see the
/// PROTEUS_JIT_COUNTERS / PROTEUS_JIT_TIMERS X-macros in jit/JitRuntime.h).
///
//===----------------------------------------------------------------------===//

#ifndef PROTEUS_SUPPORT_METRICS_H
#define PROTEUS_SUPPORT_METRICS_H

#include "support/Timer.h"

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace proteus {
namespace metrics {

/// Monotonic event counter; updates and reads are lock-free.
class Counter {
public:
  void add(uint64_t N = 1) { V.fetch_add(N, std::memory_order_relaxed); }
  uint64_t value() const { return V.load(std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> V{0};
};

/// Accumulated wall time. Stored as integer nanoseconds so concurrent
/// additions stay lock-free (atomic<double> fetch_add is not universally
/// lock-free); sub-nanosecond intervals round to zero.
class TimerMetric {
public:
  void addSeconds(double S) {
    if (S > 0)
      Nanos.fetch_add(static_cast<uint64_t>(S * 1e9),
                      std::memory_order_relaxed);
  }
  double seconds() const {
    return static_cast<double>(Nanos.load(std::memory_order_relaxed)) * 1e-9;
  }

private:
  std::atomic<uint64_t> Nanos{0};
};

/// RAII region that adds its scope's wall time to a TimerMetric on every
/// exit path — the fix for stage timings being dropped by early returns.
class ScopedTimer {
public:
  explicit ScopedTimer(TimerMetric &M) : M(M) {}
  ~ScopedTimer() { M.addSeconds(T.seconds()); }

  ScopedTimer(const ScopedTimer &) = delete;
  ScopedTimer &operator=(const ScopedTimer &) = delete;

private:
  TimerMetric &M;
  Timer T;
};

/// Owns named instruments. Handles returned by counter()/timer() are stable
/// for the registry's lifetime; looking up the same name twice returns the
/// same instrument (get-or-create).
class Registry {
public:
  Counter &counter(const std::string &Name);
  TimerMetric &timer(const std::string &Name);

  /// Snapshot of every counter / timer, sorted by name.
  std::vector<std::pair<std::string, uint64_t>> counterValues() const;
  std::vector<std::pair<std::string, double>> timerValues() const;

private:
  mutable std::mutex Mutex; // guards the maps, not the instruments
  std::map<std::string, std::unique_ptr<Counter>> Counters;
  std::map<std::string, std::unique_ptr<TimerMetric>> Timers;
};

/// Process-global registry for subsystems that have no natural per-instance
/// owner — e.g. the simulated GPU runtime's allocation diagnostics
/// ("gpu.free_unknown" / "gpu.free_double"), which must be visible even to
/// code that never constructs a JitRuntime. Never destroyed (safe to update
/// from atexit paths).
Registry &processRegistry();

} // namespace metrics
} // namespace proteus

#endif // PROTEUS_SUPPORT_METRICS_H
