//===- BinaryStream.h - byte-level serialization ----------------*- C++ -*-===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Little-endian byte writer/reader used by the bitcode (de)serializer and
/// the object-file format. The reader is bounds-checked and latches an error
/// flag instead of aborting, since its inputs include persistent-cache files
/// that may be truncated or corrupt.
///
//===----------------------------------------------------------------------===//

#ifndef PROTEUS_SUPPORT_BINARYSTREAM_H
#define PROTEUS_SUPPORT_BINARYSTREAM_H

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace proteus {

/// Appends fixed-width little-endian values to a byte buffer.
class ByteWriter {
public:
  void writeU8(uint8_t V) { Buf.push_back(V); }

  void writeU32(uint32_t V) {
    for (int I = 0; I < 4; ++I)
      Buf.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }

  void writeU64(uint64_t V) {
    for (int I = 0; I < 8; ++I)
      Buf.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }

  void writeF64(double V) {
    uint64_t Bits;
    std::memcpy(&Bits, &V, sizeof(Bits));
    writeU64(Bits);
  }

  void writeString(const std::string &S) {
    writeU32(static_cast<uint32_t>(S.size()));
    Buf.insert(Buf.end(), S.begin(), S.end());
  }

  void writeBytes(const std::vector<uint8_t> &B) {
    writeU32(static_cast<uint32_t>(B.size()));
    Buf.insert(Buf.end(), B.begin(), B.end());
  }

  const std::vector<uint8_t> &data() const { return Buf; }
  std::vector<uint8_t> take() { return std::move(Buf); }

private:
  std::vector<uint8_t> Buf;
};

/// Bounds-checked reader over a byte buffer. After any failed read, ok()
/// returns false and subsequent reads yield zeros.
class ByteReader {
public:
  explicit ByteReader(const std::vector<uint8_t> &Buf) : Buf(Buf) {}

  bool ok() const { return !Failed; }
  size_t remaining() const { return Failed ? 0 : Buf.size() - Pos; }

  uint8_t readU8() {
    if (!require(1))
      return 0;
    return Buf[Pos++];
  }

  uint32_t readU32() {
    if (!require(4))
      return 0;
    uint32_t V = 0;
    for (int I = 0; I < 4; ++I)
      V |= static_cast<uint32_t>(Buf[Pos++]) << (8 * I);
    return V;
  }

  uint64_t readU64() {
    if (!require(8))
      return 0;
    uint64_t V = 0;
    for (int I = 0; I < 8; ++I)
      V |= static_cast<uint64_t>(Buf[Pos++]) << (8 * I);
    return V;
  }

  double readF64() {
    uint64_t Bits = readU64();
    double V;
    std::memcpy(&V, &Bits, sizeof(V));
    return V;
  }

  std::string readString() {
    uint32_t N = readU32();
    if (!require(N))
      return std::string();
    std::string S(reinterpret_cast<const char *>(Buf.data() + Pos), N);
    Pos += N;
    return S;
  }

  std::vector<uint8_t> readBytes() {
    uint32_t N = readU32();
    if (!require(N))
      return {};
    std::vector<uint8_t> B(Buf.begin() + static_cast<long>(Pos),
                           Buf.begin() + static_cast<long>(Pos + N));
    Pos += N;
    return B;
  }

private:
  bool require(size_t N) {
    if (Failed || Buf.size() - Pos < N) {
      Failed = true;
      return false;
    }
    return true;
  }

  const std::vector<uint8_t> &Buf;
  size_t Pos = 0;
  bool Failed = false;
};

} // namespace proteus

#endif // PROTEUS_SUPPORT_BINARYSTREAM_H
