//===- Trace.h - structured runtime tracing ---------------------*- C++ -*-===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The structured-tracing half of the JIT observability layer: thread-safe
/// scoped spans with nesting, instant events, and counter series, recorded
/// with monotonic timestamps into a bounded ring-buffer sink and exported
/// as chrome://tracing-compatible JSON ("trace event format"). Open the
/// export in chrome://tracing or https://ui.perfetto.dev to see the paper's
/// Figure 5/6 stage attribution per launch, per worker thread.
///
/// Activation:
///   * `PROTEUS_TRACE=<file>` — trace the whole process; the export is
///     written to <file> at exit (and on trace::stop()). Optional
///     `PROTEUS_TRACE_BUFFER=<events>` sizes the ring buffer.
///   * programmatic: trace::start()/trace::stop() (used by tests).
///
/// When no session is active every probe is a relaxed atomic load plus a
/// predicted-not-taken branch — cheap enough to leave compiled in
/// everywhere (figure6 regresses < 1% with tracing unset).
///
/// The ring buffer overwrites the oldest events when full (droppedEvents()
/// reports how many); the set of distinct event names ever recorded is kept
/// separately and exported in the JSON metadata, so "did stage X run?"
/// questions survive wraparound.
///
//===----------------------------------------------------------------------===//

#ifndef PROTEUS_SUPPORT_TRACE_H
#define PROTEUS_SUPPORT_TRACE_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace proteus {
namespace trace {

namespace detail {
extern std::atomic<bool> EnabledFlag;
} // namespace detail

/// True while a trace session is collecting events. This is the fast-path
/// probe every instrumentation site checks first.
inline bool enabled() {
  return detail::EnabledFlag.load(std::memory_order_relaxed);
}

/// Default ring-buffer capacity in events (~12 MB).
constexpr size_t DefaultCapacity = size_t(1) << 18;

/// Starts a session: resets the ring buffer and enables collection.
/// \p OutputPath may be empty (export only via exportJson()/writeJson()).
void start(const std::string &OutputPath,
           size_t CapacityEvents = DefaultCapacity);

/// Disables collection and, when the session has an output path, writes the
/// export there. The buffer stays readable until the next start().
void stop();

/// Renders the current buffer as chrome://tracing JSON.
std::string exportJson();

/// Writes exportJson() to \p Path. Returns false on I/O failure.
bool writeJson(const std::string &Path);

/// Events currently held in the ring buffer.
size_t recordedEvents();

/// Events overwritten because the ring buffer was full.
uint64_t droppedEvents();

/// Interns \p Name into session-lifetime storage and returns a stable
/// pointer — the form every recording call expects. Interning the same
/// string twice returns the same pointer. Usable whether or not a session
/// is active.
const char *internName(const std::string &Name);

/// Records an instant event (a point in time, rendered as a tick).
void instant(const char *Name, const char *Cat = "proteus");

/// Records one sample of a counter series (queue depth, occupancy, ...).
void counterValue(const char *Name, double Value);

/// Records a complete span from explicit timestamps (used by Span; exposed
/// for instrumentation that cannot use RAII scoping).
void complete(const char *Name, const char *Cat, uint64_t StartNs,
              uint64_t DurNs);

/// Synthetic track ids for simulated GPU stream timelines. Lane spans are
/// recorded with an explicit tid (instead of the calling thread's) so
/// chrome://tracing renders one horizontal lane per device:stream and
/// overlapping launches on independent streams show up as parallel bars.
/// The base keeps lanes clear of real thread ids (which count up from 1).
constexpr uint32_t LaneTidBase = 1u << 20;

/// Track id for device \p DeviceOrdinal, stream \p StreamId.
inline uint32_t laneTid(unsigned DeviceOrdinal, unsigned StreamId) {
  return LaneTidBase + DeviceOrdinal * 1024u + StreamId;
}

/// Records a complete span on an explicit synthetic track. Timestamps are
/// the caller's own coordinate space (the GPU engine uses simulated-time
/// nanoseconds); spans on one lane must not partially overlap, which stream
/// FIFO timelines guarantee by construction.
void lane(const char *Name, const char *Cat, uint32_t Tid, uint64_t TsNs,
          uint64_t DurNs);

/// Monotonic nanoseconds since the session started.
uint64_t nowNs();

/// RAII scoped span: records a complete event covering the constructor-to-
/// destructor interval on the current thread. Nesting is tracked per
/// thread and exported (args.depth) so tests can assert span structure.
/// \p Name and \p Cat must outlive the session: use string literals or
/// internName().
class Span {
public:
  explicit Span(const char *Name, const char *Cat = "proteus");
  ~Span();

  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;

private:
  const char *Name;
  const char *Cat;
  uint64_t StartNs;
  bool Active;
};

/// Structural validation of an exported trace file, shared by
/// tools/trace_validate and the test suite. Checks that the file is valid
/// JSON in trace-event format, that per-thread 'X' spans are properly
/// nested (no partial overlap), and that every \p RequiredNames entry
/// appears among the recorded event names (the metadata name set counts,
/// so wraparound does not fail the check).
bool validateTraceFile(const std::string &Path,
                       const std::vector<std::string> &RequiredNames,
                       std::string *ErrorOut);

} // namespace trace
} // namespace proteus

#endif // PROTEUS_SUPPORT_TRACE_H
