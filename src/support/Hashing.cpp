//===- Hashing.cpp - FNV-1a hashing utilities -----------------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//

#include "support/Hashing.h"

#include <array>

using namespace proteus;

std::string proteus::hashToHex(uint64_t Hash) {
  static const char Digits[] = "0123456789abcdef";
  std::array<char, 16> Buf;
  for (int I = 15; I >= 0; --I) {
    Buf[I] = Digits[Hash & 0xF];
    Hash >>= 4;
  }
  return std::string(Buf.data(), Buf.size());
}
