//===- Metrics.cpp - lock-free counters behind a named registry -------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//

#include "support/Metrics.h"

using namespace proteus;
using namespace proteus::metrics;

Counter &Registry::counter(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto &Slot = Counters[Name];
  if (!Slot)
    Slot = std::make_unique<Counter>();
  return *Slot;
}

TimerMetric &Registry::timer(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto &Slot = Timers[Name];
  if (!Slot)
    Slot = std::make_unique<TimerMetric>();
  return *Slot;
}

std::vector<std::pair<std::string, uint64_t>> Registry::counterValues() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::vector<std::pair<std::string, uint64_t>> Out;
  Out.reserve(Counters.size());
  for (const auto &[Name, C] : Counters)
    Out.emplace_back(Name, C->value());
  return Out;
}

Registry &proteus::metrics::processRegistry() {
  // Intentionally leaked: counters may be bumped from atexit hooks after
  // function-local static destructors have run.
  static Registry *R = new Registry;
  return *R;
}

std::vector<std::pair<std::string, double>> Registry::timerValues() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::vector<std::pair<std::string, double>> Out;
  Out.reserve(Timers.size());
  for (const auto &[Name, T] : Timers)
    Out.emplace_back(Name, T->seconds());
  return Out;
}
