//===- Jitify.h - source-string JIT baseline (Jitify-sim) -------*- C++ -*-===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A faithful stand-in for NVIDIA's Jitify used as the paper's comparator:
///
///  * kernels are provided as *source strings* (PIR assembly here, CUDA C++
///    there) and the full front end runs at every cache-missing launch —
///    including re-parsing the bundled single-header library text that
///    real Jitify drags into every translation unit (this is where both
///    its higher JIT overhead, Figure 4, and its AOT compile-time
///    inflation, Figure 5, come from);
///  * specialization happens through template parameters — designated
///    arguments are folded, like Proteus's RCF, but there is no
///    launch-bounds specialization (the paper's Table 4: Jitify has no
///    IR-level runtime optimizations);
///  * nvcc's more aggressive loop unrolling is modeled with a larger unroll
///    threshold, so Jitify-generated kernels are sometimes faster
///    (WSM5-like) and sometimes slower (register pressure) than Proteus's;
///  * caching is in-memory only and user-managed (the experimental API);
///    nothing persists across runs;
///  * NVIDIA only: constructing it for the AMD target fails.
///
//===----------------------------------------------------------------------===//

#ifndef PROTEUS_JITIFY_JITIFY_H
#define PROTEUS_JITIFY_JITIFY_H

#include "gpu/Runtime.h"
#include "transforms/O3Pipeline.h"

#include <map>
#include <string>

namespace proteus {

/// Cumulative Jitify-sim accounting.
struct JitifyStats {
  uint64_t Launches = 0;
  uint64_t Compilations = 0;
  uint64_t CacheHits = 0;
  double FrontendSeconds = 0; // parsing (header + kernel source)
  double OptimizeSeconds = 0;
  double BackendSeconds = 0;
};

/// The single-header runtime-compilation library, simulated.
class JitifyRuntime {
public:
  /// Fails (ok() == false) on non-NVIDIA devices — Jitify is CUDA-only.
  explicit JitifyRuntime(gpu::Device &Dev);

  bool ok() const { return Supported; }

  /// Registers a kernel program as stringified source, with the template
  /// parameters (1-based kernel argument indices) to instantiate per launch.
  void addProgram(const std::string &Symbol, std::string SourceText,
                  std::vector<uint32_t> TemplateArgIndices);

  /// instantiate(...).configure(grid, block).launch(args) equivalent.
  gpu::GpuError launch(const std::string &Symbol, gpu::Dim3 Grid,
                       gpu::Dim3 Block,
                       const std::vector<gpu::KernelArg> &Args,
                       std::string *Error = nullptr);

  const JitifyStats &stats() const { return Stats; }

  /// The synthetic single-header library text; parsing it models both the
  /// runtime front-end cost and the AOT inclusion cost. Exposed so the
  /// Figure 5 benchmark can measure "compiling a TU that includes
  /// jitify.hpp".
  static const std::string &headerText();

private:
  struct Program {
    std::string Source;
    std::vector<uint32_t> TemplateArgs;
  };

  gpu::Device &Dev;
  bool Supported;
  JitifyStats Stats;
  std::map<std::string, Program> Programs;
  /// User-managed in-memory cache: instantiation key -> loaded kernel.
  std::map<uint64_t, gpu::LoadedKernel *> Cache;
};

} // namespace proteus

#endif // PROTEUS_JITIFY_JITIFY_H
