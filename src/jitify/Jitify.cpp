//===- Jitify.cpp - source-string JIT baseline (Jitify-sim) -----------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//

#include "jitify/Jitify.h"

#include "codegen/Compiler.h"
#include "ir/Context.h"
#include "ir/IRParser.h"
#include "ir/Module.h"
#include "support/Hashing.h"
#include "support/StringUtils.h"
#include "support/Timer.h"
#include "transforms/SpecializeArgs.h"

using namespace proteus;
using namespace proteus::gpu;

const std::string &JitifyRuntime::headerText() {
  // A deterministic ~160KB "single-header library": hundreds of inlined
  // device helper functions. The front end must lex and parse all of it on
  // every runtime compilation, like jitify.hpp's preincluded headers.
  static const std::string &Text = *[] {
    auto *S = new std::string();
    S->reserve(200'000);
    *S += "module \"jitify_header\"\n";
    for (int I = 0; I < 400; ++I) {
      *S += formatString("device @__jitify_helper_%d(%%x: f64, %%y: f64) : "
                         "f64 always_inline {\n",
                         I);
      *S += "entry:\n";
      *S += formatString("  %%a = fmul %%x, f64 %d.5\n", I);
      *S += "  %a2 = fadd %a, %y\n";
      *S += formatString("  %%b = fdiv %%a2, f64 %d.25\n", I + 1);
      *S += "  %c = fmax %b, %x\n";
      *S += "  %d = fmin %c, %y\n";
      *S += "  %e = fsub %d, %a\n";
      *S += "  %f = fmul %e, %e\n";
      *S += "  ret %f\n";
      *S += "}\n";
    }
    return S;
  }();
  return Text;
}

JitifyRuntime::JitifyRuntime(Device &Dev)
    : Dev(Dev), Supported(Dev.target().Arch == GpuArch::NvPtxSim) {}

void JitifyRuntime::addProgram(const std::string &Symbol,
                               std::string SourceText,
                               std::vector<uint32_t> TemplateArgIndices) {
  Programs[Symbol] =
      Program{std::move(SourceText), std::move(TemplateArgIndices)};
}

GpuError JitifyRuntime::launch(const std::string &Symbol, Dim3 Grid,
                               Dim3 Block,
                               const std::vector<KernelArg> &Args,
                               std::string *Error) {
  if (!Supported) {
    if (Error)
      *Error = "jitify-sim supports only the nvptx-sim target";
    return GpuError::InvalidValue;
  }
  ++Stats.Launches;
  auto PIt = Programs.find(Symbol);
  if (PIt == Programs.end()) {
    if (Error)
      *Error = "no jitify program registered for @" + Symbol;
    return GpuError::NotFound;
  }
  const Program &P = PIt->second;

  // Instantiation key: source + template parameter values. Note: no module
  // identity beyond the source text, no launch-bounds component — Jitify
  // specializes only through template parameters.
  FNV1aHash H;
  H.update(P.Source);
  H.update(Symbol);
  for (uint32_t OneBased : P.TemplateArgs) {
    uint32_t Idx = OneBased - 1;
    if (Idx < Args.size()) {
      H.update(Idx);
      H.update(Args[Idx].Bits);
    }
  }
  uint64_t Key = H.digest();
  if (auto CIt = Cache.find(Key); CIt != Cache.end()) {
    ++Stats.CacheHits;
    return gpuLaunchKernel(Dev, *CIt->second, Grid, Block, Args, Error);
  }

  // --- Full front end: parse the header library, then the program ----------
  ++Stats.Compilations;
  Timer FrontT;
  pir::Context HeaderCtx;
  pir::ParseResult Header = pir::parseModule(HeaderCtx, headerText());
  if (!Header) {
    if (Error)
      *Error = "jitify-sim header failed to parse: " + Header.Error;
    return GpuError::InvalidValue;
  }
  pir::Context Ctx;
  pir::ParseResult R = pir::parseModule(Ctx, P.Source);
  Stats.FrontendSeconds += FrontT.seconds();
  if (!R) {
    if (Error)
      *Error = "jitify-sim source failed to parse: " + R.Error;
    return GpuError::InvalidValue;
  }
  pir::Function *F = R.M->getFunction(Symbol);
  if (!F || !F->isKernel()) {
    if (Error)
      *Error = "jitify-sim: source does not define kernel @" + Symbol;
    return GpuError::InvalidValue;
  }

  // --- Template instantiation: fold the designated parameters --------------
  std::vector<RuntimeArgValue> Folded;
  for (uint32_t OneBased : P.TemplateArgs) {
    uint32_t Idx = OneBased - 1;
    if (Idx < Args.size() && Idx < F->getNumArgs())
      Folded.push_back(RuntimeArgValue{Idx, Args[Idx].Bits});
  }
  specializeArguments(*F, Folded);
  // No launch-bounds specialization: nvcc compiles with whatever static
  // bounds the source carries (none here).
  F->clearLaunchBounds();

  // --- Optimize + compile ----------------------------------------------------
  // nvcc's optimizer unrolls more aggressively than the conservative
  // settings Proteus uses.
  Timer OptT;
  O3Options Opts;
  Opts.Unroll.MaxTripCount = 128;
  Opts.Unroll.MaxExpandedInstructions = 16384;
  runO3(*R.M, Opts);
  Stats.OptimizeSeconds += OptT.seconds();

  Timer BackT;
  std::vector<uint8_t> Object =
      compileKernelToObject(*F, Dev.target(), nullptr);
  Stats.BackendSeconds += BackT.seconds();

  LoadedKernel *K = nullptr;
  std::string LoadErr;
  GpuError E = gpuModuleLoad(Dev, &K, Object, &LoadErr);
  if (E != GpuError::Success) {
    if (Error)
      *Error = "jitify-sim failed to load kernel: " + LoadErr;
    return E;
  }
  Cache[Key] = K;
  return gpuLaunchKernel(Dev, *K, Grid, Block, Args, Error);
}
