//===- Adam.cpp - ADAM optimizer benchmark (HeCBench-sim) -------------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
//
// The Adam optimizer update kernel (paper Listing 1): one parameter element
// per thread, straight-line math. All scalar hyper-parameters are annotated
// (arguments 5-11 and 13, exactly as in the paper; `mode` is not). Runtime
// constant folding collapses the pow-based bias corrections — computed per
// element without specialization — into constants, the dominant effect in
// the paper's Figure 7 (VALUInsts 108854 -> 75226 per workitem on AMD).
//
//===----------------------------------------------------------------------===//

#include "hecbench/Benchmark.h"
#include "hecbench/KernelUtil.h"

#include <cmath>

using namespace proteus;
using namespace proteus::hecbench;
using namespace pir;

namespace {

constexpr uint32_t VectorSize = 65536;
constexpr uint32_t BlockSize = 256;
constexpr uint32_t NumIterations = 2;
constexpr int32_t TimeStep = 1000;

class AdamBenchmark : public Benchmark {
public:
  std::string name() const override { return "ADAM"; }
  std::string domain() const override { return "Machine Learning"; }
  std::string inputDescription() const override { return "65536 256 2"; }

  uint64_t timeScale() const override { return 1500; }

  std::unique_ptr<Module> buildModule(Context &Ctx) const override {
    auto M = std::make_unique<Module>(Ctx, "adam");
    IRBuilder B(Ctx);
    Type *F64 = Ctx.getF64Ty();
    Type *Ptr = Ctx.getPtrTy();
    Type *I32 = Ctx.getI32Ty();

    Function *F = M->createFunction(
        "adam", Ctx.getVoidTy(),
        {Ptr, Ptr, Ptr, Ptr, F64, F64, F64, F64, F64, I32, I32, I32, F64},
        {"p", "m", "v", "g", "b1", "b2", "eps", "grad_scale", "step_size",
         "time_step", "vector_size", "mode", "decay"},
        FunctionKind::Kernel);
    // Paper Listing 1: annotate all scalar hyper-parameters; `mode` here
    // selects the Nesterov variant and is annotated too (argument 12).
    F->setJitAnnotation(JitAnnotation{{5, 6, 7, 8, 9, 10, 11, 12, 13}});

    Value *P = F->getArg(0), *Mv = F->getArg(1), *Vv = F->getArg(2),
          *G = F->getArg(3);
    Value *B1 = F->getArg(4), *B2 = F->getArg(5), *Eps = F->getArg(6);
    Value *GradScale = F->getArg(7), *StepSize = F->getArg(8);
    Value *TimeStepA = F->getArg(9), *VecSize = F->getArg(10);
    Value *Mode = F->getArg(11), *Decay = F->getArg(12);

    B.setInsertPoint(F->createBlock("entry", Ctx.getVoidTy()));
    BasicBlock *Work = nullptr, *Exit = nullptr;
    Value *Gtid = emitGuardedPrologue(B, F, VecSize, Work, Exit);

    Value *Gp = B.createGep(F64, G, Gtid, "gp");
    Value *Gvv = B.createLoad(F64, Gp, "gv");
    Value *Sg = B.createFDiv(Gvv, GradScale, "scaled_grad");
    Value *Mp = B.createGep(F64, Mv, Gtid, "mp");
    Value *Mold = B.createLoad(F64, Mp, "mold");
    Value *Vp = B.createGep(F64, Vv, Gtid, "vp");
    Value *Vold = B.createLoad(F64, Vp, "vold");
    Value *Pp = B.createGep(F64, P, Gtid, "pp");
    Value *Pold = B.createLoad(F64, Pp, "pold");

    Value *One = B.getDouble(1.0);
    Value *OneMinusB1 = B.createFSub(One, B1);
    Value *OneMinusB2 = B.createFSub(One, B2);
    Value *Mnew = B.createFAdd(B.createFMul(B1, Mold),
                               B.createFMul(OneMinusB1, Sg), "mnew");
    Value *Sg2 = B.createFMul(Sg, Sg);
    Value *Vnew = B.createFAdd(B.createFMul(B2, Vold),
                               B.createFMul(OneMinusB2, Sg2), "vnew");

    // Bias corrections: pow(b, t) per element — the RCF target.
    Value *Tf = B.createSIToFP(TimeStepA, F64, "tf");
    Value *Bc1 = B.createFSub(One, B.createPow(B1, Tf), "bc1");
    Value *Bc2 = B.createFSub(One, B.createPow(B2, Tf), "bc2");
    Value *Mhat = B.createFDiv(Mnew, Bc1, "mhat");
    Value *Vhat = B.createFDiv(Vnew, Bc2, "vhat");

    // Learning-rate schedule recomputed per element from the folded
    // hyper-parameters: a warmup/decay chain that disappears entirely
    // under RCF.
    Value *Lr = StepSize;
    for (int K = 0; K != 6; ++K) {
      Value *Warm = B.createFDiv(
          Tf, B.createFAdd(Tf, B.getDouble(100.0 * (K + 1))),
          "warm" + std::to_string(K));
      Value *Cosine = B.createCos(
          B.createFMul(Warm, B.getDouble(0.15 + 0.01 * K)));
      Lr = B.createFMul(
          Lr, B.createFAdd(B.getDouble(0.98), B.createFMul(
                                                  Cosine,
                                                  B.getDouble(0.02)))
          , "lr" + std::to_string(K));
    }

    // Mode 0: bias-corrected denominator; mode 1: Nesterov look-ahead with
    // a heavier divergent computation. GPU-style selects — both sides are
    // computed unless specialization folds the selection away (the paper's
    // dominant executed-instruction reduction for ADAM).
    Value *Den0 = B.createFAdd(B.createSqrt(Vhat), Eps, "den0");
    Value *Upd0 = B.createFDiv(B.createFMul(Lr, Mhat), Den0, "upd0");
    Value *Look = Mnew;
    for (int K = 0; K != 5; ++K) {
      Value *Blend = B.createFAdd(
          B.createFMul(B1, Look),
          B.createFMul(OneMinusB1, B.createFMul(Sg, B.getDouble(1.0 +
                                                                0.1 * K))),
          "look" + std::to_string(K));
      Look = B.createFAdd(
          Blend, B.createFMul(B.createSqrt(B.createFabs(Blend)),
                              B.getDouble(1e-3)));
    }
    Value *Den1 = B.createFAdd(B.createSqrt(Vnew), Eps, "den1");
    Value *Upd1 = B.createFDiv(B.createFMul(Lr, Look), Den1, "upd1");
    Value *IsMode0 = B.createICmp(ICmpPred::EQ, Mode, B.getInt32(0));
    Value *Upd = B.createSelect(IsMode0, Upd0, Upd1, "upd");
    Value *WithDecay =
        B.createFAdd(Upd, B.createFMul(Decay, Pold), "upd_decay");
    Value *Pnew = B.createFSub(Pold, WithDecay, "pnew");

    B.createStore(Mnew, Mp);
    B.createStore(Vnew, Vp);
    B.createStore(Pnew, Pp);
    B.createRet();
    return M;
  }

  std::vector<BufferSpec> buffers() const override {
    std::vector<double> P(VectorSize), M(VectorSize), V(VectorSize),
        G(VectorSize);
    uint64_t S = 12345;
    auto Next = [&S] {
      S = S * 6364136223846793005ull + 1442695040888963407ull;
      return static_cast<double>(S >> 11) / 9007199254740992.0;
    };
    for (uint32_t I = 0; I != VectorSize; ++I) {
      P[I] = Next() - 0.5;
      M[I] = 0.0;
      V[I] = 0.0;
      G[I] = Next() * 2.0 - 1.0;
    }
    return {BufferSpec::fromDoubles("p", P), BufferSpec::fromDoubles("m", M),
            BufferSpec::fromDoubles("v", V), BufferSpec::fromDoubles("g", G)};
  }

  std::vector<LaunchSpec> launches() const override {
    std::vector<LaunchSpec> Out;
    for (uint32_t Iter = 0; Iter != NumIterations; ++Iter) {
      LaunchSpec L;
      L.Symbol = "adam";
      L.Grid = gpu::Dim3{VectorSize / BlockSize, 1, 1};
      L.Block = gpu::Dim3{BlockSize, 1, 1};
      L.Args = {ArgSpec::buffer("p"),
                ArgSpec::buffer("m"),
                ArgSpec::buffer("v"),
                ArgSpec::buffer("g"),
                ArgSpec::scalarF64(0.9),
                ArgSpec::scalarF64(0.999),
                ArgSpec::scalarF64(1e-8),
                ArgSpec::scalarF64(8.0),
                ArgSpec::scalarF64(1e-3),
                ArgSpec::scalarI32(TimeStep),
                ArgSpec::scalarI32(static_cast<int32_t>(VectorSize)),
                ArgSpec::scalarI32(0),
                ArgSpec::scalarF64(1e-4)};
      Out.push_back(std::move(L));
    }
    return Out;
  }

  bool verifyOutput(const BufferReader &Out) const override {
    // Replicate the update on the host for a sample of elements (exact
    // operation order) and compare; full bit-exactness is covered by the
    // interpreter cross-check in tests.
    std::vector<double> P(VectorSize), M(VectorSize), V(VectorSize),
        G(VectorSize);
    {
      uint64_t S = 12345;
      auto Next = [&S] {
        S = S * 6364136223846793005ull + 1442695040888963407ull;
        return static_cast<double>(S >> 11) / 9007199254740992.0;
      };
      for (uint32_t I = 0; I != VectorSize; ++I) {
        P[I] = Next() - 0.5;
        M[I] = 0.0;
        V[I] = 0.0;
        G[I] = Next() * 2.0 - 1.0;
      }
    }
    const double B1 = 0.9, B2 = 0.999, Eps = 1e-8, GS = 8.0, SS = 1e-3,
                 Decay = 1e-4;
    for (uint32_t Iter = 0; Iter != NumIterations; ++Iter) {
      for (uint32_t I = 0; I != VectorSize; ++I) {
        double Sg = G[I] / GS;
        double Mn = B1 * M[I] + (1.0 - B1) * Sg;
        double Vn = B2 * V[I] + (1.0 - B2) * (Sg * Sg);
        double Bc1 = 1.0 - std::pow(B1, static_cast<double>(TimeStep));
        double Bc2 = 1.0 - std::pow(B2, static_cast<double>(TimeStep));
        double Tf = static_cast<double>(TimeStep);
        double Lr = SS;
        for (int K = 0; K != 6; ++K) {
          double Warm = Tf / (Tf + 100.0 * (K + 1));
          double Cosine = std::cos(Warm * (0.15 + 0.01 * K));
          Lr = Lr * (0.98 + Cosine * 0.02);
        }
        double Upd = (Lr * (Mn / Bc1)) / (std::sqrt(Vn / Bc2) + Eps);
        P[I] = P[I] - (Upd + Decay * P[I]);
        M[I] = Mn;
        V[I] = Vn;
      }
    }
    std::vector<double> GotP = Out.doubles("p");
    if (GotP.size() != VectorSize)
      return false;
    for (uint32_t I = 0; I < VectorSize; I += 97) {
      if (!std::isfinite(GotP[I]))
        return false;
      if (std::fabs(GotP[I] - P[I]) > 1e-9 * (1.0 + std::fabs(P[I])))
        return false;
    }
    return true;
  }
};

} // namespace

std::unique_ptr<Benchmark> proteus::hecbench::makeAdamBenchmark() {
  return std::make_unique<AdamBenchmark>();
}
