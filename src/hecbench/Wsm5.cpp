//===- Wsm5.cpp - WSM5 cloud-microphysics benchmark (HeCBench-sim) -----------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
//
// WRF Single-Moment 5-class microphysics analogue: each thread processes an
// atmospheric column level by level. The kernel combines every mechanism
// the paper's Figure 9 discusses:
//
//  * selects over annotated physics configuration (the freezing path is
//    computed unconditionally on GPUs and folds away under RCF),
//  * pow with an annotated exponent (expands to multiplies under RCF),
//  * the level loop bound is annotated (full unroll under RCF),
//  * a wide band of live microphysics rates creates register pressure that
//    spills under the conservative AMD no-launch-bounds budget (LB effect),
//  * local accumulators are written through allocas (exercising mem2reg).
//
//===----------------------------------------------------------------------===//

#include "hecbench/Benchmark.h"
#include "hecbench/KernelUtil.h"

#include <cmath>

using namespace proteus;
using namespace proteus::hecbench;
using namespace pir;

namespace {

constexpr uint32_t NumCols = 2048;
constexpr uint32_t BlockSize = 128;
constexpr int32_t Levels = 32; // above the unroll cap: RCF folds, never unrolls
constexpr uint32_t NumIterations = 3;

class Wsm5Benchmark : public Benchmark {
public:
  std::string name() const override { return "WSM5"; }
  std::string domain() const override { return "Weather Simulation"; }
  std::string inputDescription() const override { return "10"; }

  uint64_t timeScale() const override { return 700; }

  std::unique_ptr<Module> buildModule(Context &Ctx) const override {
    auto M = std::make_unique<Module>(Ctx, "wsm5");
    IRBuilder B(Ctx);
    Type *F64 = Ctx.getF64Ty();
    Type *Ptr = Ctx.getPtrTy();
    Type *I32 = Ctx.getI32Ty();

    Function *F = M->createFunction(
        "wsm5", Ctx.getVoidTy(),
        {Ptr, Ptr, Ptr, Ptr, Ptr, Ptr, I32, I32, F64, F64, F64, I32, F64},
        {"t", "q", "qc", "qr", "den", "p", "levels", "ncols", "qck1",
         "expo", "xlv", "pfrz", "dtcld"},
        FunctionKind::Kernel);
    F->setJitAnnotation(JitAnnotation{{7, 9, 10, 11, 12, 13}});

    Value *T = F->getArg(0), *Q = F->getArg(1), *Qc = F->getArg(2),
          *Qr = F->getArg(3), *Den = F->getArg(4), *P = F->getArg(5);
    Value *LevelsA = F->getArg(6), *NCols = F->getArg(7);
    Value *Qck1 = F->getArg(8), *Expo = F->getArg(9), *Xlv = F->getArg(10);
    Value *Pfrz = F->getArg(11), *Dtcld = F->getArg(12);

    B.setInsertPoint(F->createBlock("entry", Ctx.getVoidTy()));
    BasicBlock *Work = nullptr, *Exit = nullptr;
    Value *Col = emitGuardedPrologue(B, F, NCols, Work, Exit);

    // Local accumulators through memory (promoted by mem2reg).
    Value *RainSlot = B.createAlloca(F64, 1, "rain");
    Value *HeatSlot = B.createAlloca(F64, 1, "heat");
    B.createStore(B.getDouble(0.0), RainSlot);
    B.createStore(B.getDouble(0.0), HeatSlot);

    LoopEmitter L = beginCountedLoop(B, F, LevelsA, "lev");
    {
      Value *Idx = B.createAdd(B.createMul(L.Index, NCols), Col, "idx");
      Value *Tp = B.createGep(F64, T, Idx);
      Value *Qp = B.createGep(F64, Q, Idx);
      Value *Qcp = B.createGep(F64, Qc, Idx);
      Value *Qrp = B.createGep(F64, Qr, Idx);
      Value *Tv = B.createLoad(F64, Tp, "tv");
      Value *Qv = B.createLoad(F64, Qp, "qv");
      Value *Qcv = B.createLoad(F64, Qcp, "qcv");
      Value *Qrv = B.createLoad(F64, Qrp, "qrv");
      Value *Dv = B.createLoad(F64, B.createGep(F64, Den, Idx), "dv");
      Value *Pv = B.createLoad(F64, B.createGep(F64, P, Idx), "pv");

      // Saturation vapor pressure (Bolton) and mixing ratio.
      Value *Tc = B.createFSub(Tv, B.getDouble(273.15), "tc");
      Value *EsArg = B.createFDiv(B.createFMul(B.getDouble(17.67), Tc),
                                  B.createFSub(Tv, B.getDouble(29.65)));
      Value *Es = B.createFMul(B.getDouble(611.2), B.createExp(EsArg), "es");
      Value *Qs = B.createFDiv(B.createFMul(B.getDouble(0.622), Es),
                               B.createFSub(Pv, Es), "qs");
      Value *SuperSat = B.createFSub(Qv, Qs, "supersat");

      // A wide band of simultaneously live microphysics rates: computed
      // up front, combined at the end (register pressure).
      std::vector<Value *> Rates;
      Value *Prev = SuperSat;
      for (int R = 0; R != 8; ++R) {
        Value *Scale = B.getDouble(0.11 + 0.07 * R);
        Value *Mix = R % 2 ? Qcv : Qrv;
        Value *Rate = B.createFAdd(
            B.createFMul(Prev, Scale),
            B.createFMul(Mix, B.getDouble(1.0 - 0.03 * R)),
            "rate" + std::to_string(R));
        Rates.push_back(Rate);
        Prev = Rate;
      }

      // Condensation (clamped).
      Value *Cond = B.createFMax(
          B.createFMul(SuperSat, B.createFMul(Dtcld, B.getDouble(0.5))),
          B.getDouble(0.0), "cond");

      // Warm-rain autoconversion: pow with annotated exponent.
      Value *Auto0 =
          B.createFMul(Qck1, B.createPow(B.createFMax(Qcv, B.getDouble(1e-12)),
                                         Expo),
                       "auto_warm");
      // Freezing branch (pfrz): heavy exp/log chain, computed
      // unconditionally, folded away by RCF when pfrz == 0.
      Value *FrzA = B.createExp(
          B.createFMul(B.getDouble(-0.66), Tc), "frz_exp");
      Value *FrzB = B.createLog(
          B.createFAdd(B.createFMul(Qrv, Dv), B.getDouble(1.0)), "frz_log");
      Value *FrzC = B.createSqrt(
          B.createFAdd(B.createFMul(FrzA, FrzA),
                       B.createFMul(FrzB, FrzB)), "frz_mag");
      // Ice nucleation rate: a serial Bigg-style freezing series — heavy
      // transcendental work that RCF eliminates entirely when pfrz == 0.
      Value *FrzSeries = FrzC;
      for (int T = 0; T != 5; ++T) {
        Value *Arg = B.createFMul(FrzSeries, B.getDouble(0.2 + 0.05 * T));
        Value *Grow = B.createExp(B.createFNeg(B.createFabs(Arg)));
        FrzSeries = B.createFAdd(
            B.createFMul(Grow, FrzB),
            B.createSqrt(B.createFAdd(B.createFMul(FrzSeries, FrzSeries),
                                      B.getDouble(1e-6))),
            "frz_ser" + std::to_string(T));
      }
      Value *FrzRate = B.createFMul(
          B.getDouble(20.0),
          B.createFMul(FrzSeries, B.createFMul(Qrv, FrzA)), "frz_rate");
      Value *IsFrz = B.createICmp(ICmpPred::EQ, Pfrz, B.getInt32(1));
      Value *AutoConv = B.createSelect(IsFrz, FrzRate, Auto0, "autoconv");

      // Combine every rate (keeps them all live until here).
      Value *Sum = B.getDouble(0.0);
      for (size_t R = 0; R != Rates.size(); ++R)
        Sum = B.createFAdd(Sum, Rates[R], "sum" + std::to_string(R));
      Value *Tend = B.createFMul(Sum, B.getDouble(1.0 / 8.0), "tend");

      // State updates.
      Value *DQc = B.createFSub(Cond, AutoConv, "dqc");
      Value *QcNew = B.createFMax(B.createFAdd(Qcv, DQc), B.getDouble(0.0));
      Value *QrNew = B.createFMax(
          B.createFAdd(Qrv, B.createFAdd(AutoConv, B.createFMul(
                                                       Tend,
                                                       B.getDouble(0.01)))),
          B.getDouble(0.0));
      Value *QNew = B.createFMax(B.createFSub(Qv, Cond), B.getDouble(0.0));
      Value *TNew = B.createFAdd(
          Tv, B.createFMul(Xlv, B.createFMul(Cond, B.getDouble(1.0 / 1004.0))),
          "tnew");
      B.createStore(TNew, Tp);
      B.createStore(QNew, Qp);
      B.createStore(QcNew, Qcp);
      B.createStore(QrNew, Qrp);

      // Column accumulators through the alloca slots.
      Value *Rain = B.createLoad(F64, RainSlot, "rain_in");
      B.createStore(B.createFAdd(Rain, QrNew), RainSlot);
      Value *Heat = B.createLoad(F64, HeatSlot, "heat_in");
      B.createStore(B.createFAdd(Heat, B.createFMul(Cond, Xlv)), HeatSlot);
    }
    closeCountedLoop(B, L, {});

    // Write the accumulated precipitation into level 0 of qr's column sum
    // area (reuse den buffer tail is avoided; store into t's first level
    // would corrupt inputs — use a dedicated output via qr[col] add).
    Value *RainOut = B.createLoad(F64, RainSlot, "rain_out");
    Value *HeatOut = B.createLoad(F64, HeatSlot, "heat_out");
    Value *OutP = B.createGep(F64, Qr, Col, "outp");
    Value *OutOld = B.createLoad(F64, OutP);
    B.createStore(
        B.createFAdd(OutOld, B.createFMul(RainOut, B.getDouble(1e-3))),
        OutP);
    Value *OutP2 = B.createGep(F64, T, Col, "outp2");
    Value *OutOld2 = B.createLoad(F64, OutP2);
    B.createStore(
        B.createFAdd(OutOld2, B.createFMul(HeatOut, B.getDouble(1e-9))),
        OutP2);
    B.createRet();
    return M;
  }

  std::vector<BufferSpec> buffers() const override {
    const uint32_t N = NumCols * static_cast<uint32_t>(Levels);
    std::vector<double> T(N), Q(N), Qc(N), Qr(N), Den(N), P(N);
    for (uint32_t I = 0; I != N; ++I) {
      uint32_t Lev = I / NumCols;
      T[I] = 260.0 + 0.002 * (I % NumCols) + 2.0 * Lev;
      Q[I] = 0.008 + 1e-6 * (I % 101);
      Qc[I] = 1e-4 + 1e-8 * (I % 37);
      Qr[I] = 5e-5 + 1e-8 * (I % 53);
      Den[I] = 1.2 - 0.05 * Lev;
      P[I] = 101325.0 - 8000.0 * Lev;
    }
    return {BufferSpec::fromDoubles("t", T),   BufferSpec::fromDoubles("q", Q),
            BufferSpec::fromDoubles("qc", Qc), BufferSpec::fromDoubles("qr", Qr),
            BufferSpec::fromDoubles("den", Den),
            BufferSpec::fromDoubles("p", P)};
  }

  std::vector<LaunchSpec> launches() const override {
    std::vector<LaunchSpec> Out;
    for (uint32_t Iter = 0; Iter != NumIterations; ++Iter) {
      LaunchSpec L;
      L.Symbol = "wsm5";
      L.Grid = gpu::Dim3{NumCols / BlockSize, 1, 1};
      L.Block = gpu::Dim3{BlockSize, 1, 1};
      L.Args = {ArgSpec::buffer("t"),
                ArgSpec::buffer("q"),
                ArgSpec::buffer("qc"),
                ArgSpec::buffer("qr"),
                ArgSpec::buffer("den"),
                ArgSpec::buffer("p"),
                ArgSpec::scalarI32(Levels),
                ArgSpec::scalarI32(static_cast<int32_t>(NumCols)),
                ArgSpec::scalarF64(1e-3), // qck1
                ArgSpec::scalarF64(2.0),  // expo: folds pow into multiplies
                ArgSpec::scalarF64(2.5e6),
                ArgSpec::scalarI32(0),    // pfrz off: freezing arm folds away
                ArgSpec::scalarF64(0.02)}; // dtcld
      Out.push_back(std::move(L));
    }
    return Out;
  }

  bool verifyOutput(const BufferReader &Out) const override {
    std::vector<double> T = Out.doubles("t");
    std::vector<double> Qr = Out.doubles("qr");
    if (T.empty() || Qr.empty())
      return false;
    for (double V : T)
      if (!std::isfinite(V) || V < 150.0 || V > 450.0)
        return false;
    for (double V : Qr)
      if (!std::isfinite(V) || V < 0.0 || V > 10.0)
        return false;
    return true;
  }
};

} // namespace

std::unique_ptr<Benchmark> proteus::hecbench::makeWsm5Benchmark() {
  return std::make_unique<Wsm5Benchmark>();
}
