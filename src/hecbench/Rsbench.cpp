//===- Rsbench.cpp - RSBench-like neutron transport benchmark (HeCBench-sim) ------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
//
// A multipole cross-section lookup proxy in the style of RSBench: every
// thread performs one energy lookup, sweeping all poles of all resonance
// windows while maintaining a wide band of running moment accumulators (the
// Doppler-broadened sigT/sigA/sigF/sigE partials and their curve-fit
// moments). The large number of simultaneously live accumulators is the
// point: under the conservative no-launch-bounds register budget the
// allocator spills heavily, and launch-bounds specialization recovers the
// paper's Figure 10 effect (large on AMD via spill elimination and L2
// recovery, milder on NVIDIA whose default budget is close to the kernel's
// demand). The pole sweep is far larger than the unroller's expansion cap,
// so RCF changes little here — launch bounds are the story, as in the
// paper.
//
//===----------------------------------------------------------------------===//

#include "hecbench/Benchmark.h"
#include "hecbench/KernelUtil.h"

#include <cmath>

using namespace proteus;
using namespace proteus::hecbench;
using namespace pir;

namespace {

constexpr uint32_t NumLookups = 1024;
constexpr uint32_t BlockSize = 256;
constexpr int32_t NumWindows = 5;
constexpr int32_t PolesPerWindow = 16; // power of two: RCF strength-reduces
                                       // the window decomposition division
constexpr uint32_t NumIterations = 2;
/// Accumulator band width: live pressure slightly above the NVIDIA default
/// budget and far above the AMD no-LB budget.
constexpr int NumMoments = 32;

class RsbenchBenchmark : public Benchmark {
public:
  std::string name() const override { return "RSBENCH"; }
  std::string domain() const override {
    return "Neutron Transport Algorithm";
  }
  std::string inputDescription() const override { return "-m event -s large"; }

  uint64_t timeScale() const override { return 400; }

  std::unique_ptr<Module> buildModule(Context &Ctx) const override {
    auto M = std::make_unique<Module>(Ctx, "rsbench");
    IRBuilder B(Ctx);
    Type *F64 = Ctx.getF64Ty();
    Type *Ptr = Ctx.getPtrTy();
    Type *I32 = Ctx.getI32Ty();

    Function *F = M->createFunction(
        "xs_lookup", Ctx.getVoidTy(),
        {Ptr, Ptr, Ptr, I32, I32, I32, F64},
        {"energies", "poles", "xs_out", "n_lookups", "n_windows",
         "poles_per_window", "sig_factor"},
        FunctionKind::Kernel);
    F->setJitAnnotation(JitAnnotation{{5, 6, 7}});

    Value *Energies = F->getArg(0), *Poles = F->getArg(1),
          *XsOut = F->getArg(2);
    Value *NLookups = F->getArg(3), *NWindows = F->getArg(4),
          *PolesPW = F->getArg(5), *SigFactor = F->getArg(6);

    B.setInsertPoint(F->createBlock("entry", Ctx.getVoidTy()));
    BasicBlock *Work = nullptr, *Exit = nullptr;
    Value *Gtid = emitGuardedPrologue(B, F, NLookups, Work, Exit);

    Value *E = B.createLoad(F64, B.createGep(F64, Energies, Gtid), "E");
    Value *TotalPoles = B.createMul(NWindows, PolesPW, "total_poles");

    // One flattened sweep over every pole of every window, carrying the
    // whole moment band.
    LoopEmitter L = beginCountedLoop(B, F, TotalPoles, "pole");
    std::vector<PhiInst *> Moments;
    for (int K = 0; K != NumMoments; ++K)
      Moments.push_back(addCarriedValue(B, L, F64, B.getDouble(0.0),
                                        "mom" + std::to_string(K)));
    {
      // Window decomposition: w = i / poles_per_window (a shift once RCF
      // folds the power-of-two divisor).
      Value *W = B.createUDiv(L.Index, PolesPW, "w");
      Value *Wf = B.createSIToFP(W, F64, "wf");
      Value *WBase = B.createFAdd(B.createFMul(Wf, B.getDouble(0.37)),
                                  B.getDouble(0.11), "wbase");

      Value *Base2 = B.createMul(L.Index, B.getInt32(2));
      Value *Pr = B.createLoad(F64, B.createGep(F64, Poles, Base2), "pr");
      Value *Pi = B.createLoad(
          F64,
          B.createGep(F64, Poles, B.createAdd(Base2, B.getInt32(1))), "pi");

      // Shared temporaries (complex Faddeeva-like evaluation).
      Value *De = B.createFSub(E, Pr, "de");
      Value *Mag2 = B.createFAdd(B.createFMul(De, De),
                                 B.createFMul(Pi, Pi), "mag2");
      Value *Inv = B.createFDiv(B.getDouble(1.0),
                                B.createFAdd(Mag2, B.getDouble(1e-9)),
                                "inv");
      Value *ReW = B.createFMul(De, Inv, "rew");
      Value *ImW = B.createFMul(Pi, Inv, "imw");
      Value *Damp = B.createExp(
          B.createFMul(B.getDouble(-0.5), B.createFMul(De, De)), "damp");
      Value *Osc = B.createSin(B.createFMul(E, WBase), "osc");

      // Doppler-broadening series: a serial evaluation chain (low register
      // footprint, high ALU work) refining the broadened line shape.
      Value *Series = Damp;
      for (int T = 0; T != 10; ++T) {
        Value *Scaled = B.createFMul(Series, B.getDouble(0.5 + 0.01 * T));
        Value *Shift = B.createFAdd(Scaled, ReW);
        Value *Curved = B.createSin(Shift, "ser" + std::to_string(T));
        Series = B.createFAdd(B.createFMul(Curved, ImW), Osc);
      }
      Damp = B.createFMul(Damp, B.createFAdd(Series, B.getDouble(1.0)),
                          "damp_b");

      // Update the whole moment band from the shared temporaries.
      std::vector<std::pair<PhiInst *, Value *>> Updates;
      Updates.reserve(Moments.size());
      for (int K = 0; K != NumMoments; ++K) {
        Value *Term = nullptr;
        switch (K % 4) {
        case 0:
          Term = B.createFMul(ReW, B.getDouble(0.91 + 0.01 * K));
          break;
        case 1:
          Term = B.createFMul(ImW, B.getDouble(0.83 + 0.01 * K));
          break;
        case 2:
          Term = B.createFMul(Damp, B.getDouble(0.77 + 0.01 * K));
          break;
        default:
          Term = B.createFMul(Osc, B.getDouble(0.71 + 0.01 * K));
          break;
        }
        Value *Next = B.createFAdd(Moments[K], Term,
                                   "nx" + std::to_string(K));
        Updates.push_back({Moments[K], Next});
      }
      closeCountedLoop(B, L, Updates);
    }

    // Reduce the moment band into the four macroscopic cross sections.
    Value *SigT = B.getDouble(0.0), *SigA = B.getDouble(0.0),
          *SigF = B.getDouble(0.0), *SigE = B.getDouble(0.0);
    for (int K = 0; K != NumMoments; ++K) {
      switch (K % 4) {
      case 0:
        SigT = B.createFAdd(SigT, Moments[K]);
        break;
      case 1:
        SigA = B.createFAdd(SigA, Moments[K]);
        break;
      case 2:
        SigF = B.createFAdd(SigF, Moments[K]);
        break;
      default:
        SigE = B.createFAdd(SigE, Moments[K]);
        break;
      }
    }
    Value *Out4 = B.createMul(Gtid, B.getInt32(4));
    B.createStore(B.createFMul(SigT, SigFactor),
                  B.createGep(F64, XsOut, Out4));
    B.createStore(B.createFMul(SigA, SigFactor),
                  B.createGep(F64, XsOut,
                              B.createAdd(Out4, B.getInt32(1))));
    B.createStore(B.createFMul(SigF, SigFactor),
                  B.createGep(F64, XsOut,
                              B.createAdd(Out4, B.getInt32(2))));
    B.createStore(B.createFMul(SigE, SigFactor),
                  B.createGep(F64, XsOut,
                              B.createAdd(Out4, B.getInt32(3))));
    B.createRet();
    return M;
  }

  std::vector<BufferSpec> buffers() const override {
    std::vector<double> Energies(NumLookups);
    std::vector<double> Poles(static_cast<size_t>(NumWindows) *
                              PolesPerWindow * 2);
    std::vector<double> Xs(static_cast<size_t>(NumLookups) * 4, 0.0);
    for (uint32_t I = 0; I != NumLookups; ++I)
      Energies[I] = 0.1 + 19.9 * static_cast<double>(I) / NumLookups;
    for (size_t I = 0; I != Poles.size(); I += 2) {
      Poles[I] = 0.5 + 0.6 * static_cast<double>(I / 2);
      Poles[I + 1] = 0.05 + 0.01 * static_cast<double>(I / 2);
    }
    return {BufferSpec::fromDoubles("energies", Energies),
            BufferSpec::fromDoubles("poles", Poles),
            BufferSpec::fromDoubles("xs", Xs)};
  }

  std::vector<LaunchSpec> launches() const override {
    std::vector<LaunchSpec> Out;
    for (uint32_t Iter = 0; Iter != NumIterations; ++Iter) {
      LaunchSpec L;
      L.Symbol = "xs_lookup";
      L.Grid = gpu::Dim3{NumLookups / BlockSize, 1, 1};
      L.Block = gpu::Dim3{BlockSize, 1, 1};
      L.Args = {ArgSpec::buffer("energies"),
                ArgSpec::buffer("poles"),
                ArgSpec::buffer("xs"),
                ArgSpec::scalarI32(static_cast<int32_t>(NumLookups)),
                ArgSpec::scalarI32(NumWindows),
                ArgSpec::scalarI32(PolesPerWindow),
                ArgSpec::scalarF64(0.25)};
      Out.push_back(std::move(L));
    }
    return Out;
  }

  bool verifyOutput(const BufferReader &Out) const override {
    std::vector<double> Xs = Out.doubles("xs");
    if (Xs.size() != static_cast<size_t>(NumLookups) * 4)
      return false;
    double Sum = 0;
    for (double V : Xs) {
      if (!std::isfinite(V))
        return false;
      Sum += std::fabs(V);
    }
    return Sum > 1.0; // the lookups must have produced real cross sections
  }
};

} // namespace

std::unique_ptr<Benchmark> proteus::hecbench::makeRsbenchBenchmark() {
  return std::make_unique<RsbenchBenchmark>();
}
