//===- Benchmark.h - HeCBench-sim program harness ---------------*- C++ -*-===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The benchmark-program abstraction mirroring the paper's evaluation
/// setup (section 4): each program declares its device module (with
/// annotate("jit", ...) kernels), its input buffers and its launch
/// sequence. The harness then executes it under any of the paper's modes —
/// AOT, Proteus with a cold or warm persistent cache, Jitify — and under
/// the section 4.5 specialization modes (None/LB/RCF/LB+RCF), measuring
/// end-to-end time as real host-side JIT work plus simulated device time.
/// The same declarative launch sequence can be replayed on the reference IR
/// interpreter, giving bit-exact verification of every mode.
///
//===----------------------------------------------------------------------===//

#ifndef PROTEUS_HECBENCH_BENCHMARK_H
#define PROTEUS_HECBENCH_BENCHMARK_H

#include "jit/Program.h"
#include "jitify/Jitify.h"

#include <functional>
#include <map>
#include <memory>

namespace proteus {
namespace hecbench {

/// How kernels are compiled/launched.
enum class ExecMode {
  AOT,     // plain ahead-of-time binaries
  Proteus, // JIT with the configured specializations
  Jitify,  // source-string baseline (nvptx-sim only)
};

const char *execModeName(ExecMode M);

/// A named device buffer with host-side initial contents.
struct BufferSpec {
  std::string Name;
  std::vector<uint8_t> Init;

  /// Convenience: construct from a vector of doubles.
  static BufferSpec fromDoubles(std::string Name,
                                const std::vector<double> &V);
  static BufferSpec fromFloats(std::string Name, const std::vector<float> &V);
  static BufferSpec fromInts(std::string Name, const std::vector<int32_t> &V);
};

/// One kernel argument: a scalar payload or a reference to a named buffer.
struct ArgSpec {
  enum class Kind { Scalar, Buffer } K = Kind::Scalar;
  uint64_t Bits = 0;       // scalar payload (OpSemantics boxing)
  std::string BufferName;  // buffer reference
  uint64_t ByteOffset = 0;

  static ArgSpec scalarI32(int32_t V) {
    return ArgSpec{Kind::Scalar, static_cast<uint32_t>(V), "", 0};
  }
  static ArgSpec scalarI64(int64_t V) {
    return ArgSpec{Kind::Scalar, static_cast<uint64_t>(V), "", 0};
  }
  static ArgSpec scalarF32(float V);
  static ArgSpec scalarF64(double V);
  static ArgSpec buffer(std::string Name, uint64_t ByteOffset = 0) {
    return ArgSpec{Kind::Buffer, 0, std::move(Name), ByteOffset};
  }
};

/// One kernel launch in the program's execution.
struct LaunchSpec {
  std::string Symbol;
  gpu::Dim3 Grid;
  gpu::Dim3 Block;
  std::vector<ArgSpec> Args;
};

/// View of final buffer contents for verification.
class BufferReader {
public:
  BufferReader(gpu::Device &Dev,
               const std::map<std::string, gpu::DevicePtr> &Buffers,
               const std::map<std::string, uint64_t> &Sizes)
      : Dev(Dev), Buffers(Buffers), Sizes(Sizes) {}

  /// Raw bytes of a buffer.
  std::vector<uint8_t> bytes(const std::string &Name) const;
  std::vector<double> doubles(const std::string &Name) const;
  std::vector<float> floats(const std::string &Name) const;

private:
  gpu::Device &Dev;
  const std::map<std::string, gpu::DevicePtr> &Buffers;
  const std::map<std::string, uint64_t> &Sizes;
};

/// One benchmark program.
class Benchmark {
public:
  virtual ~Benchmark() = default;

  virtual std::string name() const = 0;
  virtual std::string domain() const = 0;
  /// The paper's Table 1 input column equivalent.
  virtual std::string inputDescription() const = 0;

  /// Builds the device module (kernels carry their jit annotations).
  virtual std::unique_ptr<pir::Module> buildModule(pir::Context &Ctx) const = 0;

  /// Input buffers (deterministic contents).
  virtual std::vector<BufferSpec> buffers() const = 0;

  /// The launch sequence of one program execution (all iterations).
  virtual std::vector<LaunchSpec> launches() const = 0;

  /// Program-specific sanity check on final buffers (finiteness, plausible
  /// ranges). Bit-exactness vs the reference interpreter is checked
  /// separately by the harness when requested.
  virtual bool verifyOutput(const BufferReader &Out) const = 0;

  /// How many identical application iterations each entry of launches()
  /// stands for. The harness executes each launch once functionally and
  /// accounts its simulated duration timeScale() times — the sampled-
  /// simulation extrapolation documented in DESIGN.md. JIT compilation is
  /// a one-time cost and is *not* scaled.
  virtual uint64_t timeScale() const { return 1; }
};

/// Run configuration.
struct RunConfig {
  GpuArch Arch = GpuArch::AmdGcnSim;
  ExecMode Mode = ExecMode::AOT;
  JitConfig Jit;              // specialization toggles + cache config
  bool ColdCache = true;      // clear the persistent cache before running
  bool VerifyAgainstInterpreter = false; // bit-exact check (slow)
};

/// Measurements of one program execution.
struct RunResult {
  bool Ok = false;
  std::string Error;
  bool Verified = false;

  /// Real wall seconds spent in host-side JIT work (compilation pipeline,
  /// cache IO, source parsing for Jitify).
  double HostJitSeconds = 0;
  /// Simulated device seconds (kernels + transfers + module loads).
  double DeviceSeconds = 0;
  /// Simulated kernel-only seconds.
  double KernelSeconds = 0;
  /// End-to-end program time: host JIT work + device time.
  double endToEndSeconds() const { return HostJitSeconds + DeviceSeconds; }

  uint64_t JitCompilations = 0;
  uint64_t CodeCacheBytes = 0; // in-memory code cache footprint (Table 3)
  /// Full JIT runtime counters (Proteus mode only) — includes the async
  /// pipeline's launch-visible vs hidden compile-time split (Figure 6).
  JitRuntimeStats Jit;
  /// Per-kernel aggregated counters (Figures 7-11).
  std::map<std::string, gpu::LaunchStats> Profile;
};

/// Executes \p B once under \p Config.
RunResult runBenchmark(const Benchmark &B, const RunConfig &Config);

/// All six programs of Table 1, in paper order.
std::vector<std::unique_ptr<Benchmark>> allBenchmarks();

/// Individual factories.
std::unique_ptr<Benchmark> makeAdamBenchmark();
std::unique_ptr<Benchmark> makeRsbenchBenchmark();
std::unique_ptr<Benchmark> makeWsm5Benchmark();
std::unique_ptr<Benchmark> makeFeykacBenchmark();
std::unique_ptr<Benchmark> makeLuleshBenchmark();
std::unique_ptr<Benchmark> makeSw4ckBenchmark();

} // namespace hecbench
} // namespace proteus

#endif // PROTEUS_HECBENCH_BENCHMARK_H
