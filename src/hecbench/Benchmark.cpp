//===- Benchmark.cpp - HeCBench-sim program harness -------------------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//

#include "hecbench/Benchmark.h"

#include "ir/Cloning.h"
#include "ir/Module.h"
#include "ir/Context.h"
#include "ir/IRPrinter.h"
#include "ir/Interpreter.h"
#include "ir/OpSemantics.h"
#include "support/Error.h"
#include "support/Timer.h"

#include <cstring>

using namespace proteus;
using namespace proteus::hecbench;
using namespace proteus::gpu;

const char *proteus::hecbench::execModeName(ExecMode M) {
  switch (M) {
  case ExecMode::AOT:
    return "AOT";
  case ExecMode::Proteus:
    return "Proteus";
  case ExecMode::Jitify:
    return "Jitify";
  }
  proteus_unreachable("unknown exec mode");
}

BufferSpec BufferSpec::fromDoubles(std::string Name,
                                   const std::vector<double> &V) {
  BufferSpec B;
  B.Name = std::move(Name);
  B.Init.resize(V.size() * sizeof(double));
  std::memcpy(B.Init.data(), V.data(), B.Init.size());
  return B;
}

BufferSpec BufferSpec::fromFloats(std::string Name,
                                  const std::vector<float> &V) {
  BufferSpec B;
  B.Name = std::move(Name);
  B.Init.resize(V.size() * sizeof(float));
  std::memcpy(B.Init.data(), V.data(), B.Init.size());
  return B;
}

BufferSpec BufferSpec::fromInts(std::string Name,
                                const std::vector<int32_t> &V) {
  BufferSpec B;
  B.Name = std::move(Name);
  B.Init.resize(V.size() * sizeof(int32_t));
  std::memcpy(B.Init.data(), V.data(), B.Init.size());
  return B;
}

ArgSpec ArgSpec::scalarF32(float V) {
  return ArgSpec{Kind::Scalar, pir::sem::boxF32(V), "", 0};
}

ArgSpec ArgSpec::scalarF64(double V) {
  return ArgSpec{Kind::Scalar, pir::sem::boxF64(V), "", 0};
}

std::vector<uint8_t> BufferReader::bytes(const std::string &Name) const {
  auto It = Buffers.find(Name);
  if (It == Buffers.end())
    return {};
  uint64_t Size = Sizes.at(Name);
  std::vector<uint8_t> Out(Size);
  std::memcpy(Out.data(), Dev.memory().data() + It->second, Size);
  return Out;
}

std::vector<double> BufferReader::doubles(const std::string &Name) const {
  std::vector<uint8_t> B = bytes(Name);
  std::vector<double> Out(B.size() / sizeof(double));
  std::memcpy(Out.data(), B.data(), Out.size() * sizeof(double));
  return Out;
}

std::vector<float> BufferReader::floats(const std::string &Name) const {
  std::vector<uint8_t> B = bytes(Name);
  std::vector<float> Out(B.size() / sizeof(float));
  std::memcpy(Out.data(), B.data(), Out.size() * sizeof(float));
  return Out;
}

namespace {

/// Replays the launch sequence on the reference IR interpreter over a copy
/// of device memory; returns false (with message) on divergence.
bool interpretAndCompare(const Benchmark &B, pir::Module &SourceModule,
                         Device &Dev, std::vector<uint8_t> InitialMemory,
                         const std::map<std::string, DevicePtr> &BufferPtrs,
                         std::string &Error) {
  pir::Context &Ctx = SourceModule.getContext();
  // Link globals at their device addresses in a module clone.
  auto Linked = cloneModule(SourceModule, Ctx, SourceModule.getName() + ".iv");
  for (const auto &G : Linked->globals()) {
    DevicePtr Addr = Dev.getSymbolAddress(G->getName());
    if (!Addr) {
      Error = "interpreter verify: unresolved global @" + G->getName();
      return false;
    }
    G->replaceAllUsesWith(Ctx.getConstantPtr(Addr));
  }

  pir::IRInterpreter Interp(InitialMemory);
  for (const LaunchSpec &L : B.launches()) {
    pir::Function *F = Linked->getFunction(L.Symbol);
    if (!F) {
      Error = "interpreter verify: unknown kernel @" + L.Symbol;
      return false;
    }
    std::vector<uint64_t> Args;
    for (const ArgSpec &A : L.Args) {
      if (A.K == ArgSpec::Kind::Scalar)
        Args.push_back(A.Bits);
      else
        Args.push_back(BufferPtrs.at(A.BufferName) + A.ByteOffset);
    }
    for (uint32_t Blk = 0; Blk != L.Grid.X; ++Blk) {
      for (uint32_t Ty = 0; Ty != L.Block.Y; ++Ty) {
        for (uint32_t Tx = 0; Tx != L.Block.X; ++Tx) {
          pir::ThreadGeometry G;
          G.ThreadIdx[0] = Tx;
          G.ThreadIdx[1] = Ty;
          G.BlockIdx[0] = Blk;
          G.BlockDim[0] = L.Block.X;
          G.BlockDim[1] = L.Block.Y;
          G.GridDim[0] = L.Grid.X;
          pir::InterpResult R = Interp.run(*F, Args, G);
          if (!R.Ok) {
            Error = "interpreter verify failed in @" + L.Symbol + ": " +
                    R.Error;
            return false;
          }
        }
      }
    }
  }
  if (InitialMemory != Dev.memory()) {
    Error = "device execution diverged from the reference interpreter";
    return false;
  }
  return true;
}

} // namespace

RunResult proteus::hecbench::runBenchmark(const Benchmark &B,
                                          const RunConfig &Config) {
  RunResult Out;
  pir::Context Ctx;
  std::unique_ptr<pir::Module> M = B.buildModule(Ctx);

  // --- AOT build (cost reported separately; see Figure 5 bench) ------------
  AotOptions AO;
  AO.Arch = Config.Arch;
  AO.EnableProteusExtensions = Config.Mode == ExecMode::Proteus;
  CompiledProgram Prog = aotCompile(*M, AO);

  // --- Device + runtimes ------------------------------------------------------
  Device Dev(getTarget(Config.Arch), 1ull << 28);
  std::unique_ptr<JitRuntime> Jit;
  std::unique_ptr<JitifyRuntime> Jitify;
  if (Config.Mode == ExecMode::Proteus) {
    Jit = std::make_unique<JitRuntime>(Dev, Prog.ModuleId, Config.Jit);
    if (Config.ColdCache)
      Jit->cache().clearPersistent();
  } else if (Config.Mode == ExecMode::Jitify) {
    Jitify = std::make_unique<JitifyRuntime>(Dev);
    if (!Jitify->ok()) {
      Out.Error = "Jitify mode requires the nvptx-sim target";
      return Out;
    }
  }

  LoadedProgram LP(Dev, Prog, Jit.get());
  if (!LP.ok()) {
    Out.Error = LP.error();
    return Out;
  }
  std::set<std::string> JitifyKernels;
  if (Jitify) {
    // Register every annotated kernel's stringified source; un-annotated
    // kernels keep running their AOT binaries, as in the paper's setup.
    std::string Source = pir::printModule(*M);
    for (pir::Function *K : M->kernels())
      if (const auto &Ann = K->getJitAnnotation()) {
        Jitify->addProgram(K->getName(), Source, Ann->ArgIndices);
        JitifyKernels.insert(K->getName());
      }
  }

  // --- Buffers -------------------------------------------------------------------
  std::map<std::string, DevicePtr> BufferPtrs;
  std::map<std::string, uint64_t> BufferSizes;
  for (const BufferSpec &BS : B.buffers()) {
    DevicePtr P = 0;
    if (gpuMalloc(Dev, &P, BS.Init.size()) != GpuError::Success) {
      Out.Error = "device OOM for buffer " + BS.Name;
      return Out;
    }
    gpuMemcpyHtoD(Dev, P, BS.Init.data(), BS.Init.size());
    BufferPtrs[BS.Name] = P;
    BufferSizes[BS.Name] = BS.Init.size();
  }

  // Snapshot for interpreter verification before any kernel runs.
  std::vector<uint8_t> Snapshot;
  if (Config.VerifyAgainstInterpreter)
    Snapshot = Dev.memory();

  // --- Execute the launch sequence -----------------------------------------------
  Dev.resetSimulatedTime();
  for (const LaunchSpec &L : B.launches()) {
    std::vector<KernelArg> Args;
    for (const ArgSpec &A : L.Args) {
      if (A.K == ArgSpec::Kind::Scalar)
        Args.push_back(KernelArg{A.Bits});
      else
        Args.push_back(
            KernelArg{BufferPtrs.at(A.BufferName) + A.ByteOffset});
    }
    std::string Err;
    GpuError E;
    if (Config.Mode == ExecMode::Jitify && JitifyKernels.count(L.Symbol))
      E = Jitify->launch(L.Symbol, L.Grid, L.Block, Args, &Err);
    else
      E = LP.launch(L.Symbol, L.Grid, L.Block, Args, &Err);
    if (E != GpuError::Success) {
      Out.Error = "launch of @" + L.Symbol + " failed: " + Err;
      return Out;
    }
    // Sampled-simulation extrapolation: account the remaining identical
    // iterations' device time without re-executing them.
    uint64_t Scale = B.timeScale();
    if (Scale > 1) {
      double D = Dev.LastLaunch.DurationSec * static_cast<double>(Scale - 1);
      Dev.addSimulatedSeconds(D);
      Dev.addKernelSeconds(D);
    }
  }

  // --- Account time ------------------------------------------------------------------
  if (Jit)
    Jit->drain(); // join background compiles before reading counters
  Out.DeviceSeconds = Dev.simulatedSeconds();
  Out.KernelSeconds = Dev.kernelSeconds();
  if (Jit) {
    Out.Jit = Jit->stats();
    Out.HostJitSeconds =
        Out.Jit.totalCompileSeconds() + Out.Jit.CacheLookupSeconds;
    Out.JitCompilations = Out.Jit.Compilations;
    Out.CodeCacheBytes = Jit->cache().memoryBytes();
  }
  if (Jitify) {
    Out.HostJitSeconds = Jitify->stats().FrontendSeconds +
                         Jitify->stats().OptimizeSeconds +
                         Jitify->stats().BackendSeconds;
    Out.JitCompilations = Jitify->stats().Compilations;
  }
  Out.Profile = Dev.Profile;

  // --- Verify --------------------------------------------------------------------------
  BufferReader Reader(Dev, BufferPtrs, BufferSizes);
  Out.Verified = B.verifyOutput(Reader);
  if (!Out.Verified) {
    Out.Error = "output verification failed";
    return Out;
  }
  if (Config.VerifyAgainstInterpreter) {
    std::string VerifyError;
    if (!interpretAndCompare(B, *M, Dev, std::move(Snapshot), BufferPtrs,
                             VerifyError)) {
      Out.Error = VerifyError;
      Out.Verified = false;
      return Out;
    }
  }
  Out.Ok = true;
  return Out;
}

std::vector<std::unique_ptr<Benchmark>> proteus::hecbench::allBenchmarks() {
  std::vector<std::unique_ptr<Benchmark>> Out;
  Out.push_back(makeAdamBenchmark());
  Out.push_back(makeRsbenchBenchmark());
  Out.push_back(makeWsm5Benchmark());
  Out.push_back(makeFeykacBenchmark());
  Out.push_back(makeLuleshBenchmark());
  Out.push_back(makeSw4ckBenchmark());
  return Out;
}
