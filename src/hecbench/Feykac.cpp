//===- Feykac.cpp - Feynman-Kac Monte-Carlo benchmark (HeCBench-sim) --------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Monte-Carlo solution of an elliptic PDE via the Feynman-Kac formula
// (paper Listing 2): each thread walks a stochastic trajectory on a 2-D
// domain with semi-axes a, b, evaluating the potential at every step
// through an always-inline device function. Arguments a and b are
// annotated; with their runtime values folded, the elliptic-correction arm
// of the potential's select chain (computed unconditionally on GPUs) folds
// away and division-by-(power-of-two) semi-axes strength-reduces — the
// vector-instruction reduction of the paper's Figure 8.
//
//===----------------------------------------------------------------------===//

#include "hecbench/Benchmark.h"
#include "hecbench/KernelUtil.h"

#include <cmath>
#include <cstring>

using namespace proteus;
using namespace proteus::hecbench;
using namespace pir;

namespace {

constexpr uint32_t NumWalkers = 4096;
constexpr uint32_t BlockSize = 128;
constexpr int32_t NumSteps = 96;
constexpr uint32_t NumIterations = 4;
constexpr double AxisA = 2.0;
constexpr double AxisB = 2.0; // == a at runtime: the symmetric case

class FeykacBenchmark : public Benchmark {
public:
  std::string name() const override { return "FEY-KAC"; }
  std::string domain() const override { return "Monte Carlo PDEs"; }
  std::string inputDescription() const override { return "1"; }

  uint64_t timeScale() const override { return 2500; }

  std::unique_ptr<Module> buildModule(Context &Ctx) const override {
    auto M = std::make_unique<Module>(Ctx, "feykac");
    IRBuilder B(Ctx);
    Type *F64 = Ctx.getF64Ty();
    Type *Ptr = Ctx.getPtrTy();
    Type *I32 = Ctx.getI32Ty();
    Type *I64 = Ctx.getI64Ty();

    // --- device potential(a, b, x, y) (paper Listing 2 analogue) ----------
    Function *Pot = M->createFunction("potential", F64,
                                      {F64, F64, F64, F64},
                                      {"a", "b", "x", "y"},
                                      FunctionKind::Device);
    Pot->setAlwaysInline(true);
    {
      Value *A = Pot->getArg(0), *Bb = Pot->getArg(1), *X = Pot->getArg(2),
            *Y = Pot->getArg(3);
      B.setInsertPoint(Pot->createBlock("entry", Ctx.getVoidTy()));
      Value *A2 = B.createFMul(A, A, "a2");
      Value *B2 = B.createFMul(Bb, Bb, "b2");
      Value *Bx = B.createFDiv(X, A, "bx");
      Value *By = B.createFDiv(Y, Bb, "by");
      Value *Two = B.getDouble(2.0);
      // Symmetric-domain potential: 2*(2 + bx^2 + by^2)/a^2.
      Value *R2 = B.createFAdd(B.createFMul(Bx, Bx),
                               B.createFMul(By, By), "r2");
      Value *VSym = B.createFDiv(
          B.createFMul(Two, B.createFAdd(Two, R2)), A2, "vsym");
      // Elliptic correction for a != b: a heavier expression with
      // transcendentals. GPU code evaluates both arms of the select; under
      // RCF with a == b the comparison folds and this arm is eliminated.
      Value *Ecc = B.createFDiv(B.createFSub(A2, B2),
                                B.createFAdd(A2, B2), "ecc");
      Value *Exy = B.createFMul(Ecc, B.createFMul(X, Y));
      Value *T1 = B.createSin(B.createFMul(Bx, By), "t1");
      Value *T2 = B.createCos(B.createFAdd(Bx, By), "t2");
      Value *T3 = B.createExp(B.createFMul(Ecc, R2), "t3");
      Value *T4 = B.createSqrt(B.createFAdd(B.createFMul(T1, T1),
                                            B.createFMul(T2, T2)), "t4");
      Value *Corr = B.createFMul(
          Exy, B.createFAdd(T3, B.createFMul(T4, B.createPow(R2, Bb))),
          "corr");
      Value *VEll = B.createFAdd(VSym, Corr, "vell");
      Value *Symmetric = B.createFCmp(FCmpPred::OEQ, A, Bb, "sym");
      B.createRet(B.createSelect(Symmetric, VSym, VEll, "v"));
    }

    // --- kernel ------------------------------------------------------------
    Function *F = M->createFunction(
        "feykac", Ctx.getVoidTy(), {Ptr, Ptr, F64, F64, F64, I32, I32},
        {"wt", "seeds", "a", "b", "h", "n_steps", "n_walkers"},
        FunctionKind::Kernel);
    F->setJitAnnotation(JitAnnotation{{3, 4}}); // a, b

    Value *Wt = F->getArg(0), *Seeds = F->getArg(1);
    Value *A = F->getArg(2), *Bb = F->getArg(3), *H = F->getArg(4);
    Value *NSteps = F->getArg(5), *NWalkers = F->getArg(6);

    B.setInsertPoint(F->createBlock("entry", Ctx.getVoidTy()));
    BasicBlock *Work = nullptr, *Exit = nullptr;
    Value *Gtid = emitGuardedPrologue(B, F, NWalkers, Work, Exit);

    Value *SeedP = B.createGep(I64, Seeds, Gtid, "seedp");
    Value *Seed0 = B.createLoad(I64, SeedP, "seed0");

    LoopEmitter L = beginCountedLoop(B, F, NSteps, "walk");
    PhiInst *Seed = addCarriedValue(B, L, I64, Seed0, "seed");
    PhiInst *X = addCarriedValue(B, L, F64, B.getDouble(0.1), "x");
    PhiInst *Y = addCarriedValue(B, L, F64, B.getDouble(-0.05), "y");
    PhiInst *W = addCarriedValue(B, L, F64, B.getDouble(1.0), "w");

    // Two RNG draws move the walker.
    Value *S1 = emitLcgStep(B, Seed);
    Value *R1 = emitLcgToUnit(B, S1);
    Value *S2 = emitLcgStep(B, S1);
    Value *R2u = emitLcgToUnit(B, S2);
    Value *Half = B.getDouble(0.5);
    Value *Dx = B.createFMul(B.createFSub(R1, Half), H, "dx");
    Value *Dy = B.createFMul(B.createFSub(R2u, Half), H, "dy");
    Value *Xn = B.createFAdd(X, Dx, "xn");
    Value *Yn = B.createFAdd(Y, Dy, "yn");

    // chk = (x/a)^2 + (y/b)^2: the elliptic inside test.
    Value *Xa = B.createFDiv(Xn, A);
    Value *Yb = B.createFDiv(Yn, Bb);
    Value *Chk = B.createFAdd(B.createFMul(Xa, Xa), B.createFMul(Yb, Yb),
                              "chk");
    Value *Inside = B.createFCmp(FCmpPred::OLT, Chk, B.getDouble(1.0));

    Value *V = B.createCall(M->getFunction("potential"), {A, Bb, Xn, Yn},
                            "vpot");
    // w *= 1 - v*h*h/2 inside the domain; boundary damping outside.
    Value *H2 = B.createFMul(H, H);
    Value *Fac = B.createFSub(B.getDouble(1.0),
                              B.createFMul(V, B.createFMul(H2, Half)),
                              "fac");
    Value *Win = B.createFMul(W, Fac, "win");
    Value *Wout = B.createFMul(W, B.getDouble(0.5), "wout");
    Value *Wn = B.createSelect(Inside, Win, Wout, "wn");
    // Reflect the walker at the boundary.
    Value *Xr = B.createSelect(Inside, Xn, X, "xr");
    Value *Yr = B.createSelect(Inside, Yn, Y, "yr");

    closeCountedLoop(B, L, {{Seed, S2}, {X, Xr}, {Y, Yr}, {W, Wn}});

    Value *OutP = B.createGep(F64, Wt, Gtid, "outp");
    Value *Prev = B.createLoad(F64, OutP, "prev");
    B.createStore(B.createFAdd(Prev, W), OutP);
    B.createRet();
    return M;
  }

  std::vector<BufferSpec> buffers() const override {
    std::vector<double> Wt(NumWalkers, 0.0);
    std::vector<int32_t> Seeds(NumWalkers * 2);
    uint64_t S = 777;
    for (uint32_t I = 0; I != NumWalkers; ++I) {
      S = S * 2862933555777941757ull + 3037000493ull;
      std::memcpy(&Seeds[2 * I], &S, 8);
    }
    return {BufferSpec::fromDoubles("wt", Wt),
            BufferSpec::fromInts("seeds", Seeds)};
  }

  std::vector<LaunchSpec> launches() const override {
    std::vector<LaunchSpec> Out;
    for (uint32_t Iter = 0; Iter != NumIterations; ++Iter) {
      LaunchSpec L;
      L.Symbol = "feykac";
      L.Grid = gpu::Dim3{NumWalkers / BlockSize, 1, 1};
      L.Block = gpu::Dim3{BlockSize, 1, 1};
      L.Args = {ArgSpec::buffer("wt"),
                ArgSpec::buffer("seeds"),
                ArgSpec::scalarF64(AxisA),
                ArgSpec::scalarF64(AxisB),
                ArgSpec::scalarF64(0.05),
                ArgSpec::scalarI32(NumSteps),
                ArgSpec::scalarI32(static_cast<int32_t>(NumWalkers))};
      Out.push_back(std::move(L));
    }
    return Out;
  }

  bool verifyOutput(const BufferReader &Out) const override {
    std::vector<double> Wt = Out.doubles("wt");
    if (Wt.size() != NumWalkers)
      return false;
    double Sum = 0;
    for (double V : Wt) {
      if (!std::isfinite(V) || V < 0.0 ||
          V > static_cast<double>(NumIterations))
        return false;
      Sum += V;
    }
    // Weights decay from 1.0; the mean must stay in a sane band.
    double Mean = Sum / NumWalkers / NumIterations;
    return Mean > 0.01 && Mean < 1.0;
  }
};

} // namespace

std::unique_ptr<Benchmark> proteus::hecbench::makeFeykacBenchmark() {
  return std::make_unique<FeykacBenchmark>();
}
