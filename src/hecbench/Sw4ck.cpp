//===- Sw4ck.cpp - SW4CK curvilinear stencil benchmark (HeCBench-sim) --------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
//
// SW4 curvilinear kernels: five stencil kernels of graduated width, each
// sweeping a short z-column (the annotated nz bound) while accumulating a
// band of stress components from neighbor gathers and metric-coefficient
// math. Pressure is tuned per kernel so that, as in the paper's Figure 11:
//
//  * on AMD without launch bounds (budget 32) every kernel spills heavily
//    and LB specialization is the dominant win (~3x average),
//  * on NVIDIA (default budget 64) nothing spills, so neither LB nor RCF
//    matters (the paper omits NVIDIA results for exactly this reason),
//  * RCF's z-loop unrolling *increases* live ranges; for the widest kernel
//    (kernel4) RCF alone degrades performance, while LB+RCF nets out ahead.
//
//===----------------------------------------------------------------------===//

#include "hecbench/Benchmark.h"
#include "hecbench/KernelUtil.h"

#include <cmath>

using namespace proteus;
using namespace proteus::hecbench;
using namespace pir;

namespace {

constexpr uint32_t NumPoints = 4096; // (i, j) points per kernel
constexpr uint32_t BlockSize = 256;
constexpr int32_t Nz = 4;
constexpr uint32_t NumIterations = 3;

/// Stress-band widths per kernel: kernel4 (index 3) is the pressure
/// outlier the paper calls out.
constexpr int StressWidths[5] = {24, 28, 26, 44, 30};

class Sw4ckBenchmark : public Benchmark {
public:
  std::string name() const override { return "SW4CK"; }
  std::string domain() const override { return "Earth Science"; }
  std::string inputDescription() const override { return "sw4ck.in 1000"; }

  uint64_t timeScale() const override { return 800; }

  std::unique_ptr<Module> buildModule(Context &Ctx) const override {
    auto M = std::make_unique<Module>(Ctx, "sw4ck");
    for (int K = 0; K != 5; ++K)
      buildKernel(*M, K);
    return M;
  }

  std::vector<BufferSpec> buffers() const override {
    const uint32_t N = NumPoints * static_cast<uint32_t>(Nz) + 64;
    std::vector<double> U(N), Met(N), Out(NumPoints * 5, 0.0);
    for (uint32_t I = 0; I != N; ++I) {
      U[I] = std::sin(0.001 * I) + 0.002 * (I % 97);
      Met[I] = 1.0 + 0.0005 * (I % 251);
    }
    return {BufferSpec::fromDoubles("u", U),
            BufferSpec::fromDoubles("met", Met),
            BufferSpec::fromDoubles("out", Out)};
  }

  std::vector<LaunchSpec> launches() const override {
    std::vector<LaunchSpec> Out;
    for (uint32_t Iter = 0; Iter != NumIterations; ++Iter) {
      for (int K = 0; K != 5; ++K) {
        LaunchSpec L;
        L.Symbol = "kernel" + std::to_string(K + 1);
        L.Grid = gpu::Dim3{NumPoints / BlockSize, 1, 1};
        L.Block = gpu::Dim3{BlockSize, 1, 1};
        L.Args = {ArgSpec::buffer("u"),
                  ArgSpec::buffer("met"),
                  ArgSpec::buffer("out", K * NumPoints * sizeof(double)),
                  ArgSpec::scalarI32(Nz),
                  ArgSpec::scalarI32(static_cast<int32_t>(NumPoints)),
                  ArgSpec::scalarF64(0.25)};
        Out.push_back(std::move(L));
      }
    }
    return Out;
  }

  bool verifyOutput(const BufferReader &Reader) const override {
    std::vector<double> Out = Reader.doubles("out");
    if (Out.size() != NumPoints * 5)
      return false;
    double Sum = 0;
    for (double V : Out) {
      if (!std::isfinite(V))
        return false;
      Sum += std::fabs(V);
    }
    return Sum > 1.0;
  }

private:
  /// Builds kernelN: z-column sweep with StressWidths[N] live accumulators.
  void buildKernel(Module &M, int KernelIdx) const {
    Context &Ctx = M.getContext();
    IRBuilder B(Ctx);
    Type *F64 = Ctx.getF64Ty();
    Type *Ptr = Ctx.getPtrTy();
    Type *I32 = Ctx.getI32Ty();
    const int Width = StressWidths[KernelIdx];

    Function *F = M.createFunction(
        "kernel" + std::to_string(KernelIdx + 1), Ctx.getVoidTy(),
        {Ptr, Ptr, Ptr, I32, I32, F64},
        {"u", "met", "out", "nz", "npts", "coeff"}, FunctionKind::Kernel);
    F->setJitAnnotation(JitAnnotation{{4, 6}}); // nz, coeff

    Value *U = F->getArg(0), *Met = F->getArg(1), *Out = F->getArg(2);
    Value *NzA = F->getArg(3), *Npts = F->getArg(4), *Coeff = F->getArg(5);

    B.setInsertPoint(F->createBlock("entry", Ctx.getVoidTy()));
    BasicBlock *Work = nullptr, *Exit = nullptr;
    Value *Gtid = emitGuardedPrologue(B, F, Npts, Work, Exit);

    LoopEmitter L = beginCountedLoop(B, F, NzA, "z");
    std::vector<PhiInst *> Stress;
    for (int S = 0; S != Width; ++S)
      Stress.push_back(addCarriedValue(B, L, F64, B.getDouble(0.0),
                                       "s" + std::to_string(S)));
    {
      // Gather the 5-point stencil at this z level plus the metric terms.
      Value *Idx = B.createAdd(B.createMul(L.Index, Npts), Gtid, "idx");
      Value *C = B.createLoad(F64, B.createGep(F64, U, Idx), "c");
      Value *W =
          B.createLoad(F64,
                       B.createGep(F64, U,
                                   B.createSMax(B.createSub(Idx,
                                                            B.getInt32(1)),
                                                B.getInt32(0))),
                       "w");
      Value *E = B.createLoad(F64,
                              B.createGep(F64, U,
                                          B.createAdd(Idx, B.getInt32(1))),
                              "e");
      Value *MetC = B.createLoad(F64, B.createGep(F64, Met, Idx), "metc");
      Value *MetE =
          B.createLoad(F64,
                       B.createGep(F64, Met,
                                   B.createAdd(Idx, B.getInt32(1))),
                       "mete");

      Value *DuW = B.createFSub(C, W, "du_w");
      Value *DuE = B.createFSub(E, C, "du_e");
      Value *Lap = B.createFSub(DuE, DuW, "lap");
      Value *Flux = B.createFMul(B.createFMul(MetC, MetE), Lap, "flux");
      Value *Adv = B.createFMul(Coeff, B.createFAdd(DuW, DuE), "adv");

      std::vector<std::pair<PhiInst *, Value *>> Updates;
      for (int S = 0; S != Width; ++S) {
        Value *Mix = (S % 2) ? Flux : Adv;
        Value *Rot = (S % 3) ? MetC : MetE;
        Value *Term = B.createFAdd(
            B.createFMul(Mix, B.getDouble(0.93 + 0.002 * S)),
            B.createFMul(Rot, B.getDouble(0.0001 * (S + 1))),
            "t" + std::to_string(S));
        Updates.push_back(
            {Stress[S],
             B.createFAdd(Stress[S], Term, "su" + std::to_string(S))});
      }
      closeCountedLoop(B, L, Updates);
    }

    // Combine the stress band into the output point value.
    Value *Acc = B.getDouble(0.0);
    for (int S = 0; S != Width; ++S)
      Acc = B.createFAdd(Acc, Stress[S]);
    Value *OutP = B.createGep(F64, Out, Gtid, "outp");
    Value *Old = B.createLoad(F64, OutP, "old");
    B.createStore(
        B.createFAdd(Old, B.createFMul(Acc, B.getDouble(1e-3))), OutP);
    B.createRet();
  }
};

} // namespace

std::unique_ptr<Benchmark> proteus::hecbench::makeSw4ckBenchmark() {
  return std::make_unique<Sw4ckBenchmark>();
}
