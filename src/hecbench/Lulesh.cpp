//===- Lulesh.cpp - LULESH-like hydrodynamics benchmark (HeCBench-sim) ------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
//
// A Lagrangian hydrodynamics force kernel in the style of LULESH's
// CalcForceForNodes: gather from neighbor elements (indirection through a
// connectivity array), a moderate amount of arithmetic, scatter back. The
// scalar arguments (dt, cutoff) neither drive control flow nor loop bounds,
// and register pressure is low — by design this program gains nothing from
// either specialization, reproducing the paper's "Proteus is lightweight
// and avoids slowdowns even for programs less amenable to JIT optimization"
// result (section 4.5, LULESH).
//
//===----------------------------------------------------------------------===//

#include "hecbench/Benchmark.h"
#include "hecbench/KernelUtil.h"

#include <cmath>

using namespace proteus;
using namespace proteus::hecbench;
using namespace pir;

namespace {

constexpr uint32_t NumElems = 16384;
constexpr uint32_t BlockSize = 256;
constexpr uint32_t NumIterations = 10;

class LuleshBenchmark : public Benchmark {
public:
  std::string name() const override { return "LULESH"; }
  std::string domain() const override { return "Physics"; }
  std::string inputDescription() const override { return "-s 128"; }

  uint64_t timeScale() const override { return 6000; }

  std::unique_ptr<Module> buildModule(Context &Ctx) const override {
    auto M = std::make_unique<Module>(Ctx, "lulesh");
    IRBuilder B(Ctx);
    Type *F64 = Ctx.getF64Ty();
    Type *Ptr = Ctx.getPtrTy();
    Type *I32 = Ctx.getI32Ty();

    Function *F = M->createFunction(
        "calc_force", Ctx.getVoidTy(),
        {Ptr, Ptr, Ptr, Ptr, F64, F64, I32},
        {"x", "e", "conn", "force", "dt", "cutoff", "n"},
        FunctionKind::Kernel);
    // Annotated per the paper's methodology (scalars dt, cutoff, n) — but
    // none of them enable meaningful optimization here.
    F->setJitAnnotation(JitAnnotation{{5, 6, 7}});

    Value *X = F->getArg(0), *E = F->getArg(1), *Conn = F->getArg(2),
          *Force = F->getArg(3);
    Value *Dt = F->getArg(4), *Cutoff = F->getArg(5), *N = F->getArg(6);

    B.setInsertPoint(F->createBlock("entry", Ctx.getVoidTy()));
    BasicBlock *Work = nullptr, *Exit = nullptr;
    Value *Gtid = emitGuardedPrologue(B, F, N, Work, Exit);

    // Gather the element and its four neighbors through connectivity.
    Value *Xc = B.createLoad(F64, B.createGep(F64, X, Gtid), "xc");
    Value *Ec = B.createLoad(F64, B.createGep(F64, E, Gtid), "ec");
    Value *Acc = B.getDouble(0.0);
    for (int K = 0; K != 4; ++K) {
      Value *Ci = B.createAdd(B.createMul(Gtid, B.getInt32(4)),
                              B.getInt32(K));
      Value *NbrIdx = B.createLoad(I32, B.createGep(I32, Conn, Ci), "nbr");
      Value *Xn = B.createLoad(F64, B.createGep(F64, X, NbrIdx), "xn");
      Value *En = B.createLoad(F64, B.createGep(F64, E, NbrIdx), "en");
      Value *Dxv = B.createFSub(Xn, Xc, "dx");
      Value *Em = B.createFMul(B.createFAdd(En, Ec), B.getDouble(0.5));
      Value *Grad = B.createFMul(Dxv, Em, "grad");
      Acc = B.createFAdd(Acc, Grad, "acc");
    }
    // Artificial viscosity style limiter.
    Value *Mag = B.createFabs(Acc, "mag");
    Value *Limited = B.createSelect(
        B.createFCmp(FCmpPred::OLT, Mag, Cutoff), B.getDouble(0.0), Acc,
        "limited");
    Value *Fp = B.createGep(F64, Force, Gtid, "fp");
    Value *Fold = B.createLoad(F64, Fp, "fold");
    B.createStore(B.createFAdd(Fold, B.createFMul(Limited, Dt)), Fp);
    B.createRet();
    return M;
  }

  std::vector<BufferSpec> buffers() const override {
    std::vector<double> X(NumElems), E(NumElems), Force(NumElems, 0.0);
    std::vector<int32_t> Conn(NumElems * 4);
    uint64_t S = 424242;
    auto Next = [&S] {
      S = S * 6364136223846793005ull + 1442695040888963407ull;
      return S;
    };
    for (uint32_t I = 0; I != NumElems; ++I) {
      X[I] = static_cast<double>(I % 977) * 0.01;
      E[I] = 1.0 + static_cast<double>(I % 31) * 0.1;
      for (int K = 0; K != 4; ++K)
        Conn[I * 4 + K] = static_cast<int32_t>(Next() % NumElems);
    }
    return {BufferSpec::fromDoubles("x", X), BufferSpec::fromDoubles("e", E),
            BufferSpec::fromInts("conn", Conn),
            BufferSpec::fromDoubles("force", Force)};
  }

  std::vector<LaunchSpec> launches() const override {
    std::vector<LaunchSpec> Out;
    for (uint32_t Iter = 0; Iter != NumIterations; ++Iter) {
      LaunchSpec L;
      L.Symbol = "calc_force";
      L.Grid = gpu::Dim3{NumElems / BlockSize, 1, 1};
      L.Block = gpu::Dim3{BlockSize, 1, 1};
      L.Args = {ArgSpec::buffer("x"),     ArgSpec::buffer("e"),
                ArgSpec::buffer("conn"),  ArgSpec::buffer("force"),
                ArgSpec::scalarF64(1e-3), ArgSpec::scalarF64(1e-7),
                ArgSpec::scalarI32(static_cast<int32_t>(NumElems))};
      Out.push_back(std::move(L));
    }
    return Out;
  }

  bool verifyOutput(const BufferReader &Out) const override {
    std::vector<double> F = Out.doubles("force");
    if (F.size() != NumElems)
      return false;
    double MaxAbs = 0;
    for (double V : F) {
      if (!std::isfinite(V))
        return false;
      MaxAbs = std::max(MaxAbs, std::fabs(V));
    }
    return MaxAbs > 0.0 && MaxAbs < 1e6;
  }
};

} // namespace

std::unique_ptr<Benchmark> proteus::hecbench::makeLuleshBenchmark() {
  return std::make_unique<LuleshBenchmark>();
}
