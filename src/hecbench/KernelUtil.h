//===- KernelUtil.h - shared kernel-construction helpers --------*- C++ -*-===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small IRBuilder idioms shared by the HeCBench-sim kernels: the global
/// thread id + bounds guard prologue, canonical counted loops, and an
/// in-kernel LCG random step.
///
//===----------------------------------------------------------------------===//

#ifndef PROTEUS_HECBENCH_KERNELUTIL_H
#define PROTEUS_HECBENCH_KERNELUTIL_H

#include "ir/IRBuilder.h"

namespace proteus {
namespace hecbench {

/// Emits the "gtid < n ? work : exit" guard: creates work/exit blocks,
/// terminates the current block with the guarded branch, leaves the builder
/// positioned in the work block (exit gets its ret). Returns the gtid.
inline pir::Value *emitGuardedPrologue(pir::IRBuilder &B, pir::Function *F,
                                       pir::Value *Bound,
                                       pir::BasicBlock *&WorkBB,
                                       pir::BasicBlock *&ExitBB) {
  pir::Context &Ctx = B.getContext();
  pir::Value *Gtid = B.createGlobalThreadIdX();
  WorkBB = F->createBlock("work", Ctx.getVoidTy());
  ExitBB = F->createBlock("exit", Ctx.getVoidTy());
  pir::Value *InRange = B.createICmp(pir::ICmpPred::SLT, Gtid, Bound, "guard");
  B.createCondBr(InRange, WorkBB, ExitBB);
  B.setInsertPoint(ExitBB);
  B.createRet();
  B.setInsertPoint(WorkBB);
  return Gtid;
}

/// State for an open canonical loop created by beginCountedLoop.
struct LoopEmitter {
  pir::BasicBlock *Preheader = nullptr;
  pir::BasicBlock *Header = nullptr;
  pir::BasicBlock *Body = nullptr;
  pir::BasicBlock *Exit = nullptr;
  pir::PhiInst *Index = nullptr;
};

/// Opens a canonical "for (i = 0; i < Bound; ++i)" loop; the builder is left
/// in the body. Call closeCountedLoop when the body is emitted. Additional
/// loop-carried phis can be created in Header while the builder is in Body
/// (use addCarriedValue).
inline LoopEmitter beginCountedLoop(pir::IRBuilder &B, pir::Function *F,
                                    pir::Value *Bound,
                                    const std::string &Tag) {
  pir::Context &Ctx = B.getContext();
  LoopEmitter L;
  L.Preheader = B.getInsertBlock();
  L.Header = F->createBlock(Tag + ".header", Ctx.getVoidTy());
  L.Body = F->createBlock(Tag + ".body", Ctx.getVoidTy());
  L.Exit = F->createBlock(Tag + ".exit", Ctx.getVoidTy());
  B.createBr(L.Header);
  B.setInsertPoint(L.Header);
  L.Index = B.createPhi(Ctx.getI32Ty(), Tag + ".i");
  L.Index->addIncoming(B.getInt32(0), L.Preheader);
  pir::Value *Cond =
      B.createICmp(pir::ICmpPred::SLT, L.Index, Bound, Tag + ".cond");
  B.createCondBr(Cond, L.Body, L.Exit);
  B.setInsertPoint(L.Body);
  return L;
}

/// Creates a loop-carried value: a phi in the header with \p Init from the
/// preheader. Pair with finishCarried after closing the body.
inline pir::PhiInst *addCarriedValue(pir::IRBuilder &B, LoopEmitter &L,
                                     pir::Type *Ty, pir::Value *Init,
                                     const std::string &Name) {
  pir::BasicBlock *Saved = B.getInsertBlock();
  B.setInsertPoint(L.Header);
  pir::PhiInst *Phi = B.createPhi(Ty, Name);
  Phi->addIncoming(Init, L.Preheader);
  B.setInsertPoint(Saved);
  return Phi;
}

/// Closes the loop: the current block becomes the latch, the index steps by
/// one, carried phis receive their latch values, and the builder moves to
/// the exit block.
inline void
closeCountedLoop(pir::IRBuilder &B, LoopEmitter &L,
                 const std::vector<std::pair<pir::PhiInst *, pir::Value *>>
                     &CarriedUpdates) {
  pir::BasicBlock *Latch = B.getInsertBlock();
  pir::Value *Next = B.createAdd(L.Index, B.getInt32(1));
  L.Index->addIncoming(Next, Latch);
  for (const auto &[Phi, V] : CarriedUpdates)
    Phi->addIncoming(V, Latch);
  B.createBr(L.Header);
  B.setInsertPoint(L.Exit);
}

/// One LCG step: state' = state * 6364136223846793005 + 1442695040888963407.
inline pir::Value *emitLcgStep(pir::IRBuilder &B, pir::Value *State) {
  pir::Value *Mul =
      B.createMul(State, B.getInt64(6364136223846793005ull));
  return B.createAdd(Mul, B.getInt64(1442695040888963407ull), "lcg");
}

/// Converts the top bits of an i64 LCG state into a double in [0, 1).
inline pir::Value *emitLcgToUnit(pir::IRBuilder &B, pir::Value *State) {
  pir::Value *Top = B.createLShr(State, B.getInt64(11));
  pir::Value *AsF = B.createUIToFP(Top, B.getF64Ty());
  return B.createFMul(AsF, B.getDouble(1.0 / 9007199254740992.0), "unit");
}

} // namespace hecbench
} // namespace proteus

#endif // PROTEUS_HECBENCH_KERNELUTIL_H
