//===- roofline_policy.cpp - bottleneck-aware tuning policy gains ---------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Measures what the static roofline classifier buys the variant manager. A
// memory-bound streaming kernel launch is captured, then the same artifact
// is tuned twice from cold caches: once with PROTEUS_POLICY off (the full
// unpruned variant race) and once with the policy on (the MemoryBound
// verdict prunes every tuning axis, so only the recorded default races).
// The policy run must classify the kernel MemoryBound, prune at least half
// of the unpruned race's trials (counted exactly by policy.pruned_trials),
// and still promote a winner within 2% of the unpruned race's winner — the
// pruned axes genuinely could not pay off.
//
// The checked-in corpus doubles as the classifier's accuracy gate: every
// tests/corpus artifact is classified on both simulated targets and
// compared against the roofline class pinned in its .expect file;
// misclassifications must be zero.
//
// Emits the self-validated BENCH_roofline.json. `--smoke` runs the same
// gates (the race is already small; smoke only labels the rows) for the
// bench_smoke_roofline ctest.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "analysis/Roofline.h"
#include "bitcode/ModuleIndex.h"
#include "capture/Artifact.h"
#include "ir/Context.h"
#include "ir/IRBuilder.h"
#include "ir/OpSemantics.h"
#include "jit/AutoTuner.h"
#include "jit/Program.h"
#include "support/FileSystem.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

using namespace pir;
using namespace proteus;
using namespace proteus::bench;
using namespace proteus::gpu;

namespace {

constexpr uint32_t N = 8192;     // elements
constexpr uint32_t Block0 = 256; // recorded (default) block size

/// stream(in, out, n, sf): guarded gtid < n, out[gtid] = in[gtid] * sf +
/// 1.0. Two FLOPs against 16 bytes moved per thread — arithmetic
/// intensity 0.125, far under both simulated ridges, so the classifier
/// must call it MemoryBound everywhere. The n argument is jit-annotated so
/// the launch specializes and captures like production kernels.
std::unique_ptr<Module> buildStreamKernel(Context &Ctx) {
  auto M = std::make_unique<Module>(Ctx, "roofline_policy_app");
  IRBuilder B(Ctx);
  Type *F64 = Ctx.getF64Ty();
  Function *F = M->createFunction(
      "stream", Ctx.getVoidTy(),
      {Ctx.getPtrTy(), Ctx.getPtrTy(), Ctx.getI32Ty(), F64},
      {"in", "out", "n", "sf"}, FunctionKind::Kernel);
  F->setJitAnnotation(JitAnnotation{{3}});
  Value *In = F->getArg(0), *Out = F->getArg(1), *Nv = F->getArg(2);
  Value *Sf = F->getArg(3);

  BasicBlock *Entry = F->createBlock("entry", Ctx.getVoidTy());
  BasicBlock *Body = F->createBlock("body", Ctx.getVoidTy());
  BasicBlock *Exit = F->createBlock("exit", Ctx.getVoidTy());

  B.setInsertPoint(Entry);
  Value *Gtid = B.createGlobalThreadIdX();
  B.createCondBr(B.createICmp(ICmpPred::SLT, Gtid, Nv), Body, Exit);

  B.setInsertPoint(Body);
  Value *V = B.createLoad(F64, B.createGep(F64, In, Gtid), "v");
  Value *Scaled = B.createFMul(V, Sf, "scaled");
  Value *Biased = B.createFAdd(Scaled, B.getDouble(1.0), "biased");
  B.createStore(Biased, B.createGep(F64, Out, Gtid));
  B.createRet();

  B.setInsertPoint(Exit);
  B.createRet();
  return M;
}

/// Classifies \p A's pruned bitcode on \p T exactly the way pir-roofline
/// does: purely static, no geometry or register feedback, so the verdict
/// matches the corpus goldens byte for byte.
std::optional<pir::analysis::BottleneckClass>
classifyArtifactStatic(const capture::CaptureArtifact &A,
                       const TargetInfo &T) {
  std::string Error;
  std::shared_ptr<const KernelModuleIndex> Index =
      KernelModuleIndex::create(A.Bitcode, Error);
  if (!Index)
    return std::nullopt;
  pir::Context Ctx;
  std::unique_ptr<pir::Module> M =
      Index->materialize(Ctx, A.KernelSymbol, nullptr);
  pir::Function *F = M ? M->getFunction(A.KernelSymbol) : nullptr;
  if (!F)
    return std::nullopt;
  return pir::analysis::classifyKernel(*F, T).Class;
}

/// Pulls "amdgcn-sim=<C> nvptx-sim=<C>" off an .expect file's
/// "roofline:" line. Returns false when the file has no such line.
bool readExpectedClasses(const std::string &ExpectPath, std::string &Amd,
                         std::string &Nv) {
  auto Bytes = fs::readFile(ExpectPath);
  if (!Bytes)
    return false;
  std::string Text(Bytes->begin(), Bytes->end());
  size_t Pos = Text.find("roofline:");
  if (Pos == std::string::npos)
    return false;
  size_t End = Text.find('\n', Pos);
  std::string Line = Text.substr(Pos, End == std::string::npos
                                          ? std::string::npos
                                          : End - Pos);
  auto Field = [&Line](const char *Key) {
    std::string K = std::string(Key) + "=";
    size_t P = Line.find(K);
    if (P == std::string::npos)
      return std::string();
    size_t S = P + K.size();
    size_t E = Line.find_first_of(" \t\r", S);
    return Line.substr(S, E == std::string::npos ? std::string::npos
                                                 : E - S);
  };
  Amd = Field("amdgcn-sim");
  Nv = Field("nvptx-sim");
  return !Amd.empty() && !Nv.empty();
}

} // namespace

int main(int Argc, char **Argv) {
  bool Smoke = false;
  for (int I = 1; I < Argc; ++I)
    if (std::strcmp(Argv[I], "--smoke") == 0)
      Smoke = true;

  Context Ctx;
  std::unique_ptr<Module> M = buildStreamKernel(Ctx);
  AotOptions AO;
  AO.Arch = GpuArch::AmdGcnSim;
  AO.EnableProteusExtensions = true;
  CompiledProgram Prog = aotCompile(*M, AO);

  std::string CacheOff = fs::makeTempDirectory("proteus-roofline-off");
  std::string CacheOn = fs::makeTempDirectory("proteus-roofline-on");
  std::string CaptureDir = fs::makeTempDirectory("proteus-roofline-cap");

  int Status = 0;
  capture::CaptureArtifact A;
  VariantTuningResult Off, On;
  JitRuntimeStats OnStats;
  std::optional<PolicyVerdict> Verdict;

  // Cold race 1: policy off — capture the launch, then the full unpruned
  // variant race over the artifact.
  {
    JitConfig JC;
    JC.CacheDir = CacheOff;
    JC.Capture = true;
    JC.CaptureDir = CaptureDir;
    JC.Tune = true;

    Device Dev(getTarget(GpuArch::AmdGcnSim), 1 << 22);
    JitRuntime Jit(Dev, Prog.ModuleId, JC);
    LoadedProgram LP(Dev, Prog, &Jit);
    if (!LP.ok()) {
      std::fprintf(stderr, "FATAL: program load failed: %s\n",
                   LP.error().c_str());
      return 1;
    }
    DevicePtr In = 0, Out = 0;
    gpuMalloc(Dev, &In, N * 8);
    gpuMalloc(Dev, &Out, N * 8);
    std::vector<double> H(N, 2.5);
    gpuMemcpyHtoD(Dev, In, H.data(), N * 8);
    std::vector<KernelArg> Args = {{In}, {Out}, {N}, {sem::boxF64(0.5)}};

    std::string Error;
    if (LP.launch("stream", Dim3{N / Block0, 1, 1}, Dim3{Block0, 1, 1},
                  Args, &Error) != GpuError::Success) {
      std::fprintf(stderr, "FATAL: capture launch failed: %s\n",
                   Error.c_str());
      return 1;
    }
    Jit.drain();
    std::vector<std::string> Files = fs::listFiles(CaptureDir);
    if (Files.size() != 1) {
      std::fprintf(stderr, "FATAL: expected 1 capture artifact, found %zu\n",
                   Files.size());
      return 1;
    }
    std::string ReadError;
    std::optional<capture::CaptureArtifact> Read =
        capture::readArtifactFile(CaptureDir + "/" + Files[0], &ReadError);
    if (!Read) {
      std::fprintf(stderr, "FATAL: cannot read artifact: %s\n",
                   ReadError.c_str());
      return 1;
    }
    A = *Read;

    VariantManager VM(Jit, VariantManager::Options::fromConfig(JC));
    Off = VM.tuneArtifact(A);
    if (!Off.Ok) {
      std::fprintf(stderr, "FATAL: unpruned race failed: %s\n",
                   Off.Error.c_str());
      return 1;
    }
    Jit.drain();
  }

  // Cold race 2: policy on, fresh cache — the roofline verdict must prune
  // the axes before the budget cap, leaving only the recorded default.
  {
    JitConfig JC;
    JC.CacheDir = CacheOn;
    JC.Tune = true;
    JC.Policy = true;

    Device Dev(getTarget(GpuArch::AmdGcnSim), 1 << 22);
    JitRuntime Jit(Dev, Prog.ModuleId, JC);
    LoadedProgram LP(Dev, Prog, &Jit);
    if (!LP.ok()) {
      std::fprintf(stderr, "FATAL: policy program load failed: %s\n",
                   LP.error().c_str());
      return 1;
    }
    VariantManager VM(Jit, VariantManager::Options::fromConfig(JC));
    On = VM.tuneArtifact(A);
    if (!On.Ok) {
      std::fprintf(stderr, "FATAL: pruned race failed: %s\n",
                   On.Error.c_str());
      return 1;
    }
    Jit.drain();
    OnStats = Jit.stats();
    Verdict = Jit.policy()->verdictFor(A.KernelSymbol, A.Arch);
  }

  fs::removeAllFiles(CaptureDir);
  fs::removeAllFiles(CacheOff);
  fs::removeAllFiles(CacheOn);

  // Corpus accuracy: classify every checked-in artifact on both targets
  // and compare against the classes pinned in the .expect files.
  const std::string CorpusDir = PROTEUS_CORPUS_DIR;
  unsigned CorpusTotal = 0, CorpusMismatch = 0;
  {
    std::vector<std::string> Entries = fs::listFiles(CorpusDir);
    std::sort(Entries.begin(), Entries.end());
    for (const std::string &Name : Entries) {
      if (Name.size() < 5 ||
          Name.compare(Name.size() - 5, 5, ".pcap") != 0)
        continue;
      const std::string Base = Name.substr(0, Name.size() - 5);
      std::string ReadError;
      std::optional<capture::CaptureArtifact> CA =
          capture::readArtifactFile(CorpusDir + "/" + Name, &ReadError);
      if (!CA) {
        std::fprintf(stderr, "FAIL: corpus artifact %s unreadable: %s\n",
                     Name.c_str(), ReadError.c_str());
        ++CorpusMismatch;
        continue;
      }
      std::string WantAmd, WantNv;
      if (!readExpectedClasses(CorpusDir + "/" + Base + ".expect", WantAmd,
                               WantNv)) {
        std::fprintf(stderr,
                     "FAIL: %s.expect pins no roofline classification\n",
                     Base.c_str());
        ++CorpusMismatch;
        continue;
      }
      auto GotAmd = classifyArtifactStatic(*CA, getAmdGcnSimTarget());
      auto GotNv = classifyArtifactStatic(*CA, getNvPtxSimTarget());
      ++CorpusTotal;
      bool Match =
          GotAmd && GotNv &&
          WantAmd == pir::analysis::bottleneckClassName(*GotAmd) &&
          WantNv == pir::analysis::bottleneckClassName(*GotNv);
      if (!Match) {
        std::fprintf(
            stderr,
            "FAIL: %s classified %s/%s, .expect pins %s/%s\n",
            Base.c_str(),
            GotAmd ? pir::analysis::bottleneckClassName(*GotAmd)
                   : "<none>",
            GotNv ? pir::analysis::bottleneckClassName(*GotNv) : "<none>",
            WantAmd.c_str(), WantNv.c_str());
        ++CorpusMismatch;
      }
    }
  }

  const size_t TrialsOff = Off.Trials.size();
  const size_t TrialsOn = On.Trials.size();
  const size_t Pruned = TrialsOff > TrialsOn ? TrialsOff - TrialsOn : 0;
  const double PrunedFraction =
      TrialsOff ? static_cast<double>(Pruned) / TrialsOff : 0;
  const double WinnerRatio =
      Off.WinnerSeconds > 0 ? On.WinnerSeconds / Off.WinnerSeconds : 0;

  std::printf("roofline_policy: %u-thread stream kernel\n", N);
  std::printf("  verdict  %s (ai=%.4g, ridge=%.4g)\n",
              Verdict ? pir::analysis::bottleneckClassName(Verdict->Class)
                      : "<none>",
              Verdict ? Verdict->ArithmeticIntensity : 0.0,
              Verdict ? Verdict->RidgeFlopsPerByte : 0.0);
  std::printf("  race     off=%zu trials (winner %s %.3f us), on=%zu "
              "trials (winner %s %.3f us)\n",
              TrialsOff, Off.Winner.Name.c_str(), Off.WinnerSeconds * 1e6,
              TrialsOn, On.Winner.Name.c_str(), On.WinnerSeconds * 1e6);
  std::printf("  pruned   %zu variants (%.0f%%), policy.pruned_trials=%llu\n",
              Pruned, PrunedFraction * 100,
              static_cast<unsigned long long>(OnStats.PolicyPrunedTrials));
  std::printf("  corpus   %u artifact(s), %u misclassified\n", CorpusTotal,
              CorpusMismatch);

  JsonReporter Report("roofline");
  Report.beginRow("policy_race")
      .label("arch", "amdgcn-sim")
      .label("mode", Smoke ? "smoke" : "full")
      .label("class",
             Verdict ? pir::analysis::bottleneckClassName(Verdict->Class)
                     : "<none>")
      .metric("trials_unpruned", static_cast<double>(TrialsOff))
      .metric("trials_pruned", static_cast<double>(TrialsOn))
      .metric("pruned_variants", static_cast<double>(Pruned))
      .metric("pruned_fraction", PrunedFraction)
      .metric("policy_pruned_trials",
              static_cast<double>(OnStats.PolicyPrunedTrials))
      .metric("policy_classified",
              static_cast<double>(OnStats.PolicyClassified))
      .metric("winner_unpruned_us", Off.WinnerSeconds * 1e6)
      .metric("winner_pruned_us", On.WinnerSeconds * 1e6)
      .metric("winner_ratio", WinnerRatio)
      .metric("tuning_sim_ms_unpruned", Off.TuningSeconds * 1e3)
      .metric("tuning_sim_ms_pruned", On.TuningSeconds * 1e3);
  Report.beginRow("corpus_accuracy")
      .label("mode", Smoke ? "smoke" : "full")
      .metric("artifacts", CorpusTotal)
      .metric("misclassified", CorpusMismatch);
  std::string WriteError;
  if (!Report.write("BENCH_roofline.json", &WriteError)) {
    std::fprintf(stderr, "FATAL: %s\n", WriteError.c_str());
    return 1;
  }

  // Acceptance gates.
  if (!Verdict ||
      Verdict->Class != pir::analysis::BottleneckClass::MemoryBound) {
    std::fprintf(stderr, "FAIL: stream kernel not classified MemoryBound\n");
    Status = 1;
  }
  if (TrialsOff < 3) {
    std::fprintf(stderr,
                 "FAIL: unpruned race only raced %zu variants, want >= 3\n",
                 TrialsOff);
    Status = 1;
  }
  if (PrunedFraction < 0.5) {
    std::fprintf(stderr,
                 "FAIL: policy pruned %.0f%% of trials, want >= 50%%\n",
                 PrunedFraction * 100);
    Status = 1;
  }
  if (OnStats.PolicyPrunedTrials != Pruned) {
    std::fprintf(stderr,
                 "FAIL: policy.pruned_trials=%llu, but the races differ by "
                 "%zu trials\n",
                 static_cast<unsigned long long>(OnStats.PolicyPrunedTrials),
                 Pruned);
    Status = 1;
  }
  if (Off.WinnerSeconds > 0 && On.WinnerSeconds > Off.WinnerSeconds * 1.02) {
    std::fprintf(stderr,
                 "FAIL: pruned winner %.6g us more than 2%% slower than "
                 "unpruned winner %.6g us\n",
                 On.WinnerSeconds * 1e6, Off.WinnerSeconds * 1e6);
    Status = 1;
  }
  if (CorpusTotal == 0 || CorpusMismatch != 0) {
    std::fprintf(stderr, "FAIL: corpus accuracy gate (%u/%u misclassified)\n",
                 CorpusMismatch, CorpusTotal);
    Status = 1;
  }
  return Status;
}
