//===- ablation_cache_policy.cpp - cache eviction ablation --------------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Ablation of the section 3.4 cache-management extensions: under a memory
// limit that cannot hold every specialization, compare eviction policies on
// a skewed specialization workload (a few hot time-step values, a long tail
// of one-shot values — the shape an auto-tuner or time-stepping code
// produces). The runtime-informed LFU policy should retain the hot
// specializations and beat plain LRU on hit rate, supporting the paper's
// plan to "prioritize evicting less likely-to-execute specializations".
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "jit/CodeCache.h"

#include <cstdio>

using namespace proteus;
using namespace proteus::bench;

namespace {

struct PolicyOutcome {
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Evictions = 0;
};

/// Simulates a launch stream over specializations with a skewed reuse
/// pattern: 4 hot specializations dominate; 64 cold ones appear once each,
/// interleaved.
PolicyOutcome runPolicy(EvictionPolicy Policy) {
  CacheLimits L;
  L.MaxMemoryBytes = 8 * 4096; // room for 8 of the ~68 specializations
  L.Policy = Policy;
  CodeCache C(true, false, "", L);

  auto Access = [&](uint64_t Key) -> bool {
    if (C.lookup(Key))
      return true;
    C.insert(Key, std::vector<uint8_t>(4096,
                                       static_cast<uint8_t>(Key)));
    return false;
  };

  PolicyOutcome Out;
  uint64_t ColdKey = 1000;
  // Warm up the hot set.
  for (uint64_t Hot = 1; Hot <= 4; ++Hot)
    Access(Hot);
  for (int Round = 0; Round != 64; ++Round) {
    for (uint64_t Hot = 1; Hot <= 4; ++Hot)
      Access(Hot) ? ++Out.Hits : ++Out.Misses;
    // A burst of one-shot cold specializations larger than the cache
    // flushes recency; only execution frequency identifies the hot set.
    for (int Burst = 0; Burst != 10; ++Burst)
      Access(ColdKey++) ? ++Out.Hits : ++Out.Misses;
  }
  Out.Evictions = C.stats().MemoryEvictions;
  return Out;
}

} // namespace

int main() {
  std::printf("=== Ablation: cache eviction policy under a memory limit"
              " ===\n");
  std::printf("workload: 4 hot specializations + bursts of 10 one-shot cold ones,"
              " limit = 8 entries\n\n");
  std::printf("%-8s %10s %10s %12s %10s\n", "policy", "hits", "misses",
              "evictions", "hit rate");
  for (EvictionPolicy P : {EvictionPolicy::LRU, EvictionPolicy::LFU}) {
    PolicyOutcome O = runPolicy(P);
    std::printf("%-8s %10llu %10llu %12llu %9.1f%%\n",
                P == EvictionPolicy::LRU ? "LRU" : "LFU",
                static_cast<unsigned long long>(O.Hits),
                static_cast<unsigned long long>(O.Misses),
                static_cast<unsigned long long>(O.Evictions),
                100.0 * static_cast<double>(O.Hits) /
                    static_cast<double>(O.Hits + O.Misses));
  }
  std::printf("\n(every miss is a full JIT recompilation; the"
              " runtime-informed policy\n protects hot specializations from"
              " one-shot pollution)\n");
  return 0;
}
