//===- capture_overhead.cpp - launch-path cost of PROTEUS_CAPTURE ---------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Measures what capture recording costs on the steady-state launch path:
// the same warm-cache launch loop is timed with capture off and with
// capture on in its default configuration (launch-shape dedup: each
// distinct specialization/geometry/argument shape is recorded once, every
// repeat is a counted skip), repeated several times with the minimum taken
// so scheduler noise cannot inflate either side. At steady state the loop
// re-launches shapes that are already on disk, so capture must cost one
// hash probe per launch — the capture-on loop must shed nothing
// (drops == 0) and stay within a few percent of the capture-off loop.
//
// A third, ungated row times the capture-every-launch stress mode
// (PROTEUS_CAPTURE_DEDUP=off) for reference: it snapshots memory and
// persists an artifact per launch, so its cost scales with writer
// throughput, not with the launch path.
//
// Emits the self-validated BENCH_capture.json and exits non-zero when the
// acceptance floor is missed: capture-on overhead <= 5% at steady state
// with zero drops. `--smoke` reduces the batch for the ctest wiring
// (bench_smoke_capture) and applies the same validation.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "capture/Capture.h"
#include "ir/Context.h"
#include "ir/IRBuilder.h"
#include "ir/OpSemantics.h"
#include "jit/Program.h"
#include "support/FileSystem.h"
#include "support/Timer.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

using namespace pir;
using namespace proteus;
using namespace proteus::bench;
using namespace proteus::gpu;

namespace {

constexpr uint32_t N = 256; // elements / threads per launch

/// scale(in, out, n, sf, si) with sf/si annotated — enough per-launch work
/// that the measured loop is dominated by kernel execution, as in a real
/// application's steady state.
std::unique_ptr<Module> buildScaleKernel(Context &Ctx) {
  auto M = std::make_unique<Module>(Ctx, "capture_overhead_app");
  IRBuilder B(Ctx);
  Type *F64 = Ctx.getF64Ty();
  Type *I32 = Ctx.getI32Ty();
  Function *F = M->createFunction(
      "scale", Ctx.getVoidTy(),
      {Ctx.getPtrTy(), Ctx.getPtrTy(), I32, F64, I32},
      {"in", "out", "n", "sf", "si"}, FunctionKind::Kernel);
  F->setJitAnnotation(JitAnnotation{{4, 5}});
  Value *In = F->getArg(0), *Out = F->getArg(1), *Nv = F->getArg(2);
  Value *Sf = F->getArg(3), *Si = F->getArg(4);
  BasicBlock *Entry = F->createBlock("entry", Ctx.getVoidTy());
  BasicBlock *Work = F->createBlock("work", Ctx.getVoidTy());
  BasicBlock *Exit = F->createBlock("exit", Ctx.getVoidTy());
  B.setInsertPoint(Entry);
  Value *Gtid = B.createGlobalThreadIdX();
  B.createCondBr(B.createICmp(ICmpPred::SLT, Gtid, Nv), Work, Exit);
  B.setInsertPoint(Exit);
  B.createRet();
  B.setInsertPoint(Work);
  Value *V = B.createLoad(F64, B.createGep(F64, In, Gtid), "v");
  for (unsigned I = 0; I != 24; ++I)
    V = B.createFAdd(B.createFMul(V, Sf), B.createSIToFP(Si, F64));
  B.createStore(V, B.createGep(F64, Out, Gtid));
  B.createRet();
  return M;
}

struct LoopResult {
  double BestSeconds = 0; // minimum over repetitions
  uint64_t Drops = 0;
  uint64_t Dedup = 0;
  uint64_t Artifacts = 0;
};

uint64_t counterValue(const metrics::Registry &R, const std::string &Name) {
  for (const auto &[K, V] : R.counterValues())
    if (K == Name)
      return V;
  return 0;
}

/// Times \p Launches warm-cache launches, \p Reps times, returning the
/// fastest repetition. With capture on, the runtime drains between
/// repetitions so the ring starts each timed loop empty — steady state
/// with a writer that keeps up.
LoopResult runLoop(const CompiledProgram &Prog, bool Capture, bool Dedup,
                   const std::string &CaptureDir, unsigned Launches,
                   unsigned Reps) {
  JitConfig JC;
  JC.UsePersistentCache = false;
  JC.Capture = Capture;
  JC.CaptureDir = CaptureDir;
  JC.CaptureRing = 1024;
  JC.CaptureDedup = Dedup;

  Device Dev(getTarget(GpuArch::AmdGcnSim), 1 << 22);
  JitRuntime Jit(Dev, Prog.ModuleId, JC);
  LoadedProgram LP(Dev, Prog, &Jit);
  if (!LP.ok()) {
    std::fprintf(stderr, "FATAL: program load failed: %s\n",
                 LP.error().c_str());
    std::exit(1);
  }
  DevicePtr In = 0, Out = 0;
  gpuMalloc(Dev, &In, N * 8);
  gpuMalloc(Dev, &Out, N * 8);
  std::vector<double> H(N, 1.25);
  gpuMemcpyHtoD(Dev, In, H.data(), N * 8);
  std::vector<KernelArg> Args = {
      {In}, {Out}, {N}, {sem::boxF64(1.0009765625)}, {uint64_t(3)}};

  auto LaunchOnce = [&] {
    std::string Error;
    if (LP.launch("scale", Dim3{1, 1, 1}, Dim3{N, 1, 1}, Args, &Error) !=
        GpuError::Success) {
      std::fprintf(stderr, "FATAL: launch failed: %s\n", Error.c_str());
      std::exit(1);
    }
  };

  LaunchOnce(); // compile + load once; everything after is the warm path
  Jit.drain();

  LoopResult R;
  R.BestSeconds = 1e30;
  for (unsigned Rep = 0; Rep != Reps; ++Rep) {
    Timer T;
    for (unsigned L = 0; L != Launches; ++L)
      LaunchOnce();
    R.BestSeconds = std::min(R.BestSeconds, T.seconds());
    Jit.drain(); // writer catches up off the clock, ring returns to empty
  }
  R.Drops = counterValue(Jit.metricsRegistry(), "capture.drops");
  R.Dedup = counterValue(Jit.metricsRegistry(), "capture.dedup");
  R.Artifacts = counterValue(Jit.metricsRegistry(), "capture.artifacts");
  return R;
}

} // namespace

int main(int Argc, char **Argv) {
  bool Smoke = false;
  for (int I = 1; I < Argc; ++I)
    if (std::strcmp(Argv[I], "--smoke") == 0)
      Smoke = true;

  const unsigned Launches = Smoke ? 64 : 512; // <= ring: shedding impossible
  const unsigned Reps = Smoke ? 3 : 7;

  Context Ctx;
  std::unique_ptr<Module> M = buildScaleKernel(Ctx);
  AotOptions AO;
  AO.Arch = GpuArch::AmdGcnSim;
  AO.EnableProteusExtensions = true;
  CompiledProgram Prog = aotCompile(*M, AO);

  std::string CaptureDir = fs::makeTempDirectory("proteus-capture-bench");

  LoopResult Off =
      runLoop(Prog, false, true, CaptureDir, Launches, Reps);
  LoopResult On = runLoop(Prog, true, true, CaptureDir, Launches, Reps);
  LoopResult All = runLoop(Prog, true, false, CaptureDir, Launches, Reps);
  fs::removeAllFiles(CaptureDir);

  double PerLaunchOffUs = Off.BestSeconds / Launches * 1e6;
  double PerLaunchOnUs = On.BestSeconds / Launches * 1e6;
  double PerLaunchAllUs = All.BestSeconds / Launches * 1e6;
  double OverheadPct =
      (On.BestSeconds - Off.BestSeconds) / Off.BestSeconds * 100.0;
  double AllOverheadPct =
      (All.BestSeconds - Off.BestSeconds) / Off.BestSeconds * 100.0;

  std::printf("capture_overhead: %u launches x %u reps (best rep)\n",
              Launches, Reps);
  std::printf("  capture off        %8.2f us/launch\n", PerLaunchOffUs);
  std::printf("  capture on (dedup) %8.2f us/launch  (%+.2f%%, %llu artifacts, "
              "%llu dedup skips, %llu drops)\n",
              PerLaunchOnUs, OverheadPct,
              static_cast<unsigned long long>(On.Artifacts),
              static_cast<unsigned long long>(On.Dedup),
              static_cast<unsigned long long>(On.Drops));
  std::printf("  capture all        %8.2f us/launch  (%+.2f%%, %llu artifacts, "
              "%llu drops; stress mode, ungated)\n",
              PerLaunchAllUs, AllOverheadPct,
              static_cast<unsigned long long>(All.Artifacts),
              static_cast<unsigned long long>(All.Drops));

  JsonReporter Report("capture");
  Report.beginRow("steady_state")
      .label("arch", "amdgcn-sim")
      .label("mode", Smoke ? "smoke" : "full")
      .metric("launches", Launches)
      .metric("reps", Reps)
      .metric("off_us_per_launch", PerLaunchOffUs)
      .metric("on_us_per_launch", PerLaunchOnUs)
      .metric("overhead_pct", OverheadPct)
      .metric("drops", static_cast<double>(On.Drops))
      .metric("dedup_skips", static_cast<double>(On.Dedup))
      .metric("artifacts", static_cast<double>(On.Artifacts));
  Report.beginRow("capture_all")
      .label("arch", "amdgcn-sim")
      .label("mode", Smoke ? "smoke" : "full")
      .metric("launches", Launches)
      .metric("reps", Reps)
      .metric("on_us_per_launch", PerLaunchAllUs)
      .metric("overhead_pct", AllOverheadPct)
      .metric("drops", static_cast<double>(All.Drops))
      .metric("artifacts", static_cast<double>(All.Artifacts));
  std::string Error;
  if (!Report.write("BENCH_capture.json", &Error)) {
    std::fprintf(stderr, "FATAL: %s\n", Error.c_str());
    return 1;
  }

  int Status = 0;
  if (On.Drops != 0 || All.Drops != 0) {
    std::fprintf(stderr,
                 "FAIL: capture shed launches at steady state "
                 "(ring 1024, %u in flight max; dedup %llu drops, "
                 "all %llu drops)\n",
                 Launches, static_cast<unsigned long long>(On.Drops),
                 static_cast<unsigned long long>(All.Drops));
    Status = 1;
  }
  // The dedup loop re-launches one shape: exactly the priming launch's
  // artifact, every timed launch a dedup skip.
  if (On.Artifacts != 1 || All.Artifacts == 0) {
    std::fprintf(stderr,
                 "FAIL: unexpected artifact counts (dedup %llu, want 1; "
                 "all %llu, want > 0)\n",
                 static_cast<unsigned long long>(On.Artifacts),
                 static_cast<unsigned long long>(All.Artifacts));
    Status = 1;
  }
  // The acceptance floor, on the default (dedup) mode. The smoke batch is
  // small enough that a single scheduler hiccup can dominate a 5% band, so
  // it gets headroom while still catching a capture path that turned from
  // a hash probe into per-launch snapshot work.
  double Ceiling = Smoke ? 50.0 : 5.0;
  if (OverheadPct > Ceiling) {
    std::fprintf(stderr, "FAIL: capture-on overhead %.2f%% exceeds %.1f%%\n",
                 OverheadPct, Ceiling);
    Status = 1;
  }
  return Status;
}
