//===- autotune_speedup.cpp - variant-manager tuning gain and cost --------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Measures what the replay-driven kernel variant manager buys and what it
// costs. One loop-heavy kernel launch is captured, the default
// configuration's steady-state simulated kernel time is measured on the
// live device, then the variant manager races block-size and pipeline
// variants on throwaway replay devices, promotes the empirical winner
// through the Tier-1 hot-swap path, and the winner's steady state is
// measured on the same live device. A second runtime over the same
// persistent cache then re-tunes the same artifact: it must be served
// entirely by the persisted decision — zero trials, zero compiles, one
// TunerCacheHits.
//
// Emits the self-validated BENCH_autotune.json. The tuning cost
// (simulated trial seconds plus host wall seconds) is reported separately
// from program device time — trials run on replay devices and never
// advance the live device's kernel clock. Exits non-zero when the
// acceptance floor is missed: at least 3 variants raced, winner no slower
// than the recorded default (in the race and at live steady state), and a
// warm re-tune that compiles and races nothing. `--smoke` reduces the
// launch batch for the ctest wiring (bench_smoke_autotune) and applies the
// same validation.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "capture/Artifact.h"
#include "ir/Context.h"
#include "ir/IRBuilder.h"
#include "ir/OpSemantics.h"
#include "jit/AutoTuner.h"
#include "jit/Program.h"
#include "support/FileSystem.h"
#include "support/Timer.h"

#include <cstring>
#include <memory>
#include <string>
#include <vector>

using namespace pir;
using namespace proteus;
using namespace proteus::bench;
using namespace proteus::gpu;

namespace {

constexpr uint32_t N = 4096;      // work items / elements
constexpr uint32_t Iters = 96;    // loop trips; above the default unroll cap
constexpr uint32_t Block0 = 256;  // recorded (default) block size

/// work(in, out, n, sf, iters): guarded gtid < n, then a loop of `iters`
/// trips accumulating in[gtid] * sf + k. The n and iters arguments are
/// jit-annotated, so specialization folds the guard and the trip count;
/// the in[gtid] * sf term is loop-invariant (LICM bait) and the 96-trip
/// bound sits above the default unroll cap of 64 but inside the
/// unroll-wide variant's 256 — the pipeline variants race for real.
std::unique_ptr<Module> buildWorkKernel(Context &Ctx) {
  auto M = std::make_unique<Module>(Ctx, "autotune_speedup_app");
  IRBuilder B(Ctx);
  Type *F64 = Ctx.getF64Ty();
  Type *I32 = Ctx.getI32Ty();
  Function *F = M->createFunction(
      "work", Ctx.getVoidTy(),
      {Ctx.getPtrTy(), Ctx.getPtrTy(), I32, F64, I32},
      {"in", "out", "n", "sf", "iters"}, FunctionKind::Kernel);
  F->setJitAnnotation(JitAnnotation{{3, 5}});
  Value *In = F->getArg(0), *Out = F->getArg(1), *Nv = F->getArg(2);
  Value *Sf = F->getArg(3), *It = F->getArg(4);

  BasicBlock *Entry = F->createBlock("entry", Ctx.getVoidTy());
  BasicBlock *Pre = F->createBlock("pre", Ctx.getVoidTy());
  BasicBlock *Header = F->createBlock("header", Ctx.getVoidTy());
  BasicBlock *Body = F->createBlock("body", Ctx.getVoidTy());
  BasicBlock *Store = F->createBlock("store", Ctx.getVoidTy());
  BasicBlock *Exit = F->createBlock("exit", Ctx.getVoidTy());

  B.setInsertPoint(Entry);
  Value *Gtid = B.createGlobalThreadIdX();
  B.createCondBr(B.createICmp(ICmpPred::SLT, Gtid, Nv), Pre, Exit);

  // A dedicated preheader keeps the loop canonical (guarded headers have
  // no preheader, which defeats both LICM and the unroller); the in[gtid]
  // load lives here so the loop body is pure ALU work.
  B.setInsertPoint(Pre);
  Value *InV = B.createLoad(F64, B.createGep(F64, In, Gtid), "inv");
  B.createBr(Header);

  B.setInsertPoint(Header);
  PhiInst *K = B.createPhi(I32, "k");
  PhiInst *Acc = B.createPhi(F64, "acc");
  K->addIncoming(B.getInt32(0), Pre);
  Acc->addIncoming(B.getDouble(0.0), Pre);
  B.createCondBr(B.createICmp(ICmpPred::SLT, K, It), Body, Store);

  B.setInsertPoint(Body);
  Value *Inv = B.createFMul(InV, Sf, "scaled"); // loop-invariant
  Value *Term = B.createFAdd(Inv, B.createSIToFP(K, F64), "term");
  Value *Acc2 = B.createFAdd(Acc, Term, "acc2");
  Value *K2 = B.createAdd(K, B.getInt32(1), "k2");
  K->addIncoming(K2, Body);
  Acc->addIncoming(Acc2, Body);
  B.createBr(Header);

  B.setInsertPoint(Store);
  B.createStore(Acc, B.createGep(F64, Out, Gtid));
  B.createRet();

  B.setInsertPoint(Exit);
  B.createRet();
  return M;
}

/// Launches `Launches` warm launches at the given geometry and returns the
/// simulated kernel seconds per launch (the device clock is deterministic,
/// so no repetition/min dance is needed — this is the quantity the tuner
/// optimizes, reported apart from host wall time).
double steadyStateSimSeconds(Device &Dev, LoadedProgram &LP, Dim3 Grid,
                             Dim3 Block,
                             const std::vector<KernelArg> &Args,
                             unsigned Launches) {
  const double Before = Dev.kernelSeconds();
  for (unsigned L = 0; L != Launches; ++L) {
    std::string Error;
    if (LP.launch("work", Grid, Block, Args, &Error) != GpuError::Success) {
      std::fprintf(stderr, "FATAL: steady-state launch failed: %s\n",
                   Error.c_str());
      std::exit(1);
    }
  }
  return (Dev.kernelSeconds() - Before) / Launches;
}

} // namespace

int main(int Argc, char **Argv) {
  bool Smoke = false;
  for (int I = 1; I < Argc; ++I)
    if (std::strcmp(Argv[I], "--smoke") == 0)
      Smoke = true;

  const unsigned Launches = Smoke ? 32 : 256;

  Context Ctx;
  std::unique_ptr<Module> M = buildWorkKernel(Ctx);
  AotOptions AO;
  AO.Arch = GpuArch::AmdGcnSim;
  AO.EnableProteusExtensions = true;
  CompiledProgram Prog = aotCompile(*M, AO);

  std::string CacheDir = fs::makeTempDirectory("proteus-autotune-bench");
  std::string CaptureDir = fs::makeTempDirectory("proteus-autotune-cap");

  int Status = 0;
  capture::CaptureArtifact A;
  double BaselineSimUs = 0, WinnerSimUs = 0;
  VariantTuningResult Cold;

  {
    JitConfig JC;
    JC.CacheDir = CacheDir;
    JC.Capture = true;
    JC.CaptureDir = CaptureDir;
    JC.Tune = true;

    Device Dev(getTarget(GpuArch::AmdGcnSim), 1 << 22);
    JitRuntime Jit(Dev, Prog.ModuleId, JC);
    LoadedProgram LP(Dev, Prog, &Jit);
    if (!LP.ok()) {
      std::fprintf(stderr, "FATAL: program load failed: %s\n",
                   LP.error().c_str());
      return 1;
    }
    DevicePtr In = 0, Out = 0;
    gpuMalloc(Dev, &In, N * 8);
    gpuMalloc(Dev, &Out, N * 8);
    std::vector<double> H(N, 1.25);
    gpuMemcpyHtoD(Dev, In, H.data(), N * 8);
    std::vector<KernelArg> Args = {
        {In}, {Out}, {N}, {sem::boxF64(1.0009765625)}, {Iters}};

    const Dim3 Grid0{N / Block0, 1, 1};
    const Dim3 BlockDim0{Block0, 1, 1};

    // One launch records the artifact (dedup keeps the rest cheap).
    std::string Error;
    if (LP.launch("work", Grid0, BlockDim0, Args, &Error) !=
        GpuError::Success) {
      std::fprintf(stderr, "FATAL: capture launch failed: %s\n",
                   Error.c_str());
      return 1;
    }
    Jit.drain();
    std::vector<std::string> Files = fs::listFiles(CaptureDir);
    if (Files.size() != 1) {
      std::fprintf(stderr, "FATAL: expected 1 capture artifact, found %zu\n",
                   Files.size());
      return 1;
    }
    std::string ReadError;
    std::optional<capture::CaptureArtifact> Read =
        capture::readArtifactFile(CaptureDir + "/" + Files[0], &ReadError);
    if (!Read) {
      std::fprintf(stderr, "FATAL: cannot read artifact: %s\n",
                   ReadError.c_str());
      return 1;
    }
    A = *Read;

    // Program device time before tuning: the recorded default's steady
    // state on the live device.
    BaselineSimUs =
        steadyStateSimSeconds(Dev, LP, Grid0, BlockDim0, Args, Launches) *
        1e6;

    // Race the variants on the replay substrate, promote the winner here.
    VariantManager VM(Jit, VariantManager::Options::fromConfig(JC));
    Cold = VM.tuneArtifact(A);
    if (!Cold.Ok) {
      std::fprintf(stderr, "FATAL: tuning failed: %s\n", Cold.Error.c_str());
      return 1;
    }

    // Program device time after tuning: the promoted winner's steady state
    // at its tuned geometry, same device, same buffers.
    WinnerSimUs = steadyStateSimSeconds(Dev, LP, Cold.Winner.Grid,
                                        Cold.Winner.Block, Args, Launches) *
                  1e6;
    Jit.drain();
  }

  // A fresh runtime over the same persistent cache: the warm fleet. The
  // persisted decision must serve the whole session — no trials, no
  // compiles, winner installed straight from the code cache.
  VariantTuningResult Warm;
  JitRuntimeStats WarmStats;
  double WarmWallSeconds = 0;
  {
    JitConfig JC;
    JC.CacheDir = CacheDir;
    JC.Tune = true;

    Device Dev(getTarget(GpuArch::AmdGcnSim), 1 << 22);
    JitRuntime Jit(Dev, Prog.ModuleId, JC);
    LoadedProgram LP(Dev, Prog, &Jit);
    if (!LP.ok()) {
      std::fprintf(stderr, "FATAL: warm program load failed: %s\n",
                   LP.error().c_str());
      return 1;
    }
    Timer T;
    VariantManager VM(Jit, VariantManager::Options::fromConfig(JC));
    Warm = VM.tuneArtifact(A);
    WarmWallSeconds = T.seconds();
    Jit.drain();
    WarmStats = Jit.stats();
  }

  fs::removeAllFiles(CaptureDir);
  fs::removeAllFiles(CacheDir);

  const double RaceSpeedup =
      Cold.WinnerSeconds > 0 ? Cold.BaselineSeconds / Cold.WinnerSeconds : 0;
  const double LiveSpeedup = WinnerSimUs > 0 ? BaselineSimUs / WinnerSimUs : 0;

  std::printf("autotune_speedup: %u-thread work kernel, %u launches/side\n",
              N, Launches);
  for (const VariantTrial &T : Cold.Trials)
    std::printf("  trial   %-12s %s  %8.3f us  (%llu instrs)\n",
                T.Spec.Name.c_str(),
                T.Ok && T.OutputMatch ? "ok " : "BAD",
                T.KernelSeconds * 1e6,
                static_cast<unsigned long long>(T.Stats.TotalInstrs));
  std::printf("  race    %zu trials, winner '%s' block %u: %.3f -> %.3f us "
              "(%.2fx)\n",
              Cold.Trials.size(), Cold.Winner.Name.c_str(),
              static_cast<unsigned>(Cold.Winner.Block.X),
              Cold.BaselineSeconds * 1e6, Cold.WinnerSeconds * 1e6,
              RaceSpeedup);
  std::printf("  live    %.3f -> %.3f us/launch (%.2fx)\n", BaselineSimUs,
              WinnerSimUs, LiveSpeedup);
  std::printf("  cost    %.3f ms simulated trial time, %.3f ms wall "
              "(separate from program device time)\n",
              Cold.TuningSeconds * 1e3, Cold.TuningWallSeconds * 1e3);
  std::printf("  warm    cache_hit=%d trials=%zu compiles=%llu "
              "(%.3f ms wall)\n",
              Warm.FromCache ? 1 : 0, Warm.Trials.size(),
              static_cast<unsigned long long>(WarmStats.Compilations),
              WarmWallSeconds * 1e3);

  JsonReporter Report("autotune");
  Report.beginRow("cold_tune")
      .label("arch", "amdgcn-sim")
      .label("mode", Smoke ? "smoke" : "full")
      .label("winner", Cold.Winner.Name)
      .metric("trials", static_cast<double>(Cold.Trials.size()))
      .metric("winner_block", Cold.Winner.Block.X)
      .metric("baseline_trial_us", Cold.BaselineSeconds * 1e6)
      .metric("winner_trial_us", Cold.WinnerSeconds * 1e6)
      .metric("race_speedup", RaceSpeedup)
      .metric("tuning_sim_ms", Cold.TuningSeconds * 1e3)
      .metric("tuning_wall_ms", Cold.TuningWallSeconds * 1e3);
  Report.beginRow("steady_state")
      .label("arch", "amdgcn-sim")
      .label("mode", Smoke ? "smoke" : "full")
      .metric("launches", Launches)
      .metric("baseline_us_per_launch", BaselineSimUs)
      .metric("winner_us_per_launch", WinnerSimUs)
      .metric("speedup", LiveSpeedup);
  Report.beginRow("warm_tune")
      .label("arch", "amdgcn-sim")
      .label("mode", Smoke ? "smoke" : "full")
      .metric("from_cache", Warm.FromCache ? 1 : 0)
      .metric("trials", static_cast<double>(Warm.Trials.size()))
      .metric("compilations", static_cast<double>(WarmStats.Compilations))
      .metric("tier0_compiles", static_cast<double>(WarmStats.Tier0Compiles))
      .metric("tuner_cache_hits",
              static_cast<double>(WarmStats.TunerCacheHits))
      .metric("wall_ms", WarmWallSeconds * 1e3);
  std::string WriteError;
  if (!Report.write("BENCH_autotune.json", &WriteError)) {
    std::fprintf(stderr, "FATAL: %s\n", WriteError.c_str());
    return 1;
  }

  // Acceptance floor.
  if (Cold.Trials.size() < 3) {
    std::fprintf(stderr, "FAIL: only %zu variants raced, want >= 3\n",
                 Cold.Trials.size());
    Status = 1;
  }
  if (Cold.BaselineSeconds > 0 &&
      Cold.WinnerSeconds > Cold.BaselineSeconds) {
    std::fprintf(stderr,
                 "FAIL: race winner %.6g us slower than default %.6g us\n",
                 Cold.WinnerSeconds * 1e6, Cold.BaselineSeconds * 1e6);
    Status = 1;
  }
  // The device clock is deterministic, so the promoted winner may not lose
  // to the default at live steady state; the sliver of tolerance only
  // absorbs floating-point accumulation across the launch loop.
  if (WinnerSimUs > BaselineSimUs * 1.001) {
    std::fprintf(stderr,
                 "FAIL: live winner %.6g us/launch slower than baseline "
                 "%.6g us/launch\n",
                 WinnerSimUs, BaselineSimUs);
    Status = 1;
  }
  if (!Warm.Ok || !Warm.FromCache || !Warm.Promoted ||
      !Warm.Trials.empty()) {
    std::fprintf(stderr,
                 "FAIL: warm re-tune was not served by the persisted "
                 "decision (ok=%d from_cache=%d promoted=%d trials=%zu): %s\n",
                 Warm.Ok ? 1 : 0, Warm.FromCache ? 1 : 0,
                 Warm.Promoted ? 1 : 0, Warm.Trials.size(),
                 Warm.Error.c_str());
    Status = 1;
  }
  if (WarmStats.Compilations != 0 || WarmStats.Tier0Compiles != 0 ||
      WarmStats.TunerTrials != 0 || WarmStats.TunerCacheHits != 1) {
    std::fprintf(stderr,
                 "FAIL: warm re-tune did work (compiles=%llu tier0=%llu "
                 "trials=%llu cache_hits=%llu; want 0/0/0/1)\n",
                 static_cast<unsigned long long>(WarmStats.Compilations),
                 static_cast<unsigned long long>(WarmStats.Tier0Compiles),
                 static_cast<unsigned long long>(WarmStats.TunerTrials),
                 static_cast<unsigned long long>(WarmStats.TunerCacheHits));
    Status = 1;
  }
  return Status;
}
