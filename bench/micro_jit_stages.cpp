//===- micro_jit_stages.cpp - JIT pipeline stage micro-benchmarks -------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
//
// google-benchmark micro-benchmarks of the individual stages a Proteus
// cache miss pays — bitcode parse, global linking + specialization, the O3
// pipeline, backend code generation (with and without the PTX detour) —
// alongside the stages Jitify pays instead (full source parse including its
// header library). These are the mechanism behind Figures 4-6.
//
// The binary also measures the tiered-JIT cold start (PROTEUS_TIER): the
// launch-visible compile cost of a cold run with tiering off (full pipeline
// inline) versus on (Tier-0 only), written to BENCH_coldstart.json via the
// self-validating JSON reporter. `--smoke` runs one reduced iteration of
// that measurement and re-validates the emitted JSON (the bench_smoke
// ctest).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "bitcode/Bitcode.h"
#include "codegen/Compiler.h"
#include "hecbench/Benchmark.h"
#include "ir/Context.h"
#include "ir/IRParser.h"
#include "ir/IRPrinter.h"
#include "ir/Module.h"
#include "jit/CodeCache.h"
#include "jitify/Jitify.h"
#include "support/FileSystem.h"
#include "transforms/SpecializeArgs.h"

#include <benchmark/benchmark.h>

using namespace proteus;

namespace {

/// The WSM5 kernel module is the workhorse: representative size, loops,
/// selects, annotations.
std::vector<uint8_t> wsm5Bitcode() {
  static const std::vector<uint8_t> &BC = *[] {
    pir::Context Ctx;
    auto B = hecbench::makeWsm5Benchmark();
    auto M = B->buildModule(Ctx);
    return new std::vector<uint8_t>(writeBitcode(*M));
  }();
  return BC;
}

std::string wsm5Source() {
  static const std::string &Src = *[] {
    pir::Context Ctx;
    auto B = hecbench::makeWsm5Benchmark();
    auto M = B->buildModule(Ctx);
    return new std::string(pir::printModule(*M));
  }();
  return Src;
}

void BM_BitcodeParse(benchmark::State &State) {
  std::vector<uint8_t> BC = wsm5Bitcode();
  for (auto _ : State) {
    pir::Context Ctx;
    auto R = readBitcode(Ctx, BC);
    benchmark::DoNotOptimize(R.M);
  }
  State.SetBytesProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(BC.size()));
}
BENCHMARK(BM_BitcodeParse);

void BM_SourceParse_ProteusEquivalentOfJitify(benchmark::State &State) {
  std::string Src = wsm5Source();
  for (auto _ : State) {
    pir::Context Ctx;
    auto R = pir::parseModule(Ctx, Src);
    benchmark::DoNotOptimize(R.M);
  }
  State.SetBytesProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(Src.size()));
}
BENCHMARK(BM_SourceParse_ProteusEquivalentOfJitify);

void BM_JitifyHeaderParse(benchmark::State &State) {
  const std::string &Hdr = JitifyRuntime::headerText();
  for (auto _ : State) {
    pir::Context Ctx;
    auto R = pir::parseModule(Ctx, Hdr);
    benchmark::DoNotOptimize(R.M);
  }
  State.SetBytesProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(Hdr.size()));
}
BENCHMARK(BM_JitifyHeaderParse);

void BM_SpecializeAndO3(benchmark::State &State) {
  std::vector<uint8_t> BC = wsm5Bitcode();
  for (auto _ : State) {
    pir::Context Ctx;
    auto R = readBitcode(Ctx, BC);
    pir::Function *F = R.M->getFunction("wsm5");
    specializeArguments(*F, {{6, 16}, {11, 0}});
    specializeLaunchBounds(*F, 128);
    runO3(*R.M);
    benchmark::DoNotOptimize(F);
  }
}
BENCHMARK(BM_SpecializeAndO3);

void BM_BackendAmd(benchmark::State &State) {
  pir::Context Ctx;
  auto R = readBitcode(Ctx, wsm5Bitcode());
  runO3(*R.M);
  pir::Function *F = R.M->getFunction("wsm5");
  for (auto _ : State) {
    auto Obj = compileKernelToObject(*F, getAmdGcnSimTarget());
    benchmark::DoNotOptimize(Obj);
  }
}
BENCHMARK(BM_BackendAmd);

void BM_BackendNvidiaWithPtxStep(benchmark::State &State) {
  pir::Context Ctx;
  auto R = readBitcode(Ctx, wsm5Bitcode());
  runO3(*R.M);
  pir::Function *F = R.M->getFunction("wsm5");
  for (auto _ : State) {
    auto Obj = compileKernelToObject(*F, getNvPtxSimTarget());
    benchmark::DoNotOptimize(Obj);
  }
}
BENCHMARK(BM_BackendNvidiaWithPtxStep);

void BM_CacheHashAndMemoryLookup(benchmark::State &State) {
  CodeCache Cache(true, false, "");
  SpecializationKey Key;
  Key.ModuleId = 0xfeedface;
  Key.KernelSymbol = "wsm5";
  Key.FoldedArgs = {{6, 16}, {8, 42}, {11, 0}};
  Key.LaunchBoundsThreads = 128;
  Cache.insert(computeSpecializationHash(Key), std::vector<uint8_t>(4096));
  for (auto _ : State) {
    uint64_t H = computeSpecializationHash(Key);
    auto Hit = Cache.lookup(H);
    benchmark::DoNotOptimize(Hit);
  }
}
BENCHMARK(BM_CacheHashAndMemoryLookup);

void BM_PersistentCacheLookup(benchmark::State &State) {
  std::string Dir = fs::makeTempDirectory("proteus-microcache");
  CodeCache Writer(false, true, Dir);
  Writer.insert(0x1234, std::vector<uint8_t>(8192));
  for (auto _ : State) {
    CodeCache Cold(false, true, Dir); // no memory level: always hits disk
    auto Hit = Cold.lookup(0x1234);
    benchmark::DoNotOptimize(Hit);
  }
  fs::removeAllFiles(Dir);
}
BENCHMARK(BM_PersistentCacheLookup);

/// Cold-start comparison behind the tiering claim: per program, one cold
/// Proteus run with the full pipeline on the launch path (tier off) and
/// one where only Tier-0 is launch-visible (tier on). Both runs verify
/// their outputs (checked()), so the latency numbers come with a
/// correctness proof attached. Returns false if the report cannot be
/// written.
bool writeColdstartReport(bool Smoke) {
  using namespace proteus::bench;
  using namespace proteus::hecbench;

  std::vector<std::unique_ptr<Benchmark>> Programs;
  Programs.push_back(makeWsm5Benchmark());
  if (!Smoke) {
    Programs.push_back(makeAdamBenchmark());
    Programs.push_back(makeRsbenchBenchmark());
  }

  JsonReporter Rep("coldstart");
  double OffVisible = 0, OnVisible = 0;
  for (const auto &B : Programs) {
    for (bool Tier : {false, true}) {
      RunConfig C;
      C.Arch = GpuArch::AmdGcnSim;
      C.Mode = ExecMode::Proteus;
      C.Jit.UsePersistentCache = false; // every specialization is cold
      C.Jit.Tier = Tier;
      RunResult R = checked(runBenchmark(*B, C),
                            B->name() + std::string(Tier ? " (tier on)"
                                                         : " (tier off)"));
      Rep.beginRow(B->name())
          .label("mode", Tier ? "tier_on" : "tier_off")
          .metric("visible_compile_seconds", R.Jit.LaunchBlockedSeconds)
          .metric("tier0_visible_seconds", R.Jit.Tier0VisibleSeconds)
          .metric("total_compile_seconds", R.Jit.totalCompileSeconds())
          .metric("tier0_compiles", static_cast<double>(R.Jit.Tier0Compiles))
          .metric("final_compiles", static_cast<double>(R.Jit.Compilations))
          .metric("tier1_promotions",
                  static_cast<double>(R.Jit.Tier1Promotions))
          .metric("end_to_end_seconds", R.endToEndSeconds());
      (Tier ? OnVisible : OffVisible) += R.Jit.LaunchBlockedSeconds;
    }
  }
  Rep.beginRow("summary")
      .metric("tier_off_visible_seconds", OffVisible)
      .metric("tier_on_visible_seconds", OnVisible)
      .metric("coldstart_speedup",
              OnVisible > 0 ? OffVisible / OnVisible : 0);

  std::string Err;
  if (!Rep.write("BENCH_coldstart.json", &Err)) {
    std::fprintf(stderr, "FATAL: %s\n", Err.c_str());
    return false;
  }
  std::printf("cold-start visible compile: tier off %.4fs, tier on %.4fs"
              " (%.2fx) -> BENCH_coldstart.json\n",
              OffVisible, OnVisible,
              OnVisible > 0 ? OffVisible / OnVisible : 0.0);
  return true;
}

/// Re-reads the emitted report and checks it parses and carries the rows
/// the smoke test expects — the end-to-end JSON pipeline check.
bool validateColdstartReport() {
  auto Bytes = proteus::fs::readFile("BENCH_coldstart.json");
  if (!Bytes.has_value()) {
    std::fprintf(stderr, "FATAL: BENCH_coldstart.json missing\n");
    return false;
  }
  std::string Text(Bytes->begin(), Bytes->end());
  proteus::json::ParseResult PR = proteus::json::parse(Text);
  if (!PR) {
    std::fprintf(stderr, "FATAL: BENCH_coldstart.json invalid: %s\n",
                 PR.Error.c_str());
    return false;
  }
  const proteus::json::Value *Rows = PR.V.find("rows");
  if (!Rows || !Rows->isArray() || Rows->Arr.empty()) {
    std::fprintf(stderr, "FATAL: BENCH_coldstart.json has no rows\n");
    return false;
  }
  return true;
}

} // namespace

int main(int argc, char **argv) {
  bool Smoke = false;
  for (int I = 1; I < argc; ++I)
    if (std::string(argv[I]) == "--smoke")
      Smoke = true;

  if (!Smoke) {
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
      return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }

  if (!writeColdstartReport(Smoke) || !validateColdstartReport())
    return 1;
  return 0;
}
