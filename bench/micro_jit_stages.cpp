//===- micro_jit_stages.cpp - JIT pipeline stage micro-benchmarks -------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
//
// google-benchmark micro-benchmarks of the individual stages a Proteus
// cache miss pays — bitcode parse, global linking + specialization, the O3
// pipeline, backend code generation (with and without the PTX detour) —
// alongside the stages Jitify pays instead (full source parse including its
// header library). These are the mechanism behind Figures 4-6.
//
//===----------------------------------------------------------------------===//

#include "bitcode/Bitcode.h"
#include "codegen/Compiler.h"
#include "hecbench/Benchmark.h"
#include "ir/Context.h"
#include "ir/IRParser.h"
#include "ir/IRPrinter.h"
#include "ir/Module.h"
#include "jit/CodeCache.h"
#include "jitify/Jitify.h"
#include "support/FileSystem.h"
#include "transforms/SpecializeArgs.h"

#include <benchmark/benchmark.h>

using namespace proteus;

namespace {

/// The WSM5 kernel module is the workhorse: representative size, loops,
/// selects, annotations.
std::vector<uint8_t> wsm5Bitcode() {
  static const std::vector<uint8_t> &BC = *[] {
    pir::Context Ctx;
    auto B = hecbench::makeWsm5Benchmark();
    auto M = B->buildModule(Ctx);
    return new std::vector<uint8_t>(writeBitcode(*M));
  }();
  return BC;
}

std::string wsm5Source() {
  static const std::string &Src = *[] {
    pir::Context Ctx;
    auto B = hecbench::makeWsm5Benchmark();
    auto M = B->buildModule(Ctx);
    return new std::string(pir::printModule(*M));
  }();
  return Src;
}

void BM_BitcodeParse(benchmark::State &State) {
  std::vector<uint8_t> BC = wsm5Bitcode();
  for (auto _ : State) {
    pir::Context Ctx;
    auto R = readBitcode(Ctx, BC);
    benchmark::DoNotOptimize(R.M);
  }
  State.SetBytesProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(BC.size()));
}
BENCHMARK(BM_BitcodeParse);

void BM_SourceParse_ProteusEquivalentOfJitify(benchmark::State &State) {
  std::string Src = wsm5Source();
  for (auto _ : State) {
    pir::Context Ctx;
    auto R = pir::parseModule(Ctx, Src);
    benchmark::DoNotOptimize(R.M);
  }
  State.SetBytesProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(Src.size()));
}
BENCHMARK(BM_SourceParse_ProteusEquivalentOfJitify);

void BM_JitifyHeaderParse(benchmark::State &State) {
  const std::string &Hdr = JitifyRuntime::headerText();
  for (auto _ : State) {
    pir::Context Ctx;
    auto R = pir::parseModule(Ctx, Hdr);
    benchmark::DoNotOptimize(R.M);
  }
  State.SetBytesProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(Hdr.size()));
}
BENCHMARK(BM_JitifyHeaderParse);

void BM_SpecializeAndO3(benchmark::State &State) {
  std::vector<uint8_t> BC = wsm5Bitcode();
  for (auto _ : State) {
    pir::Context Ctx;
    auto R = readBitcode(Ctx, BC);
    pir::Function *F = R.M->getFunction("wsm5");
    specializeArguments(*F, {{6, 16}, {11, 0}});
    specializeLaunchBounds(*F, 128);
    runO3(*R.M);
    benchmark::DoNotOptimize(F);
  }
}
BENCHMARK(BM_SpecializeAndO3);

void BM_BackendAmd(benchmark::State &State) {
  pir::Context Ctx;
  auto R = readBitcode(Ctx, wsm5Bitcode());
  runO3(*R.M);
  pir::Function *F = R.M->getFunction("wsm5");
  for (auto _ : State) {
    auto Obj = compileKernelToObject(*F, getAmdGcnSimTarget());
    benchmark::DoNotOptimize(Obj);
  }
}
BENCHMARK(BM_BackendAmd);

void BM_BackendNvidiaWithPtxStep(benchmark::State &State) {
  pir::Context Ctx;
  auto R = readBitcode(Ctx, wsm5Bitcode());
  runO3(*R.M);
  pir::Function *F = R.M->getFunction("wsm5");
  for (auto _ : State) {
    auto Obj = compileKernelToObject(*F, getNvPtxSimTarget());
    benchmark::DoNotOptimize(Obj);
  }
}
BENCHMARK(BM_BackendNvidiaWithPtxStep);

void BM_CacheHashAndMemoryLookup(benchmark::State &State) {
  CodeCache Cache(true, false, "");
  SpecializationKey Key;
  Key.ModuleId = 0xfeedface;
  Key.KernelSymbol = "wsm5";
  Key.FoldedArgs = {{6, 16}, {8, 42}, {11, 0}};
  Key.LaunchBoundsThreads = 128;
  Cache.insert(computeSpecializationHash(Key), std::vector<uint8_t>(4096));
  for (auto _ : State) {
    uint64_t H = computeSpecializationHash(Key);
    auto Hit = Cache.lookup(H);
    benchmark::DoNotOptimize(Hit);
  }
}
BENCHMARK(BM_CacheHashAndMemoryLookup);

void BM_PersistentCacheLookup(benchmark::State &State) {
  std::string Dir = fs::makeTempDirectory("proteus-microcache");
  CodeCache Writer(false, true, Dir);
  Writer.insert(0x1234, std::vector<uint8_t>(8192));
  for (auto _ : State) {
    CodeCache Cold(false, true, Dir); // no memory level: always hits disk
    auto Hit = Cold.lookup(0x1234);
    benchmark::DoNotOptimize(Hit);
  }
  fs::removeAllFiles(Dir);
}
BENCHMARK(BM_PersistentCacheLookup);

} // namespace

BENCHMARK_MAIN();
