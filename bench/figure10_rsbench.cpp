//===- figure10_rsbench.cpp - paper Figure 10 reproduction -------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
//
// In-depth analysis of RSBENCH (paper Figure 10): kernel duration and
// hardware counters under AOT and the JIT specialization modes
// None/LB/RCF/LB+RCF, on both simulated architectures.
//
//===----------------------------------------------------------------------===//

#include "InDepth.h"

using namespace proteus;
using namespace proteus::bench;

int main() {
  std::string Root = fs::makeTempDirectory("proteus-figure10_rsbench");
  auto B = hecbench::makeRsbenchBenchmark();
  std::printf("=== Figure 10: in-depth analysis of %s ===\n",
              B->name().c_str());
  printInDepth(*B, GpuArch::AmdGcnSim, Root);
  printInDepth(*B, GpuArch::NvPtxSim, Root);
  return 0;
}
