//===- figure11_sw4ck.cpp - paper Figure 11 reproduction -------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
//
// In-depth analysis of SW4CK (paper Figure 11): kernel duration and
// hardware counters under AOT and the JIT specialization modes
// None/LB/RCF/LB+RCF, on both simulated architectures.
//
//===----------------------------------------------------------------------===//

#include "InDepth.h"

using namespace proteus;
using namespace proteus::bench;

int main() {
  std::string Root = fs::makeTempDirectory("proteus-figure11_sw4ck");
  auto B = hecbench::makeSw4ckBenchmark();
  std::printf("=== Figure 11: in-depth analysis of %s ===\n",
              B->name().c_str());
  printInDepth(*B, GpuArch::AmdGcnSim, Root);
  printInDepth(*B, GpuArch::NvPtxSim, Root);
  return 0;
}
