//===- fleet_throughput.cpp - fleet-scale shared-cache benchmark ----------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Fleet-scale JIT cache throughput: forks one proteus-cached daemon plus K
// client processes sharing it over the unix-socket protocol, and gates the
// three properties the shared service exists to provide:
//
//   1. Cold K-process storm: every client races the same set of unique
//      specializations; the fleet-wide compile claims must collapse the
//      storm to EXACTLY one compile per unique specialization — everyone
//      else is served the published object.
//   2. Warm fleet: K fresh processes against the warm service perform zero
//      compiles — every lookup is a hit.
//   3. Remote-hit latency: the median daemon-served lookup costs at most
//      5x the median local disk-served lookup (batched round-trips keep
//      the socket hop from dominating).
//
// Emits the self-validated BENCH_fleet.json and exits nonzero when any
// gate fails; --smoke runs the same gates on a reduced configuration.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "fleet/Protocol.h"
#include "fleet/RemoteBackend.h"
#include "jit/CodeCache.h"
#include "support/FileSystem.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

using namespace proteus;
using Clock = std::chrono::steady_clock;

namespace {

struct Config {
  unsigned Clients = 6;
  unsigned Keys = 32;
  size_t PayloadBytes = 256 * 1024;
  unsigned Shards = 4;
  unsigned LatencyIters = 400;
  unsigned LatencyThreads = 4;
};

/// What each forked client reports back over its pipe.
struct ClientReport {
  uint64_t Compiles = 0; ///< specializations this client compiled itself
  uint64_t Hits = 0;     ///< served straight from the cache
  uint64_t Served = 0;   ///< waited on another process's in-flight compile
  uint64_t Errors = 0;   ///< payload mismatches / unexpected misses
};

uint64_t keyFor(unsigned I) {
  // Spread keys across the shard ring like real specialization hashes do.
  uint64_t X = (I + 1) * 0x9e3779b97f4a7c15ULL;
  X ^= X >> 29;
  return X;
}

/// Deterministic per-key object bytes: every process can both generate and
/// verify them, so a cross-process corruption can never go unnoticed.
std::vector<uint8_t> payloadFor(uint64_t Key, size_t Bytes) {
  std::vector<uint8_t> Out(Bytes);
  uint64_t X = Key ^ 0x5bf0363502a1c3f7ULL;
  for (size_t I = 0; I != Bytes; ++I) {
    X = X * 6364136223846793005ULL + 1442695040888963407ULL;
    Out[I] = static_cast<uint8_t>(X >> 33);
  }
  return Out;
}

std::unique_ptr<CodeCache> makeRemoteCache(const std::string &Socket,
                                           const std::string &Dir,
                                           const Config &C) {
  CacheLimits Limits;
  Limits.Shards = C.Shards;
  fleet::RemoteBackendOptions RO;
  RO.SocketPath = Socket;
  RO.FallbackDir = Dir;
  RO.Fallback = CodeCache::backendOptions(Limits);
  // Memory level off: every lookup must cross the wire, which is the path
  // under test.
  return std::make_unique<CodeCache>(
      false, true, Dir, Limits,
      std::make_unique<fleet::RemoteCacheBackend>(std::move(RO)));
}

/// Forks and execs the proteus-cached daemon, then waits until it answers a
/// Ping. Returns the daemon pid, or -1.
pid_t spawnDaemon(const std::string &Socket, const std::string &Dir,
                  const Config &C) {
  std::string SockArg = "--socket=" + Socket;
  std::string DirArg = "--dir=" + Dir;
  std::string ShardArg = "--shards=" + std::to_string(C.Shards);
  pid_t Pid = fork();
  if (Pid < 0)
    return -1;
  if (Pid == 0) {
    execl(PROTEUS_CACHED_BIN, PROTEUS_CACHED_BIN, SockArg.c_str(),
          DirArg.c_str(), ShardArg.c_str(), "--workers=4",
          static_cast<char *>(nullptr));
    _exit(127);
  }
  for (int Try = 0; Try != 100; ++Try) {
    int Fd = fleet::net::connectUnix(Socket, 200);
    if (Fd >= 0) {
      fleet::wire::Request Ping;
      Ping.Kind = fleet::wire::Op::Ping;
      bool Up = fleet::net::writeFrame(Fd, fleet::wire::encodeRequest(Ping)) &&
                fleet::net::readFrame(Fd).has_value();
      fleet::net::closeFd(Fd);
      if (Up)
        return Pid;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  kill(Pid, SIGKILL);
  waitpid(Pid, nullptr, 0);
  return -1;
}

void stopDaemon(pid_t Pid) {
  if (Pid <= 0)
    return;
  kill(Pid, SIGTERM);
  int Status = 0;
  waitpid(Pid, &Status, 0);
}

/// Forks \p K client processes running \p Body and collects their reports.
/// The parent must be single-threaded when this is called.
template <typename Fn>
std::vector<ClientReport> runFleet(unsigned K, Fn Body) {
  std::vector<ClientReport> Reports(K);
  std::vector<int> ReadFds(K, -1);
  std::vector<pid_t> Pids(K, -1);
  for (unsigned I = 0; I != K; ++I) {
    int P[2];
    if (pipe(P) != 0) {
      std::fprintf(stderr, "FATAL: pipe failed\n");
      std::exit(1);
    }
    pid_t Pid = fork();
    if (Pid < 0) {
      std::fprintf(stderr, "FATAL: fork failed\n");
      std::exit(1);
    }
    if (Pid == 0) {
      close(P[0]);
      ClientReport R = Body(I);
      ssize_t W = write(P[1], &R, sizeof(R));
      _exit(W == static_cast<ssize_t>(sizeof(R)) && R.Errors == 0 ? 0 : 1);
    }
    close(P[1]);
    ReadFds[I] = P[0];
    Pids[I] = Pid;
  }
  for (unsigned I = 0; I != K; ++I) {
    ClientReport R;
    ssize_t N = read(ReadFds[I], &R, sizeof(R));
    close(ReadFds[I]);
    if (N == static_cast<ssize_t>(sizeof(R)))
      Reports[I] = R;
    else
      Reports[I].Errors = 1; // client died before reporting
    int Status = 0;
    waitpid(Pids[I], &Status, 0);
    if (!WIFEXITED(Status) || WEXITSTATUS(Status) != 0)
      Reports[I].Errors = std::max<uint64_t>(Reports[I].Errors, 1);
  }
  return Reports;
}

/// One cold-storm client: race every key through the claim protocol,
/// simulating the compiler with the deterministic payload generator.
ClientReport stormClient(unsigned Idx, const std::string &Socket,
                         const std::string &Dir, const Config &C) {
  auto Cache = makeRemoteCache(Socket, Dir, C);
  ClientReport R;
  for (unsigned J = 0; J != C.Keys; ++J) {
    // Rotate the visit order per client so every key sees real contention.
    unsigned I = (J + Idx * 7) % C.Keys;
    uint64_t Hash = keyFor(I);
    std::vector<uint8_t> Expected = payloadFor(Hash, C.PayloadBytes);
    auto Check = [&](const std::vector<uint8_t> &Got) {
      if (Got != Expected)
        ++R.Errors;
    };
    if (auto E = Cache->lookupEntry(Hash)) {
      Check(E->Object);
      ++R.Hits;
      continue;
    }
    auto CompileAndPublish = [&] {
      // Hold the claim long enough that the other K-1 clients pile up on
      // this key; fleet dedup must still yield exactly one compile.
      auto Until = Clock::now() + std::chrono::microseconds(300);
      while (Clock::now() < Until) {
      }
      Cache->insert(Hash, Expected);
      Cache->endCompile(Hash);
      ++R.Compiles;
    };
    if (Cache->beginCompile(Hash) == fleet::CompileClaim::Owner) {
      // Double-checked claim: another client may have published between the
      // miss above and the claim — the gate demands the re-check, or the
      // fleet compiles a key twice.
      if (auto E = Cache->lookupEntry(Hash)) {
        Cache->endCompile(Hash);
        Check(E->Object);
        ++R.Served;
      } else {
        CompileAndPublish();
      }
    } else if (auto E = Cache->waitRemoteCompile(Hash)) {
      Check(E->Object);
      ++R.Served;
    } else {
      CompileAndPublish(); // inherited the claim from a dead owner
    }
  }
  return R;
}

/// One warm client: every key must already be served by the fleet.
ClientReport warmClient(const std::string &Socket, const std::string &Dir,
                        const Config &C) {
  auto Cache = makeRemoteCache(Socket, Dir, C);
  ClientReport R;
  for (unsigned I = 0; I != C.Keys; ++I) {
    auto E = Cache->lookupEntry(keyFor(I));
    if (E && E->Object == payloadFor(keyFor(I), C.PayloadBytes))
      ++R.Hits;
    else
      ++R.Errors;
  }
  return R;
}

double medianUs(std::vector<double> &SamplesUs) {
  if (SamplesUs.empty())
    return 0;
  size_t Mid = SamplesUs.size() / 2;
  std::nth_element(SamplesUs.begin(), SamplesUs.begin() + Mid,
                   SamplesUs.end());
  return SamplesUs[Mid];
}

struct LookupMeasurement {
  double MedianUs = 0;    ///< median per-call latency
  double AmortizedUs = 0; ///< wall / lookups (what batching amortizes)
  uint64_t Misses = 0;
};

/// Latency of \p C.LatencyIters lookups against \p Backend from \p Threads
/// concurrent callers (1 = sequential; >1 engages the remote backend's
/// group-commit batching).
LookupMeasurement measureLookups(fleet::CacheBackend &Backend,
                                 const Config &C, unsigned Threads) {
  std::mutex M;
  std::vector<double> All;
  std::atomic<uint64_t> Misses{0};
  unsigned PerThread = std::max(1u, C.LatencyIters / Threads);
  auto Body = [&](unsigned T) {
    std::vector<double> Mine;
    Mine.reserve(PerThread);
    for (unsigned I = 0; I != PerThread; ++I) {
      uint64_t Key = keyFor((I * Threads + T) % C.Keys);
      auto T0 = Clock::now();
      auto B = Backend.lookup(fleet::BlobKind::Code, Key);
      auto T1 = Clock::now();
      if (!B)
        Misses.fetch_add(1);
      Mine.push_back(
          std::chrono::duration<double, std::micro>(T1 - T0).count());
    }
    std::lock_guard<std::mutex> Lock(M);
    All.insert(All.end(), Mine.begin(), Mine.end());
  };
  auto Wall0 = Clock::now();
  if (Threads <= 1) {
    Body(0);
  } else {
    std::vector<std::thread> Ts;
    for (unsigned T = 0; T != Threads; ++T)
      Ts.emplace_back(Body, T);
    for (auto &T : Ts)
      T.join();
  }
  LookupMeasurement Out;
  Out.AmortizedUs =
      std::chrono::duration<double, std::micro>(Clock::now() - Wall0)
          .count() /
      static_cast<double>(All.size());
  Out.MedianUs = medianUs(All);
  Out.Misses = Misses.load();
  return Out;
}

uint64_t sumOf(const std::vector<ClientReport> &Rs,
               uint64_t ClientReport::*Field) {
  uint64_t Total = 0;
  for (const ClientReport &R : Rs)
    Total += R.*Field;
  return Total;
}

} // namespace

int main(int Argc, char **Argv) {
  bool Smoke = Argc > 1 && std::string(Argv[1]) == "--smoke";
  Config C;
  if (Smoke) {
    C.Clients = 3;
    C.Keys = 8;
    C.PayloadBytes = 64 * 1024;
    C.LatencyIters = 120;
  }

  std::string Root = fs::makeTempDirectory("proteus-fleet-bench");
  std::string FleetDir = Root + "/fleet";
  std::string LocalDir = Root + "/local";
  std::string Socket = Root + "/cached.sock";
  fs::createDirectories(FleetDir);
  fs::createDirectories(LocalDir);

  pid_t Daemon = spawnDaemon(Socket, FleetDir, C);
  if (Daemon < 0) {
    std::fprintf(stderr, "FATAL: proteus-cached did not come up on %s\n",
                 Socket.c_str());
    return 1;
  }

  // --- Gate 1: cold K-process storm -------------------------------------
  auto ColdT0 = Clock::now();
  std::vector<ClientReport> Cold = runFleet(
      C.Clients, [&](unsigned I) { return stormClient(I, Socket, FleetDir, C); });
  double ColdSeconds =
      std::chrono::duration<double>(Clock::now() - ColdT0).count();
  uint64_t ColdCompiles = sumOf(Cold, &ClientReport::Compiles);
  uint64_t ColdServed = sumOf(Cold, &ClientReport::Served);
  uint64_t ColdHits = sumOf(Cold, &ClientReport::Hits);
  uint64_t ColdErrors = sumOf(Cold, &ClientReport::Errors);

  // --- Gate 2: warm fleet ------------------------------------------------
  auto WarmT0 = Clock::now();
  std::vector<ClientReport> Warm = runFleet(
      C.Clients, [&](unsigned) { return warmClient(Socket, FleetDir, C); });
  double WarmSeconds =
      std::chrono::duration<double>(Clock::now() - WarmT0).count();
  uint64_t WarmHits = sumOf(Warm, &ClientReport::Hits);
  uint64_t WarmCompiles = sumOf(Warm, &ClientReport::Compiles);
  uint64_t WarmErrors = sumOf(Warm, &ClientReport::Errors);

  // --- Gate 3: remote-hit vs local disk-hit latency ----------------------
  // Local baseline: the same framed entries served by a process-local
  // directory backend (the pre-fleet fast path).
  CacheLimits LocalLimits;
  fleet::LocalDirBackend Local(LocalDir,
                               CodeCache::backendOptions(LocalLimits));
  for (unsigned I = 0; I != C.Keys; ++I)
    Local.publish(fleet::BlobKind::Code, keyFor(I),
                  payloadFor(keyFor(I), C.PayloadBytes));
  measureLookups(Local, C, 1); // warm the page cache
  LookupMeasurement LocalSeq = measureLookups(Local, C, 1);

  CacheLimits RemoteLimits;
  RemoteLimits.Shards = C.Shards;
  fleet::RemoteBackendOptions RO;
  RO.SocketPath = Socket;
  RO.FallbackDir = FleetDir;
  RO.Fallback = CodeCache::backendOptions(RemoteLimits);
  fleet::RemoteCacheBackend Remote(std::move(RO));
  measureLookups(Remote, C, 1); // warm-up (and connection establishment)
  LookupMeasurement RemoteSeq = measureLookups(Remote, C, 1);
  // A concurrent storm through the group-commit combiner: per-call medians
  // include queueing, so the number batching improves is the amortized
  // wall-clock cost per lookup.
  LookupMeasurement RemoteBatched =
      measureLookups(Remote, C, C.LatencyThreads);
  double Ratio =
      LocalSeq.MedianUs > 0 ? RemoteSeq.MedianUs / LocalSeq.MedianUs : 0;
  uint64_t BatchedLookups = Remote.stats().BatchedLookups;
  bool ServiceStayedUp = Remote.connected();

  std::vector<std::pair<std::string, uint64_t>> DaemonStats =
      Remote.remoteStats();
  stopDaemon(Daemon);

  // --- Report ------------------------------------------------------------
  bench::JsonReporter Report("fleet_throughput");
  Report.beginRow("cold_storm")
      .metric("clients", C.Clients)
      .metric("unique_keys", C.Keys)
      .metric("payload_bytes", static_cast<double>(C.PayloadBytes))
      .metric("compiles", static_cast<double>(ColdCompiles))
      .metric("served_from_fleet", static_cast<double>(ColdServed))
      .metric("hits", static_cast<double>(ColdHits))
      .metric("errors", static_cast<double>(ColdErrors))
      .metric("wall_seconds", ColdSeconds);
  Report.beginRow("warm_fleet")
      .metric("clients", C.Clients)
      .metric("hits", static_cast<double>(WarmHits))
      .metric("compiles", static_cast<double>(WarmCompiles))
      .metric("errors", static_cast<double>(WarmErrors))
      .metric("wall_seconds", WarmSeconds);
  Report.beginRow("remote_latency")
      .metric("local_median_us", LocalSeq.MedianUs)
      .metric("remote_median_us", RemoteSeq.MedianUs)
      .metric("ratio", Ratio)
      .metric("batched_amortized_us", RemoteBatched.AmortizedUs)
      .metric("latency_threads", C.LatencyThreads)
      .metric("batched_lookups", static_cast<double>(BatchedLookups))
      .metric("misses",
              static_cast<double>(LocalSeq.Misses + RemoteSeq.Misses +
                                  RemoteBatched.Misses));
  {
    Report.beginRow("daemon_stats");
    for (const auto &KV : DaemonStats)
      Report.metric(KV.first, static_cast<double>(KV.second));
  }
  std::string Error;
  if (!Report.write("BENCH_fleet.json", &Error)) {
    std::fprintf(stderr, "FATAL: %s\n", Error.c_str());
    return 1;
  }

  std::printf("fleet_throughput (%s): %u clients x %u keys\n",
              Smoke ? "smoke" : "full", C.Clients, C.Keys);
  std::printf("  cold storm : %llu compiles (want %u), %llu served, "
              "%llu hits, %.3fs\n",
              static_cast<unsigned long long>(ColdCompiles), C.Keys,
              static_cast<unsigned long long>(ColdServed),
              static_cast<unsigned long long>(ColdHits), ColdSeconds);
  std::printf("  warm fleet : %llu/%u hits, %llu compiles, %.3fs\n",
              static_cast<unsigned long long>(WarmHits),
              C.Clients * C.Keys,
              static_cast<unsigned long long>(WarmCompiles), WarmSeconds);
  std::printf("  latency    : local %.1fus, remote %.1fus (%.2fx), "
              "batched %.1fus amortized (%llu batches)\n",
              LocalSeq.MedianUs, RemoteSeq.MedianUs, Ratio,
              RemoteBatched.AmortizedUs,
              static_cast<unsigned long long>(BatchedLookups));

  // --- Gates -------------------------------------------------------------
  int Failures = 0;
  auto Gate = [&](bool Ok, const char *What) {
    if (!Ok) {
      std::fprintf(stderr, "GATE FAILED: %s\n", What);
      ++Failures;
    }
  };
  Gate(ColdErrors == 0 && WarmErrors == 0,
       "clients observed corrupt payloads or failed");
  Gate(ColdCompiles == C.Keys,
       "cold storm must compile each unique specialization exactly once");
  Gate(ColdCompiles + ColdServed + ColdHits ==
           static_cast<uint64_t>(C.Clients) * C.Keys,
       "every cold lookup must resolve to a compile, a wait, or a hit");
  Gate(WarmCompiles == 0 &&
           WarmHits == static_cast<uint64_t>(C.Clients) * C.Keys,
       "warm fleet must perform zero compiles");
  Gate(LocalSeq.Misses + RemoteSeq.Misses + RemoteBatched.Misses == 0,
       "latency phase must only measure hits");
  Gate(ServiceStayedUp, "remote backend fell back to local mid-benchmark");
  Gate(BatchedLookups > 0,
       "concurrent lookups never coalesced into a batch frame");
  Gate(Ratio <= 5.0, "remote-hit latency exceeds 5x the local disk hit");

  fs::removeTree(Root);
  return Failures == 0 ? 0 : 1;
}
