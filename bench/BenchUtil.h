//===- BenchUtil.h - shared benchmark-harness helpers -----------*- C++ -*-===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the per-table/per-figure harnesses: standard run
/// configurations for the paper's modes (AOT / Proteus cold / Proteus warm
/// cache / Jitify, and the section 4.5 None/LB/RCF/LB+RCF specialization
/// modes), plus simple fixed-width table printing.
///
//===----------------------------------------------------------------------===//

#ifndef PROTEUS_BENCH_BENCHUTIL_H
#define PROTEUS_BENCH_BENCHUTIL_H

#include "hecbench/Benchmark.h"
#include "support/FileSystem.h"
#include "support/StringUtils.h"

#include <cstdio>
#include <memory>

namespace proteus {
namespace bench {

/// Persistent-cache root for a (program, arch) pair under a harness-owned
/// temporary directory.
inline std::string cacheDirFor(const std::string &Root,
                               const std::string &Program, GpuArch Arch) {
  std::string Dir = Root + "/" + Program + "-" + gpuArchName(Arch);
  fs::createDirectories(Dir);
  return Dir;
}

/// Runs \p B under AOT.
inline hecbench::RunResult runAot(const hecbench::Benchmark &B,
                                  GpuArch Arch) {
  hecbench::RunConfig C;
  C.Arch = Arch;
  C.Mode = hecbench::ExecMode::AOT;
  return runBenchmark(B, C);
}

/// Runs \p B under Proteus. \p Cold clears the persistent cache first
/// (full dynamic-compilation overhead); warm reuses cache-jit-*.o files
/// from a previous run, like a fresh process start with a populated cache.
inline hecbench::RunResult
runProteus(const hecbench::Benchmark &B, GpuArch Arch,
           const std::string &CacheDir, bool Cold, bool EnableRCF = true,
           bool EnableLB = true,
           JitConfig::AsyncMode Async = JitConfig::AsyncMode::Sync) {
  hecbench::RunConfig C;
  C.Arch = Arch;
  C.Mode = hecbench::ExecMode::Proteus;
  C.Jit.CacheDir = CacheDir;
  C.Jit.EnableRCF = EnableRCF;
  C.Jit.EnableLaunchBounds = EnableLB;
  C.Jit.Async = Async;
  C.ColdCache = Cold;
  return runBenchmark(B, C);
}

/// Runs \p B under the Jitify-sim baseline (nvptx-sim only).
inline hecbench::RunResult runJitify(const hecbench::Benchmark &B) {
  hecbench::RunConfig C;
  C.Arch = GpuArch::NvPtxSim;
  C.Mode = hecbench::ExecMode::Jitify;
  return runBenchmark(B, C);
}

/// Prints a row of fixed-width cells.
inline void printRow(const std::vector<std::string> &Cells,
                     const std::vector<int> &Widths) {
  for (size_t I = 0; I != Cells.size(); ++I)
    std::printf("%-*s", I < Widths.size() ? Widths[I] : 12,
                Cells[I].c_str());
  std::printf("\n");
}

inline std::string fmtSeconds(double S) { return formatString("%.4f", S); }
inline std::string fmtSpeedup(double S) { return formatString("%.2fx", S); }

/// Aborts the harness with a message when a run fails — benchmark binaries
/// must never report numbers from failed/unverified runs.
inline const hecbench::RunResult &
checked(const hecbench::RunResult &R, const std::string &What) {
  if (!R.Ok || !R.Verified) {
    std::fprintf(stderr, "FATAL: %s failed: %s\n", What.c_str(),
                 R.Error.c_str());
    std::exit(1);
  }
  return R;
}

} // namespace bench
} // namespace proteus

#endif // PROTEUS_BENCH_BENCHUTIL_H
