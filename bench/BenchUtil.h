//===- BenchUtil.h - shared benchmark-harness helpers -----------*- C++ -*-===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the per-table/per-figure harnesses: standard run
/// configurations for the paper's modes (AOT / Proteus cold / Proteus warm
/// cache / Jitify, and the section 4.5 None/LB/RCF/LB+RCF specialization
/// modes), simple fixed-width table printing, and a machine-readable JSON
/// reporter (BENCH_*.json) for harnesses whose numbers feed dashboards or
/// regression checks rather than eyeballs.
///
//===----------------------------------------------------------------------===//

#ifndef PROTEUS_BENCH_BENCHUTIL_H
#define PROTEUS_BENCH_BENCHUTIL_H

#include "hecbench/Benchmark.h"
#include "support/FileSystem.h"
#include "support/JsonLite.h"
#include "support/StringUtils.h"

#include <cmath>
#include <cstdio>
#include <memory>

namespace proteus {
namespace bench {

/// Persistent-cache root for a (program, arch) pair under a harness-owned
/// temporary directory.
inline std::string cacheDirFor(const std::string &Root,
                               const std::string &Program, GpuArch Arch) {
  std::string Dir = Root + "/" + Program + "-" + gpuArchName(Arch);
  fs::createDirectories(Dir);
  return Dir;
}

/// Runs \p B under AOT.
inline hecbench::RunResult runAot(const hecbench::Benchmark &B,
                                  GpuArch Arch) {
  hecbench::RunConfig C;
  C.Arch = Arch;
  C.Mode = hecbench::ExecMode::AOT;
  return runBenchmark(B, C);
}

/// Runs \p B under Proteus. \p Cold clears the persistent cache first
/// (full dynamic-compilation overhead); warm reuses cache-jit-*.o files
/// from a previous run, like a fresh process start with a populated cache.
inline hecbench::RunResult
runProteus(const hecbench::Benchmark &B, GpuArch Arch,
           const std::string &CacheDir, bool Cold, bool EnableRCF = true,
           bool EnableLB = true,
           JitConfig::AsyncMode Async = JitConfig::AsyncMode::Sync) {
  hecbench::RunConfig C;
  C.Arch = Arch;
  C.Mode = hecbench::ExecMode::Proteus;
  C.Jit.CacheDir = CacheDir;
  C.Jit.EnableRCF = EnableRCF;
  C.Jit.EnableLaunchBounds = EnableLB;
  C.Jit.Async = Async;
  C.ColdCache = Cold;
  return runBenchmark(B, C);
}

/// Runs \p B under the Jitify-sim baseline (nvptx-sim only).
inline hecbench::RunResult runJitify(const hecbench::Benchmark &B) {
  hecbench::RunConfig C;
  C.Arch = GpuArch::NvPtxSim;
  C.Mode = hecbench::ExecMode::Jitify;
  return runBenchmark(B, C);
}

/// Prints a row of fixed-width cells.
inline void printRow(const std::vector<std::string> &Cells,
                     const std::vector<int> &Widths) {
  for (size_t I = 0; I != Cells.size(); ++I)
    std::printf("%-*s", I < Widths.size() ? Widths[I] : 12,
                Cells[I].c_str());
  std::printf("\n");
}

inline std::string fmtSeconds(double S) { return formatString("%.4f", S); }
inline std::string fmtSpeedup(double S) { return formatString("%.2fx", S); }

/// Aborts the harness with a message when a run fails — benchmark binaries
/// must never report numbers from failed/unverified runs.
inline const hecbench::RunResult &
checked(const hecbench::RunResult &R, const std::string &What) {
  if (!R.Ok || !R.Verified) {
    std::fprintf(stderr, "FATAL: %s failed: %s\n", What.c_str(),
                 R.Error.c_str());
    std::exit(1);
  }
  return R;
}

/// Machine-readable benchmark output: accumulates named rows of string
/// labels and numeric metrics and renders one JSON document per harness
/// (BENCH_<name>.json). write() re-parses the rendered text with the
/// bundled JSON reader before it reaches the disk, so a formatting bug can
/// never publish a report downstream tooling cannot read.
class JsonReporter {
public:
  explicit JsonReporter(std::string Benchmark)
      : Benchmark(std::move(Benchmark)) {}

  /// Starts a new datapoint; label()/metric() append to the latest row.
  JsonReporter &beginRow(const std::string &Name) {
    Rows.push_back(Row{Name, {}, {}});
    return *this;
  }
  JsonReporter &label(const std::string &Key, const std::string &Value) {
    Rows.back().Labels.emplace_back(Key, Value);
    return *this;
  }
  JsonReporter &metric(const std::string &Key, double Value) {
    Rows.back().Metrics.emplace_back(Key, Value);
    return *this;
  }

  /// Renders the document (exposed so smoke checks can validate without
  /// touching the filesystem).
  std::string render() const {
    std::string S = "{\n  \"benchmark\": " + quoted(Benchmark) +
                    ",\n  \"rows\": [";
    for (size_t I = 0; I != Rows.size(); ++I) {
      const Row &R = Rows[I];
      S += I ? ",\n    {" : "\n    {";
      S += "\"name\": " + quoted(R.Name);
      for (const auto &KV : R.Labels)
        S += ", " + quoted(KV.first) + ": " + quoted(KV.second);
      for (const auto &KV : R.Metrics)
        S += ", " + quoted(KV.first) + ": " + number(KV.second);
      S += "}";
    }
    S += "\n  ]\n}\n";
    return S;
  }

  /// Self-validates and writes the report. Returns false (with \p Error
  /// set) on a render the JSON parser rejects or an IO failure.
  bool write(const std::string &Path, std::string *Error = nullptr) const {
    std::string Doc = render();
    json::ParseResult PR = json::parse(Doc);
    if (!PR) {
      if (Error)
        *Error = "JSON self-validation failed: " + PR.Error;
      return false;
    }
    if (!fs::writeFile(Path, std::vector<uint8_t>(Doc.begin(), Doc.end()))) {
      if (Error)
        *Error = "cannot write " + Path;
      return false;
    }
    return true;
  }

private:
  struct Row {
    std::string Name;
    std::vector<std::pair<std::string, std::string>> Labels;
    std::vector<std::pair<std::string, double>> Metrics;
  };

  static std::string quoted(const std::string &S) {
    std::string Out = "\"";
    for (char C : S) {
      if (C == '"' || C == '\\') {
        Out += '\\';
        Out += C;
      } else if (static_cast<unsigned char>(C) < 0x20) {
        Out += formatString("\\u%04x", C);
      } else {
        Out += C;
      }
    }
    Out += '"';
    return Out;
  }

  /// JSON has no inf/nan literals; a non-finite measurement becomes null
  /// rather than corrupting the document.
  static std::string number(double V) {
    if (!std::isfinite(V))
      return "null";
    return formatString("%.9g", V);
  }

  std::string Benchmark;
  std::vector<Row> Rows;
};

} // namespace bench
} // namespace proteus

#endif // PROTEUS_BENCH_BENCHUTIL_H
