//===- figure6_runtime_overhead.cpp - paper Figure 6 reproduction -------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Regenerates Figure 6: end-to-end speedup (values below 1 are slowdown)
// when every runtime specialization is deliberately disabled — kernels are
// JIT-compiled with just the O3 pipeline, exposing pure dynamic-compilation
// overhead. Paper shapes: small slowdowns without caching (0.9-0.99x AMD,
// 0.8-0.98x NVIDIA, the gap from device-memory bitcode readback plus the
// PTX step), near-1.0 with a warm cache.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <algorithm>
#include <map>

using namespace proteus;
using namespace proteus::bench;
using namespace proteus::hecbench;

int main() {
  std::string Root = fs::makeTempDirectory("proteus-figure6");
  auto Benchmarks = allBenchmarks();
  const std::vector<int> Widths = {26, 12, 12, 12, 12, 12, 12};

  std::printf("=== Figure 6: speedup over AOT with specialization disabled"
              " ===\n");
  std::vector<std::string> Header = {"Configuration"};
  for (const auto &B : Benchmarks)
    Header.push_back(B->name());
  printRow(Header, Widths);

  for (GpuArch Arch : {GpuArch::AmdGcnSim, GpuArch::NvPtxSim}) {
    std::vector<std::string> ColdRow = {
        std::string(gpuArchName(Arch)) + " no-cache"};
    std::vector<std::string> WarmRow = {
        std::string(gpuArchName(Arch)) + " cached"};
    for (const auto &B : Benchmarks) {
      std::string Dir = cacheDirFor(Root, B->name(), Arch);
      const RunResult Aot = checked(runAot(*B, Arch), B->name() + " AOT");
      // "None" mode: RCF and LB both off; O3-only dynamic compilation.
      const RunResult Cold =
          checked(runProteus(*B, Arch, Dir, true, false, false),
                  B->name() + " none cold");
      const RunResult Warm =
          checked(runProteus(*B, Arch, Dir, false, false, false),
                  B->name() + " none warm");
      ColdRow.push_back(
          fmtSpeedup(Aot.endToEndSeconds() / Cold.endToEndSeconds()));
      WarmRow.push_back(
          fmtSpeedup(Aot.endToEndSeconds() / Warm.endToEndSeconds()));
    }
    printRow(ColdRow, Widths);
    printRow(WarmRow, Widths);
  }

  // --- Async pipeline: launch-visible vs hidden compile time ---------------
  //
  // The same cold "None" runs under each JitConfig::AsyncMode, splitting
  // total compile time into the part that blocked a launch (visible — what
  // the figure above pays for) and the part overlapped with execution on
  // the worker pool (hidden). Fallback additionally reports how many
  // launches were served by the generic AOT binary while specialized code
  // compiled in the background.
  std::printf("\n=== Figure 6b: compile time visible on the launch path"
              " (visible/hidden ms, cold cache) ===\n");
  printRow(Header, Widths);
  std::map<std::string, JitRuntimeStats> SyncStats;
  for (GpuArch Arch : {GpuArch::AmdGcnSim, GpuArch::NvPtxSim}) {
    for (JitConfig::AsyncMode Mode :
         {JitConfig::AsyncMode::Sync, JitConfig::AsyncMode::Block,
          JitConfig::AsyncMode::Fallback}) {
      std::vector<std::string> Row = {std::string(gpuArchName(Arch)) + " " +
                                      asyncModeName(Mode)};
      std::vector<std::string> FbRow = {"  fallback launches"};
      for (const auto &B : Benchmarks) {
        std::string Dir = cacheDirFor(Root, B->name() + "-async-" +
                                                asyncModeName(Mode),
                                      Arch);
        const RunResult R =
            checked(runProteus(*B, Arch, Dir, true, false, false, Mode),
                    B->name() + " async " + asyncModeName(Mode));
        Row.push_back(formatString("%.1f/%.1f",
                                   R.Jit.LaunchBlockedSeconds * 1e3,
                                   R.Jit.hiddenCompileSeconds() * 1e3));
        FbRow.push_back(formatString("%llu", (unsigned long long)
                                                 R.Jit.FallbackLaunches));
        if (Mode == JitConfig::AsyncMode::Sync)
          SyncStats[std::string(gpuArchName(Arch)) + "/" + B->name()] = R.Jit;
      }
      printRow(Row, Widths);
      if (Mode == JitConfig::AsyncMode::Fallback)
        printRow(FbRow, Widths);
    }
  }

  // --- Per-stage compile-time breakdown ------------------------------------
  //
  // Where the cold dynamic-compilation overhead of Figure 6 actually goes,
  // from the per-stage timer metrics collected on the Sync runs above. The
  // same stages appear as spans in a chrome://tracing export: re-run any
  // harness with PROTEUS_TRACE=<file> for the full timeline view.
  std::printf("\n=== Figure 6c: cold-compile per-stage breakdown"
              " (ms, Sync mode) ===\n");
  struct StageRow {
    const char *Label;
    double JitRuntimeStats::*Field;
  };
  const StageRow Stages[] = {
      {"bitcode fetch", &JitRuntimeStats::BitcodeFetchSeconds},
      {"bitcode parse", &JitRuntimeStats::BitcodeParseSeconds},
      {"link globals", &JitRuntimeStats::LinkGlobalsSeconds},
      {"specialize", &JitRuntimeStats::SpecializeSeconds},
      {"O3 pipeline", &JitRuntimeStats::OptimizeSeconds},
      {"analyze", &JitRuntimeStats::AnalyzeSeconds},
      {"backend", &JitRuntimeStats::BackendSeconds},
      {"cache lookup", &JitRuntimeStats::CacheLookupSeconds},
  };
  for (GpuArch Arch : {GpuArch::AmdGcnSim, GpuArch::NvPtxSim}) {
    std::vector<std::string> ArchHeader = {std::string(gpuArchName(Arch)) +
                                           " stage"};
    for (const auto &B : Benchmarks)
      ArchHeader.push_back(B->name());
    printRow(ArchHeader, Widths);
    for (const StageRow &S : Stages) {
      std::vector<std::string> Row = {std::string("  ") + S.Label};
      for (const auto &B : Benchmarks) {
        const JitRuntimeStats &J =
            SyncStats[std::string(gpuArchName(Arch)) + "/" + B->name()];
        Row.push_back(formatString("%.2f", J.*(S.Field) * 1e3));
      }
      printRow(Row, Widths);
    }
    // The single most expensive O3 pass, attributed via the per-pass timing
    // hook (o3.pass.* timers in the metrics registry).
    std::vector<std::string> HotRow = {"  hottest O3 pass"};
    for (const auto &B : Benchmarks) {
      const JitRuntimeStats &J =
          SyncStats[std::string(gpuArchName(Arch)) + "/" + B->name()];
      std::string Best;
      double BestSeconds = -1.0;
      for (const auto &[Name, Seconds] : J.O3PassSeconds) {
        if (Seconds > BestSeconds) {
          BestSeconds = Seconds;
          Best = Name;
        }
      }
      HotRow.push_back(Best.empty()
                           ? std::string("-")
                           : Best + formatString(" %.2f", BestSeconds * 1e3));
    }
    printRow(HotRow, Widths);
  }

  // --- Kernel-sanitizer overhead -------------------------------------------
  //
  // What the default PROTEUS_ANALYZE=warn stage costs on a cold compile:
  // total compile time with the analysis off vs on, and the analysis
  // stage's share of the latter. The contract is that the share stays
  // small (<5% of the median cold compile) — the analysis reuses the IR
  // the optimizer already produced, so it is one dataflow fixpoint plus
  // three linear scans per kernel.
  std::printf("\n=== Figure 6d: kernel-sanitizer overhead"
              " (PROTEUS_ANALYZE, cold compile, Sync mode) ===\n");
  printRow(Header, Widths);
  for (GpuArch Arch : {GpuArch::AmdGcnSim, GpuArch::NvPtxSim}) {
    std::vector<std::string> OffRow = {std::string(gpuArchName(Arch)) +
                                       " off (ms)"};
    std::vector<std::string> WarnRow = {std::string(gpuArchName(Arch)) +
                                        " warn (ms)"};
    std::vector<std::string> ShareRow = {"  analyze share"};
    std::vector<double> Shares;
    for (const auto &B : Benchmarks) {
      auto runWithAnalyze = [&](JitConfig::AnalyzeMode AM, const char *Tag) {
        hecbench::RunConfig C;
        C.Arch = Arch;
        C.Mode = hecbench::ExecMode::Proteus;
        C.Jit.CacheDir =
            cacheDirFor(Root, B->name() + "-analyze-" + Tag, Arch);
        C.Jit.EnableRCF = false;
        C.Jit.EnableLaunchBounds = false;
        C.Jit.Analyze = AM;
        C.ColdCache = true;
        return checked(runBenchmark(*B, C),
                       B->name() + " analyze-" + Tag);
      };
      const RunResult Off =
          runWithAnalyze(JitConfig::AnalyzeMode::Off, "off");
      const RunResult Warn =
          runWithAnalyze(JitConfig::AnalyzeMode::Warn, "warn");
      const double OffMs = Off.Jit.totalCompileSeconds() * 1e3;
      const double WarnMs = Warn.Jit.totalCompileSeconds() * 1e3;
      const double Share =
          WarnMs > 0 ? Warn.Jit.AnalyzeSeconds * 1e3 / WarnMs * 100.0 : 0.0;
      Shares.push_back(Share);
      OffRow.push_back(formatString("%.2f", OffMs));
      WarnRow.push_back(formatString("%.2f", WarnMs));
      ShareRow.push_back(formatString("%.1f%%", Share));
    }
    printRow(OffRow, Widths);
    printRow(WarnRow, Widths);
    printRow(ShareRow, Widths);
    std::sort(Shares.begin(), Shares.end());
    std::printf("  median analyze share (%s): %.1f%% of cold compile time\n",
                gpuArchName(Arch), Shares[Shares.size() / 2]);
  }
  return 0;
}
