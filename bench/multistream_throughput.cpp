//===- multistream_throughput.cpp - streams x devices scaling sweep ---------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Measures what the per-stream timeline model buys: a fixed batch of
// independent kernel launches is spread over a (streams x devices) grid,
// and the simulated makespan must shrink while the aggregate busy time
// stays constant. The sweep runs 1..4 streams on one device, 1..4
// single-stream devices, and combined grids, all through the JIT runtime's
// launchKernelOn path so the per-arch code cache (compile once, load on
// every device) is on the measured path.
//
// Emits the self-validated BENCH_multistream.json and exits non-zero when
// the acceptance floor is missed: >= 3x simulated-throughput scaling from
// 1 to 4 independent streams and from 1 to 4 devices. `--smoke` reduces
// the batch for the ctest wiring (bench_smoke_multistream) and applies the
// same validation.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "gpu/DeviceManager.h"
#include "ir/Context.h"
#include "ir/IRBuilder.h"
#include "ir/OpSemantics.h"
#include "jit/Program.h"
#include "support/FileSystem.h"
#include "support/JsonLite.h"

#include <memory>
#include <vector>

using namespace pir;
using namespace proteus;
using namespace proteus::bench;
using namespace proteus::gpu;

namespace {

constexpr uint32_t N = 256; // elements per buffer

/// scale(in: ptr, out: ptr, n: i32, sf: f64, si: i32), sf/si annotated:
/// out[i] = in[i] * sf + si over a short counted loop, enough simulated
/// work per launch for the timelines to be meaningfully long.
std::unique_ptr<Module> buildScaleKernel(Context &Ctx) {
  auto M = std::make_unique<Module>(Ctx, "multistream_app");
  IRBuilder B(Ctx);
  Type *F64 = Ctx.getF64Ty();
  Type *I32 = Ctx.getI32Ty();
  Function *F = M->createFunction(
      "scale", Ctx.getVoidTy(),
      {Ctx.getPtrTy(), Ctx.getPtrTy(), I32, F64, I32},
      {"in", "out", "n", "sf", "si"}, FunctionKind::Kernel);
  F->setJitAnnotation(JitAnnotation{{4, 5}});

  Value *In = F->getArg(0), *Out = F->getArg(1), *Nv = F->getArg(2);
  Value *Sf = F->getArg(3), *Si = F->getArg(4);
  BasicBlock *Entry = F->createBlock("entry", Ctx.getVoidTy());
  BasicBlock *Work = F->createBlock("work", Ctx.getVoidTy());
  BasicBlock *Exit = F->createBlock("exit", Ctx.getVoidTy());
  B.setInsertPoint(Entry);
  Value *Gtid = B.createGlobalThreadIdX();
  B.createCondBr(B.createICmp(ICmpPred::SLT, Gtid, Nv), Work, Exit);
  B.setInsertPoint(Exit);
  B.createRet();
  B.setInsertPoint(Work);
  Value *V = B.createLoad(F64, B.createGep(F64, In, Gtid), "v");
  for (unsigned I = 0; I != 24; ++I)
    V = B.createFAdd(B.createFMul(V, Sf), B.createSIToFP(Si, F64));
  B.createStore(V, B.createGep(F64, Out, Gtid));
  B.createRet();
  return M;
}

/// One measured configuration: a pool of \p Devs same-arch devices with
/// \p StreamsPer streams each, served by one JitRuntime.
struct Pool {
  DeviceManager Mgr;
  JitRuntime Jit;
  std::vector<std::unique_ptr<LoadedProgram>> LPs;
  std::vector<DevicePtr> Ins, Outs;

  Pool(const CompiledProgram &Prog, unsigned Devs, unsigned StreamsPer)
      : Mgr(makeConfig(Devs, StreamsPer)),
        Jit(Mgr.device(0), Prog.ModuleId, makeJitConfig()) {
    for (unsigned D = 0; D != Devs; ++D) {
      LPs.emplace_back(new LoadedProgram(Mgr.device(D), Prog, &Jit));
      if (!LPs.back()->ok()) {
        std::fprintf(stderr, "FATAL: program load failed on device %u: %s\n",
                     D, LPs.back()->error().c_str());
        std::exit(1);
      }
    }
    std::vector<double> H(N, 1.5);
    Ins.resize(Devs);
    Outs.resize(Devs);
    for (unsigned D = 0; D != Devs; ++D) {
      gpuMalloc(Mgr.device(D), &Ins[D], N * 8);
      gpuMalloc(Mgr.device(D), &Outs[D], N * 8);
      gpuMemcpyHtoD(Mgr.device(D), Ins[D], H.data(), N * 8);
    }
  }

  static DeviceManager::Config makeConfig(unsigned Devs,
                                          unsigned StreamsPer) {
    DeviceManager::Config C;
    C.NumDevices = Devs;
    C.StreamsPerDevice = StreamsPer;
    C.MemoryBytesPerDevice = 1ull << 22;
    return C;
  }

  static JitConfig makeJitConfig() {
    JitConfig JC;
    JC.UsePersistentCache = false;
    return JC;
  }

  void launchOn(unsigned D, Stream *S) {
    std::vector<KernelArg> Args = {
        {Ins[D]}, {Outs[D]}, {N}, {sem::boxF64(1.25)}, {7}};
    std::string Err;
    if (Jit.launchKernelOn(D, "scale", Dim3{4, 1, 1}, Dim3{64, 1, 1}, Args,
                           S, &Err) != GpuError::Success) {
      std::fprintf(stderr, "FATAL: launch failed on device %u: %s\n", D,
                   Err.c_str());
      std::exit(1);
    }
  }
};

struct SweepResult {
  double MakespanSec = 0;
  double BusySec = 0;
  uint64_t PerArchReuse = 0;
};

/// Runs \p Launches identical kernels round-robin over the (device,
/// stream) grid and reports the pool makespan and aggregate busy time.
/// Warm-up launches (one per device) pay the JIT compile, the per-device
/// module load, and the perf model's first-touch effects; the measured
/// batch then runs on clean timelines.
SweepResult runConfig(const CompiledProgram &Prog, unsigned Devs,
                      unsigned StreamsPer, unsigned Launches) {
  Pool P(Prog, Devs, StreamsPer);
  for (unsigned D = 0; D != Devs; ++D)
    P.launchOn(D, nullptr);
  for (unsigned D = 0; D != Devs; ++D)
    P.Mgr.device(D).resetSimulatedTime();

  for (unsigned I = 0; I != Launches; ++I) {
    unsigned D = I % Devs;
    Stream *S = P.Mgr.device(D).stream((I / Devs) % StreamsPer);
    P.launchOn(D, S);
  }

  SweepResult R;
  R.MakespanSec = P.Mgr.makespanSeconds();
  R.BusySec = P.Mgr.totalSimulatedSeconds();
  R.PerArchReuse = P.Jit.stats().PerArchCompileReuse;
  return R;
}

bool validateReport(const std::string &Path) {
  auto Bytes = fs::readFile(Path);
  if (!Bytes.has_value()) {
    std::fprintf(stderr, "FATAL: %s missing\n", Path.c_str());
    return false;
  }
  std::string Text(Bytes->begin(), Bytes->end());
  json::ParseResult PR = json::parse(Text);
  if (!PR) {
    std::fprintf(stderr, "FATAL: %s invalid: %s\n", Path.c_str(),
                 PR.Error.c_str());
    return false;
  }
  const json::Value *Rows = PR.V.find("rows");
  if (!Rows || !Rows->isArray() || Rows->Arr.empty()) {
    std::fprintf(stderr, "FATAL: %s has no rows\n", Path.c_str());
    return false;
  }
  return true;
}

} // namespace

int main(int argc, char **argv) {
  bool Smoke = false;
  for (int I = 1; I < argc; ++I)
    if (std::string(argv[I]) == "--smoke")
      Smoke = true;

  Context Ctx;
  std::unique_ptr<Module> M = buildScaleKernel(Ctx);
  AotOptions AO;
  AO.Arch = GpuArch::AmdGcnSim;
  AO.EnableProteusExtensions = true;
  CompiledProgram Prog = aotCompile(*M, AO);

  // 48 divides evenly into every lane count in the sweep, so scaling is
  // not distorted by remainder launches.
  const unsigned Launches = Smoke ? 16 : 48;
  struct Cfg {
    unsigned Devs, Streams;
  };
  const std::vector<Cfg> Sweep = {{1, 1}, {1, 2}, {1, 4}, {2, 1},
                                  {4, 1}, {2, 2}, {4, 4}};

  std::printf("=== Multi-stream / multi-device simulated throughput"
              " (%u launches, amdgcn-sim) ===\n\n",
              Launches);
  const std::vector<int> Widths = {10, 10, 16, 16, 12, 12};
  printRow({"devices", "streams", "makespan (us)", "busy (us)", "scaling",
            "reuse"},
           Widths);

  JsonReporter Rep("multistream");
  double Serial = 0;
  double Scaling4Streams = 0, Scaling4Devices = 0;
  for (const Cfg &C : Sweep) {
    SweepResult R = runConfig(Prog, C.Devs, C.Streams, Launches);
    if (C.Devs == 1 && C.Streams == 1)
      Serial = R.MakespanSec;
    double Scaling = R.MakespanSec > 0 ? Serial / R.MakespanSec : 0;
    if (C.Devs == 1 && C.Streams == 4)
      Scaling4Streams = Scaling;
    if (C.Devs == 4 && C.Streams == 1)
      Scaling4Devices = Scaling;
    printRow({formatString("%u", C.Devs), formatString("%u", C.Streams),
              formatString("%.3f", R.MakespanSec * 1e6),
              formatString("%.3f", R.BusySec * 1e6),
              formatString("%.2fx", Scaling),
              formatString("%llu", (unsigned long long)R.PerArchReuse)},
             Widths);
    Rep.beginRow("sweep")
        .label("devices", formatString("%u", C.Devs))
        .label("streams", formatString("%u", C.Streams))
        .metric("makespan_seconds", R.MakespanSec)
        .metric("busy_seconds", R.BusySec)
        .metric("scaling_vs_serial", Scaling)
        .metric("launches", Launches)
        .metric("per_arch_compile_reuse",
                static_cast<double>(R.PerArchReuse));
  }

  bool Ok = Scaling4Streams >= 3.0 && Scaling4Devices >= 3.0;
  Rep.beginRow("summary")
      .metric("scaling_4_streams", Scaling4Streams)
      .metric("scaling_4_devices", Scaling4Devices)
      .metric("acceptance_floor", 3.0)
      .metric("passed", Ok ? 1.0 : 0.0);

  std::string Err;
  if (!Rep.write("BENCH_multistream.json", &Err)) {
    std::fprintf(stderr, "FATAL: %s\n", Err.c_str());
    return 1;
  }
  if (!validateReport("BENCH_multistream.json"))
    return 1;

  std::printf("\n1 -> 4 streams: %.2fx, 1 -> 4 devices: %.2fx"
              " (floor 3.00x): %s -> BENCH_multistream.json\n",
              Scaling4Streams, Scaling4Devices, Ok ? "OK" : "MISSED");
  return Ok ? 0 : 1;
}
