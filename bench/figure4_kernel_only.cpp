//===- figure4_kernel_only.cpp - paper Figure 4 reproduction ------------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Regenerates Figure 4: kernel-only speedup over AOT on nvptx-sim
// (excluding all JIT compilation overhead) for Proteus and Jitify. The
// paper's observation: Proteus's end-to-end advantage over Jitify comes
// primarily from lower runtime-compilation overhead, compounded on some
// programs by faster generated kernels.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace proteus;
using namespace proteus::bench;
using namespace proteus::hecbench;

int main() {
  std::string Root = fs::makeTempDirectory("proteus-figure4");
  auto Benchmarks = allBenchmarks();
  const std::vector<int> Widths = {12, 12, 12, 12, 12};

  std::printf("=== Figure 4: kernel-only speedup over AOT — nvptx-sim ===\n");
  std::vector<std::string> Header = {"Program"};
  std::vector<std::string> ProteusRow = {"Proteus"};
  std::vector<std::string> JitifyRow = {"Jitify"};
  std::vector<std::string> OverheadP = {"P.jit(ms)"};
  std::vector<std::string> OverheadJ = {"J.jit(ms)"};

  for (const auto &B : Benchmarks) {
    Header.push_back(B->name());
    std::string Dir = cacheDirFor(Root, B->name(), GpuArch::NvPtxSim);
    const RunResult Aot =
        checked(runAot(*B, GpuArch::NvPtxSim), B->name() + " AOT");
    const RunResult P = checked(runProteus(*B, GpuArch::NvPtxSim, Dir, true),
                                B->name() + " Proteus");
    const RunResult J = checked(runJitify(*B), B->name() + " Jitify");
    ProteusRow.push_back(fmtSpeedup(Aot.KernelSeconds / P.KernelSeconds));
    JitifyRow.push_back(fmtSpeedup(Aot.KernelSeconds / J.KernelSeconds));
    OverheadP.push_back(formatString("%.2f", P.HostJitSeconds * 1e3));
    OverheadJ.push_back(formatString("%.2f", J.HostJitSeconds * 1e3));
  }
  printRow(Header, Widths);
  printRow(ProteusRow, Widths);
  printRow(JitifyRow, Widths);
  printRow(OverheadP, Widths);
  printRow(OverheadJ, Widths);
  std::printf("\n(jit rows: real runtime-compilation wall time, the paper's"
              " explanation\n for Proteus's end-to-end advantage)\n");
  return 0;
}
