//===- figure7_adam.cpp - paper Figure 7 reproduction -------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
//
// In-depth analysis of ADAM (paper Figure 7): kernel duration and
// hardware counters under AOT and the JIT specialization modes
// None/LB/RCF/LB+RCF, on both simulated architectures.
//
//===----------------------------------------------------------------------===//

#include "InDepth.h"

using namespace proteus;
using namespace proteus::bench;

int main() {
  std::string Root = fs::makeTempDirectory("proteus-figure7_adam");
  auto B = hecbench::makeAdamBenchmark();
  std::printf("=== Figure 7: in-depth analysis of %s ===\n",
              B->name().c_str());
  printInDepth(*B, GpuArch::AmdGcnSim, Root);
  printInDepth(*B, GpuArch::NvPtxSim, Root);
  return 0;
}
