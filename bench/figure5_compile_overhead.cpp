//===- figure5_compile_overhead.cpp - paper Figure 5 reproduction -------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Regenerates Figure 5: the one-off slowdown of AOT compilation when
// building each program with JIT extensions versus without them. For
// Proteus, extensions are the plugin pass (annotation parsing + bitcode
// extraction) plus, on the CUDA path, statically linking the JIT runtime
// and vendor libraries. For Jitify, the cost is parsing its single-header
// template library in every translation unit. Paper shapes: Proteus
// negligible on HIP/AMD, 1.1-1.6x on CUDA/NVIDIA; Jitify 1.4-6.5x.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "ir/Context.h"
#include "ir/IRParser.h"
#include "ir/Module.h"
#include "jit/AotCompiler.h"
#include "jitify/Jitify.h"
#include "support/Timer.h"

using namespace proteus;
using namespace proteus::bench;
using namespace proteus::hecbench;

namespace {

/// Median-of-3 AOT build time for one program/arch/extension setting.
double buildSeconds(const Benchmark &B, GpuArch Arch, bool Proteus) {
  double Best = 1e9;
  for (int Rep = 0; Rep != 3; ++Rep) {
    pir::Context Ctx;
    auto M = B.buildModule(Ctx);
    AotOptions AO;
    AO.Arch = Arch;
    AO.EnableProteusExtensions = Proteus;
    Timer T;
    CompiledProgram P = aotCompile(*M, AO);
    Best = std::min(Best, T.seconds());
    (void)P;
  }
  return Best;
}

/// Jitify-enabled AOT build: the plain build plus parsing jitify.hpp (the
/// header-only library) in the program's translation unit.
double buildSecondsJitify(const Benchmark &B) {
  double Best = 1e9;
  for (int Rep = 0; Rep != 3; ++Rep) {
    pir::Context Ctx;
    auto M = B.buildModule(Ctx);
    AotOptions AO;
    AO.Arch = GpuArch::NvPtxSim;
    Timer T;
    // Including jitify.hpp: the host compiler parses the whole header
    // library for this TU (several times for multi-kernel programs, once
    // per TU that launches kernels).
    size_t NumJitTUs = std::max<size_t>(1, B.buildModule(Ctx)->kernels().size());
    for (size_t I = 0; I != NumJitTUs; ++I) {
      pir::Context HCtx;
      pir::ParseResult H =
          pir::parseModule(HCtx, JitifyRuntime::headerText());
      if (!H) {
        std::fprintf(stderr, "jitify header parse failed\n");
        std::exit(1);
      }
    }
    CompiledProgram P = aotCompile(*M, AO);
    Best = std::min(Best, T.seconds());
    (void)P;
  }
  return Best;
}

} // namespace

int main() {
  auto Benchmarks = allBenchmarks();
  const std::vector<int> Widths = {22, 12, 12, 12, 12, 12, 12};
  JsonReporter Rep("compile_overhead");

  std::printf("=== Figure 5: AOT compilation slowdown with JIT extensions"
              " ===\n");
  std::vector<std::string> Header = {"Configuration"};
  for (const auto &B : Benchmarks)
    Header.push_back(B->name());
  printRow(Header, Widths);

  for (GpuArch Arch : {GpuArch::AmdGcnSim, GpuArch::NvPtxSim}) {
    std::vector<std::string> Row = {
        std::string("Proteus/") + gpuArchName(Arch)};
    for (const auto &B : Benchmarks) {
      double Plain = buildSeconds(*B, Arch, false);
      double WithExt = buildSeconds(*B, Arch, true);
      Row.push_back(fmtSpeedup(WithExt / Plain));
      Rep.beginRow(B->name())
          .label("config", "proteus")
          .label("arch", gpuArchName(Arch))
          .metric("plain_build_seconds", Plain)
          .metric("ext_build_seconds", WithExt)
          .metric("slowdown", WithExt / Plain);
    }
    printRow(Row, Widths);
  }
  {
    std::vector<std::string> Row = {"Jitify/nvptx-sim"};
    for (const auto &B : Benchmarks) {
      double Plain = buildSeconds(*B, GpuArch::NvPtxSim, false);
      double WithJitify = buildSecondsJitify(*B);
      Row.push_back(fmtSpeedup(WithJitify / Plain));
      Rep.beginRow(B->name())
          .label("config", "jitify")
          .label("arch", gpuArchName(GpuArch::NvPtxSim))
          .metric("plain_build_seconds", Plain)
          .metric("ext_build_seconds", WithJitify)
          .metric("slowdown", WithJitify / Plain);
    }
    printRow(Row, Widths);
  }
  std::printf("\n(values are slowdown factors of the AOT build; 1.00x ="
              " no overhead)\n");

  std::string Err;
  if (!Rep.write("BENCH_compile_overhead.json", &Err)) {
    std::fprintf(stderr, "FATAL: %s\n", Err.c_str());
    return 1;
  }
  std::printf("machine-readable report -> BENCH_compile_overhead.json\n");
  return 0;
}
