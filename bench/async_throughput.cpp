//===- async_throughput.cpp - async JIT pipeline latency/throughput ---------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Measures what the asynchronous compilation pipeline buys on the launch
// path, for all three JitConfig::AsyncMode settings:
//
//   1. Cold first-launch latency — the time the very first launch of a
//      not-yet-compiled specialization blocks the application. Fallback
//      must hide nearly the whole compilation (target: <= 10% of Sync).
//   2. Steady-state single-thread throughput — once everything is compiled
//      and loaded, all modes must be within noise of each other.
//   3. Multi-threaded launch throughput — 8 threads hammering one runtime
//      across 8 specializations, with the in-flight table deduplicating
//      concurrent misses.
//
// The kernel is deliberately compile-heavy (a long straight-line FP chain
// the optimizer must chew through) and execution-light (1 block x 32
// threads), the regime where launch-visible compilation hurts most.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "ir/Context.h"
#include "ir/IRBuilder.h"
#include "ir/OpSemantics.h"
#include "jit/Program.h"
#include "support/Timer.h"

#include <algorithm>
#include <atomic>
#include <thread>

using namespace pir;
using namespace proteus;
using namespace proteus::bench;
using namespace proteus::gpu;

namespace {

constexpr uint32_t N = 32;          // one block of threads
constexpr unsigned ChainOps = 2400; // straight-line FP ops to compile

/// heavy(in: ptr, out: ptr, n: i32, sf: f64, si: i32), sf/si annotated.
///
/// The long FP chain sits behind `si > 100`, which is false for every
/// launch here (si = 7): the whole chain must be parsed, optimized and
/// lowered on each specialization compile, but executes zero times. This
/// models expensive-to-compile kernels whose per-launch runtime is small —
/// exactly where launch-visible compilation dominates end-to-end time.
std::unique_ptr<Module> buildHeavyKernel(Context &Ctx) {
  auto M = std::make_unique<Module>(Ctx, "async_throughput_app");
  IRBuilder B(Ctx);
  Type *F64 = Ctx.getF64Ty();
  Type *I32 = Ctx.getI32Ty();
  Function *F = M->createFunction(
      "heavy", Ctx.getVoidTy(),
      {Ctx.getPtrTy(), Ctx.getPtrTy(), I32, F64, I32},
      {"in", "out", "n", "sf", "si"}, FunctionKind::Kernel);
  F->setJitAnnotation(JitAnnotation{{4, 5}});

  Value *In = F->getArg(0), *Out = F->getArg(1), *Nv = F->getArg(2);
  Value *Sf = F->getArg(3), *Si = F->getArg(4);
  BasicBlock *Entry = F->createBlock("entry", Ctx.getVoidTy());
  BasicBlock *Work = F->createBlock("work", Ctx.getVoidTy());
  BasicBlock *Heavy = F->createBlock("heavy", Ctx.getVoidTy());
  BasicBlock *Light = F->createBlock("light", Ctx.getVoidTy());
  BasicBlock *Join = F->createBlock("join", Ctx.getVoidTy());
  BasicBlock *Exit = F->createBlock("exit", Ctx.getVoidTy());
  B.setInsertPoint(Entry);
  Value *Gtid = B.createGlobalThreadIdX();
  B.createCondBr(B.createICmp(ICmpPred::SLT, Gtid, Nv), Work, Exit);
  B.setInsertPoint(Exit);
  B.createRet();
  B.setInsertPoint(Work);
  Value *V0 = B.createLoad(F64, B.createGep(F64, In, Gtid), "v");
  B.createCondBr(B.createICmp(ICmpPred::SGT, Si, B.getInt32(100)), Heavy,
                 Light);
  B.setInsertPoint(Heavy);
  Value *V = V0;
  for (unsigned I = 0; I != ChainOps; ++I) {
    double C = 0.75 + 0.001 * (I % 97);
    V = (I % 2) ? B.createFAdd(V, B.getDouble(C))
                : B.createFMul(V, B.getDouble(C));
    if (I % 16 == 15)
      V = B.createFAdd(V, Sf); // keep the annotated scalar live
  }
  B.createBr(Join);
  B.setInsertPoint(Light);
  Value *L = B.createFAdd(B.createFMul(V0, Sf), B.getDouble(1.0));
  B.createBr(Join);
  B.setInsertPoint(Join);
  PhiInst *Phi = B.createPhi(F64, "res");
  Phi->addIncoming(V, Heavy);
  Phi->addIncoming(L, Light);
  B.createStore(Phi, B.createGep(F64, Out, Gtid));
  B.createRet();
  return M;
}

struct Harness {
  Device Dev;
  JitRuntime Jit;
  LoadedProgram LP;
  DevicePtr In = 0, Out = 0;

  Harness(const CompiledProgram &Prog, JitConfig::AsyncMode Mode)
      : Dev(getAmdGcnSimTarget(), 1ull << 24),
        Jit(Dev, Prog.ModuleId, makeConfig(Mode)), LP(Dev, Prog, &Jit) {
    if (!LP.ok()) {
      std::fprintf(stderr, "FATAL: program load failed: %s\n",
                   LP.error().c_str());
      std::exit(1);
    }
    gpuMalloc(Dev, &In, N * 8);
    gpuMalloc(Dev, &Out, N * 8);
    std::vector<double> H(N, 1.0);
    gpuMemcpyHtoD(Dev, In, H.data(), N * 8);
  }

  static JitConfig makeConfig(JitConfig::AsyncMode Mode) {
    JitConfig JC;
    JC.UsePersistentCache = false; // cold-start regime, in-memory only
    JC.Async = Mode;
    JC.AsyncWorkers = 4;
    return JC;
  }

  bool launch(double Sf) {
    std::vector<KernelArg> Args = {{In}, {Out}, {N}, {sem::boxF64(Sf)}, {7}};
    std::string Err;
    if (LP.launch("heavy", Dim3{1, 1, 1}, Dim3{32, 1, 1}, Args, &Err) !=
        GpuError::Success) {
      std::fprintf(stderr, "FATAL: launch failed: %s\n", Err.c_str());
      std::exit(1);
    }
    return true;
  }
};

double median(std::vector<double> V) {
  std::sort(V.begin(), V.end());
  return V[V.size() / 2];
}

} // namespace

int main() {
  Context Ctx;
  std::unique_ptr<Module> M = buildHeavyKernel(Ctx);
  AotOptions AO;
  AO.Arch = GpuArch::AmdGcnSim;
  AO.EnableProteusExtensions = true;
  CompiledProgram Prog = aotCompile(*M, AO);

  const std::vector<JitConfig::AsyncMode> Modes = {
      JitConfig::AsyncMode::Sync, JitConfig::AsyncMode::Block,
      JitConfig::AsyncMode::Fallback};
  const std::vector<int> Widths = {12, 18, 20, 20, 14, 14};

  // --- 1. Cold first-launch latency ----------------------------------------
  constexpr int Trials = 5;
  std::map<JitConfig::AsyncMode, double> FirstLaunch;
  for (JitConfig::AsyncMode Mode : Modes) {
    std::vector<double> Samples;
    for (int T = 0; T != Trials; ++T) {
      Harness H(Prog, Mode); // fresh runtime: everything cold
      Timer First;
      H.launch(2.0 + T); // distinct sf per trial is irrelevant: fresh cache
      Samples.push_back(First.seconds());
      H.Jit.drain();
    }
    FirstLaunch[Mode] = median(Samples);
  }

  // --- 2. Steady-state single-thread throughput ----------------------------
  constexpr int SteadyLaunches = 2000;
  std::map<JitConfig::AsyncMode, double> Steady;
  for (JitConfig::AsyncMode Mode : Modes) {
    Harness H(Prog, Mode);
    H.launch(2.0);
    H.Jit.drain();
    H.launch(2.0); // ensure the specialized binary is loaded
    Timer T;
    for (int I = 0; I != SteadyLaunches; ++I)
      H.launch(2.0);
    Steady[Mode] = SteadyLaunches / T.seconds();
  }

  // --- 3. Multi-threaded throughput ----------------------------------------
  constexpr unsigned Threads = 8, PerThread = 250, Specs = 8;
  std::printf("=== Async JIT pipeline: launch latency and throughput"
              " (amdgcn-sim, cold in-memory cache) ===\n\n");
  printRow({"Mode", "1st launch (ms)", "steady (launch/s)",
            "8-thr (launch/s)", "dedup waits", "fallbacks"},
           Widths);
  for (JitConfig::AsyncMode Mode : Modes) {
    Harness H(Prog, Mode);
    std::atomic<unsigned> Ready{0};
    std::atomic<bool> Go{false};
    std::vector<std::thread> Pool;
    for (unsigned T = 0; T != Threads; ++T)
      Pool.emplace_back([&, T] {
        ++Ready;
        while (!Go.load(std::memory_order_acquire))
          std::this_thread::yield();
        for (unsigned I = 0; I != PerThread; ++I)
          H.launch(3.0 + ((I + T) % Specs));
      });
    while (Ready.load() != Threads)
      std::this_thread::yield();
    Timer Wall;
    Go.store(true, std::memory_order_release);
    for (std::thread &T : Pool)
      T.join();
    double MtThroughput = double(Threads) * PerThread / Wall.seconds();
    H.Jit.drain();
    JitRuntimeStats S = H.Jit.stats();
    printRow({asyncModeName(Mode),
              formatString("%.3f", FirstLaunch[Mode] * 1e3),
              formatString("%.0f", Steady[Mode]),
              formatString("%.0f", MtThroughput),
              formatString("%llu", (unsigned long long)S.DedupedWaits),
              formatString("%llu", (unsigned long long)S.FallbackLaunches)},
             Widths);
  }

  // --- Acceptance: Fallback hides the compile from the first launch --------
  double Ratio = FirstLaunch[JitConfig::AsyncMode::Fallback] /
                 FirstLaunch[JitConfig::AsyncMode::Sync];
  std::printf("\nFallback first-launch latency = %.1f%% of Sync"
              " (target <= 10%%): %s\n",
              Ratio * 100.0, Ratio <= 0.10 ? "OK" : "MISSED");
  std::printf("Block/Fallback hide compile time from the launch path;"
              " steady-state modes are equivalent by construction\n"
              "(all hit the loaded-kernel fast path).\n");
  return Ratio <= 0.10 ? 0 : 1;
}
