//===- figure3_speedup.cpp - paper Figure 3 reproduction ---------------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Regenerates Figure 3: end-to-end speedup over AOT (including all JIT
// overhead) for Proteus with a cold persistent cache and Proteus+$ with a
// warm cache, on both architectures; plus Jitify on nvptx-sim. The paper's
// shape targets: significant speedup for 5 of 6 programs on AMD (1.26x to
// 2.8x), smaller on NVIDIA with warm cache mattering more, LULESH flat at
// about 1x, and Proteus consistently ahead of Jitify.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace proteus;
using namespace proteus::bench;
using namespace proteus::hecbench;

int main() {
  std::string Root = fs::makeTempDirectory("proteus-figure3");
  auto Benchmarks = allBenchmarks();
  const std::vector<int> Widths = {12, 12, 12, 12, 12};

  for (GpuArch Arch : {GpuArch::AmdGcnSim, GpuArch::NvPtxSim}) {
    std::printf("\n=== Figure 3: end-to-end speedup over AOT — %s ===\n",
                gpuArchName(Arch));
    std::vector<std::string> Header = {"Program"};
    std::vector<std::string> ColdRow = {"Proteus"};
    std::vector<std::string> WarmRow = {"Proteus+$"};
    std::vector<std::string> JitifyRow = {"Jitify"};
    for (const auto &B : Benchmarks) {
      Header.push_back(B->name());
      std::string Dir = cacheDirFor(Root, B->name(), Arch);
      const RunResult Aot = checked(runAot(*B, Arch), B->name() + " AOT");
      const RunResult Cold = checked(runProteus(*B, Arch, Dir, true),
                                     B->name() + " Proteus cold");
      const RunResult Warm = checked(runProteus(*B, Arch, Dir, false),
                                     B->name() + " Proteus warm");
      ColdRow.push_back(
          fmtSpeedup(Aot.endToEndSeconds() / Cold.endToEndSeconds()));
      WarmRow.push_back(
          fmtSpeedup(Aot.endToEndSeconds() / Warm.endToEndSeconds()));
      if (Arch == GpuArch::NvPtxSim) {
        const RunResult J = checked(runJitify(*B), B->name() + " Jitify");
        JitifyRow.push_back(
            fmtSpeedup(Aot.endToEndSeconds() / J.endToEndSeconds()));
      }
    }
    printRow(Header, Widths);
    printRow(ColdRow, Widths);
    printRow(WarmRow, Widths);
    if (Arch == GpuArch::NvPtxSim)
      printRow(JitifyRow, Widths);
  }
  return 0;
}
