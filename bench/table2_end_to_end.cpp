//===- table2_end_to_end.cpp - paper Table 2 reproduction ------------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Regenerates Table 2: end-to-end execution time per program under AOT,
// Proteus (cold persistent cache), Proteus+$ (warm persistent cache), and
// Jitify (NVIDIA only), on both simulated architectures. End-to-end time is
// real host-side JIT wall time plus simulated device time. Absolute numbers
// are not comparable to the paper's testbed; the comparisons (who wins,
// roughly by how much) are the reproduction target.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace proteus;
using namespace proteus::bench;
using namespace proteus::hecbench;

int main() {
  std::string Root = fs::makeTempDirectory("proteus-table2");
  auto Benchmarks = allBenchmarks();
  const std::vector<int> Widths = {12, 12, 12, 12, 12};

  for (GpuArch Arch : {GpuArch::AmdGcnSim, GpuArch::NvPtxSim}) {
    std::printf("\n=== Table 2: end-to-end execution time (s) — %s ===\n",
                gpuArchName(Arch));
    std::vector<std::string> Header = {"Method"};
    for (const auto &B : Benchmarks)
      Header.push_back(B->name());
    printRow(Header, Widths);

    std::vector<std::string> AotRow = {"AOT"};
    std::vector<std::string> ColdRow = {"Proteus"};
    std::vector<std::string> WarmRow = {"Proteus+$"};
    std::vector<std::string> JitifyRow = {"Jitify"};

    for (const auto &B : Benchmarks) {
      std::string Dir = cacheDirFor(Root, B->name(), Arch);
      const RunResult Aot = checked(runAot(*B, Arch), B->name() + " AOT");
      const RunResult Cold = checked(runProteus(*B, Arch, Dir, true),
                                     B->name() + " Proteus cold");
      const RunResult Warm = checked(runProteus(*B, Arch, Dir, false),
                                     B->name() + " Proteus warm");
      AotRow.push_back(fmtSeconds(Aot.endToEndSeconds()));
      ColdRow.push_back(fmtSeconds(Cold.endToEndSeconds()));
      WarmRow.push_back(fmtSeconds(Warm.endToEndSeconds()));
      if (Arch == GpuArch::NvPtxSim) {
        const RunResult J = checked(runJitify(*B), B->name() + " Jitify");
        JitifyRow.push_back(fmtSeconds(J.endToEndSeconds()));
      }
    }
    printRow(AotRow, Widths);
    printRow(ColdRow, Widths);
    printRow(WarmRow, Widths);
    if (Arch == GpuArch::NvPtxSim)
      printRow(JitifyRow, Widths);
  }
  std::printf("\n(see figure3_speedup for the derived speedup series)\n");
  return 0;
}
