//===- hetero_sched.cpp - heterogeneous scheduler placement bench ---------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Measures what placement-aware scheduling buys on a mixed-arch pool under
// imbalanced load: a 4-device pool (2x amdgcn-sim + 2x nvptx-sim) where the
// two amd devices start with a deep backlog of queued background work. A
// fixed batch of independent kernels is then launched through each
// PROTEUS_SCHED mode:
//
//   off    — everything pins to device 0 (compatibility baseline; checked
//            byte-identical to direct launchKernelOn calls);
//   static — round-robin, blind to the backlog: a quarter of the batch
//            queues behind each busy device;
//   load   — emptiest-queue-first over the lock-free load gauges: the idle
//            devices absorb the batch until the pool equalizes;
//   perf   — load plus the roofline model's predicted kernel seconds per
//            arch, so placements also account for how fast each device
//            *runs* the kernel, not just when it starts.
//
// Acceptance: load and perf must beat static by >= 1.3x pool makespan on
// the imbalanced pool, and off must be byte-identical to today's direct
// launch path. Emits the self-validated BENCH_hetero.json; `--smoke` runs
// the same sweep and gates on a reduced batch (bench_smoke_hetero).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "gpu/DeviceManager.h"
#include "ir/Context.h"
#include "ir/IRBuilder.h"
#include "ir/OpSemantics.h"
#include "jit/Program.h"
#include "sched/Scheduler.h"
#include "support/FileSystem.h"
#include "support/JsonLite.h"

#include <cstring>
#include <memory>
#include <vector>

using namespace pir;
using namespace proteus;
using namespace proteus::bench;
using namespace proteus::gpu;
using namespace proteus::sched;

namespace {

constexpr uint32_t N = 256; // elements per buffer

/// scale(in: ptr, out: ptr, n: i32, sf: f64, si: i32), sf/si annotated:
/// out[i] = fma-chain(in[i]) — enough work per launch that the per-device
/// timelines (and with them the load gauges) move meaningfully.
std::unique_ptr<Module> buildScaleKernel(Context &Ctx) {
  auto M = std::make_unique<Module>(Ctx, "hetero_app");
  IRBuilder B(Ctx);
  Type *F64 = Ctx.getF64Ty();
  Type *I32 = Ctx.getI32Ty();
  Function *F = M->createFunction(
      "scale", Ctx.getVoidTy(),
      {Ctx.getPtrTy(), Ctx.getPtrTy(), I32, F64, I32},
      {"in", "out", "n", "sf", "si"}, FunctionKind::Kernel);
  F->setJitAnnotation(JitAnnotation{{4, 5}});

  Value *In = F->getArg(0), *Out = F->getArg(1), *Nv = F->getArg(2);
  Value *Sf = F->getArg(3), *Si = F->getArg(4);
  BasicBlock *Entry = F->createBlock("entry", Ctx.getVoidTy());
  BasicBlock *Work = F->createBlock("work", Ctx.getVoidTy());
  BasicBlock *Exit = F->createBlock("exit", Ctx.getVoidTy());
  B.setInsertPoint(Entry);
  Value *Gtid = B.createGlobalThreadIdX();
  B.createCondBr(B.createICmp(ICmpPred::SLT, Gtid, Nv), Work, Exit);
  B.setInsertPoint(Exit);
  B.createRet();
  B.setInsertPoint(Work);
  Value *V = B.createLoad(F64, B.createGep(F64, In, Gtid), "v");
  for (unsigned I = 0; I != 24; ++I)
    V = B.createFAdd(B.createFMul(V, Sf), B.createSIToFP(Si, F64));
  B.createStore(V, B.createGep(F64, Out, Gtid));
  B.createRet();
  return M;
}

/// The measured pool: 2x amdgcn-sim + 2x nvptx-sim devices behind one
/// JitRuntime. The program image (amd, host-side bitcode) loads on device 0
/// only; the other devices are attached bare and receive per-arch code
/// through the shared cache on first launch. Buffers are allocated on every
/// device before the load so addresses are uniform across the pool.
struct HeteroPool {
  Context Ctx;
  std::unique_ptr<Module> M;
  Function *Kernel = nullptr;
  CompiledProgram Prog;
  DeviceManager Mgr;
  std::unique_ptr<JitRuntime> Jit;
  std::unique_ptr<LoadedProgram> LP;
  std::vector<DevicePtr> Ins, Outs;

  HeteroPool() : Mgr(makeConfig()) {
    M = buildScaleKernel(Ctx);
    Kernel = M->getFunction("scale");
    AotOptions AO;
    AO.Arch = GpuArch::AmdGcnSim;
    AO.EnableProteusExtensions = true;
    Prog = aotCompile(*M, AO);

    JitConfig JC;
    JC.UsePersistentCache = false;
    Jit = std::make_unique<JitRuntime>(Mgr.device(0), Prog.ModuleId, JC);
    for (unsigned D = 1; D != Mgr.numDevices(); ++D)
      Jit->attachDevice(Mgr.device(D));

    std::vector<double> H(N, 1.5);
    Ins.resize(Mgr.numDevices());
    Outs.resize(Mgr.numDevices());
    for (unsigned D = 0; D != Mgr.numDevices(); ++D) {
      gpuMalloc(Mgr.device(D), &Ins[D], N * 8);
      gpuMalloc(Mgr.device(D), &Outs[D], N * 8);
      gpuMemcpyHtoD(Mgr.device(D), Ins[D], H.data(), N * 8);
    }
    LP = std::make_unique<LoadedProgram>(Mgr.device(0), Prog, Jit.get());
    if (!LP->ok()) {
      std::fprintf(stderr, "FATAL: program load failed: %s\n",
                   LP->error().c_str());
      std::exit(1);
    }
  }

  static DeviceManager::Config makeConfig() {
    DeviceManager::Config C;
    C.NumDevices = 4;
    C.StreamsPerDevice = 2;
    C.Archs = {GpuArch::AmdGcnSim, GpuArch::AmdGcnSim, GpuArch::NvPtxSim,
               GpuArch::NvPtxSim};
    C.MemoryBytesPerDevice = 1ull << 22;
    return C;
  }

  std::vector<KernelArg> args(unsigned D) const {
    return {{Ins[D]}, {Outs[D]}, {N}, {sem::boxF64(1.25)}, {7}};
  }

  /// One warm-up launch per device pays every compile (once per arch) and
  /// every per-device module load, then the timelines reset to zero.
  void warmUp() {
    for (unsigned D = 0; D != Mgr.numDevices(); ++D) {
      std::string Err;
      if (Jit->launchKernelOn(D, "scale", Dim3{4, 1, 1}, Dim3{64, 1, 1},
                              args(D), nullptr, &Err) != GpuError::Success) {
        std::fprintf(stderr, "FATAL: warm-up launch on device %u: %s\n", D,
                     Err.c_str());
        std::exit(1);
      }
    }
    Jit->drain();
    for (unsigned D = 0; D != Mgr.numDevices(); ++D)
      Mgr.device(D).resetSimulatedTime();
  }

  std::vector<uint8_t> readOut(unsigned D) {
    std::vector<uint8_t> Bytes(N * 8);
    gpuMemcpyDtoH(Mgr.device(D), Bytes.data(), Outs[D], N * 8);
    return Bytes;
  }
};

struct ModeResult {
  double MakespanSec = 0;
  double BusySec = 0;
  std::vector<uint64_t> Placements; // per device
};

/// Runs \p Launches batch launches through a Scheduler in \p Mode on a
/// fresh pool whose amd devices (0 and 1) start \p BusySec deep in queued
/// background work.
ModeResult runMode(SchedMode Mode, unsigned Launches, double BusySec,
                   std::vector<uint8_t> *Dev0Out = nullptr) {
  HeteroPool P;
  P.warmUp();
  if (BusySec > 0) {
    P.Mgr.device(0).defaultStream().enqueue(BusySec, "backlog");
    P.Mgr.device(1).defaultStream().enqueue(BusySec, "backlog");
  }

  SchedConfig SC;
  SC.Mode = Mode;
  Scheduler Sched(*P.Jit, SC);
  // Perf mode additionally ranks by the static roofline profile per arch.
  Sched.noteKernelProfile("scale",
                          pir::analysis::computeStaticProfile(*P.Kernel));

  for (unsigned I = 0; I != Launches; ++I) {
    std::string Err;
    if (Sched.launch(
            "scale", Dim3{4, 1, 1}, Dim3{64, 1, 1},
            [&](unsigned D) { return P.args(D); }, &Err) !=
        GpuError::Success) {
      std::fprintf(stderr, "FATAL: scheduled launch failed: %s\n",
                   Err.c_str());
      std::exit(1);
    }
  }
  P.Jit->drain();

  ModeResult R;
  R.MakespanSec = P.Mgr.makespanSeconds();
  R.BusySec = P.Mgr.totalSimulatedSeconds();
  for (unsigned D = 0; D != P.Mgr.numDevices(); ++D) {
    uint64_t V = 0;
    for (const auto &[Name, Val] : Sched.registry().counterValues())
      if (Name == "sched.placements.dev" + std::to_string(D))
        V = Val;
    R.Placements.push_back(V);
  }
  if (Dev0Out)
    *Dev0Out = P.readOut(0);
  return R;
}

/// The no-scheduler reference: the same batch through direct
/// launchKernelOn(0) calls — what every program does today.
std::vector<uint8_t> runDirect(unsigned Launches) {
  HeteroPool P;
  P.warmUp();
  for (unsigned I = 0; I != Launches; ++I) {
    std::string Err;
    if (P.Jit->launchKernelOn(0, "scale", Dim3{4, 1, 1}, Dim3{64, 1, 1},
                              P.args(0), nullptr, &Err) != GpuError::Success) {
      std::fprintf(stderr, "FATAL: direct launch failed: %s\n", Err.c_str());
      std::exit(1);
    }
  }
  P.Jit->drain();
  return P.readOut(0);
}

bool validateReport(const std::string &Path) {
  auto Bytes = fs::readFile(Path);
  if (!Bytes.has_value()) {
    std::fprintf(stderr, "FATAL: %s missing\n", Path.c_str());
    return false;
  }
  std::string Text(Bytes->begin(), Bytes->end());
  json::ParseResult PR = json::parse(Text);
  if (!PR) {
    std::fprintf(stderr, "FATAL: %s invalid: %s\n", Path.c_str(),
                 PR.Error.c_str());
    return false;
  }
  const json::Value *Rows = PR.V.find("rows");
  if (!Rows || !Rows->isArray() || Rows->Arr.empty()) {
    std::fprintf(stderr, "FATAL: %s has no rows\n", Path.c_str());
    return false;
  }
  return true;
}

} // namespace

int main(int argc, char **argv) {
  bool Smoke = false;
  for (int I = 1; I < argc; ++I)
    if (std::string(argv[I]) == "--smoke")
      Smoke = true;

  const unsigned Launches = Smoke ? 32 : 96;

  // Calibrate the backlog to the batch itself: an unloaded static run
  // measures the batch's aggregate kernel seconds, and the two amd devices
  // then start (aggregate / 2) deep — half the pool's total work queued on
  // half the pool.
  ModeResult Probe = runMode(SchedMode::Static, Launches, 0.0);
  const double BusySec = Probe.BusySec / 2.0;

  std::printf("=== Heterogeneous scheduler on an imbalanced 2xamd + 2xnv "
              "pool (%u launches, %.1f us backlog on the amd devices) "
              "===\n\n",
              Launches, BusySec * 1e6);
  const std::vector<int> Widths = {8, 16, 16, 24, 10};
  printRow({"mode", "makespan (us)", "busy (us)", "placements d0/d1/d2/d3",
            "vs static"},
           Widths);

  JsonReporter Rep("hetero");
  const SchedMode Modes[] = {SchedMode::Off, SchedMode::Static,
                             SchedMode::Load, SchedMode::Perf};
  double StaticMakespan = 0, LoadSpeedup = 0, PerfSpeedup = 0;
  std::vector<uint8_t> OffOut;
  for (SchedMode Mode : Modes) {
    ModeResult R = runMode(Mode, Launches, BusySec,
                           Mode == SchedMode::Off ? &OffOut : nullptr);
    if (Mode == SchedMode::Static)
      StaticMakespan = R.MakespanSec;
    double Speedup =
        StaticMakespan > 0 && R.MakespanSec > 0
            ? StaticMakespan / R.MakespanSec
            : 0;
    if (Mode == SchedMode::Load)
      LoadSpeedup = Speedup;
    if (Mode == SchedMode::Perf)
      PerfSpeedup = Speedup;
    std::string Placed;
    for (unsigned D = 0; D != R.Placements.size(); ++D)
      Placed += (D ? "/" : "") + formatString("%llu", (unsigned long long)
                                                          R.Placements[D]);
    printRow({schedModeName(Mode), formatString("%.3f", R.MakespanSec * 1e6),
              formatString("%.3f", R.BusySec * 1e6), Placed,
              Mode == SchedMode::Off || Mode == SchedMode::Static
                  ? std::string("-")
                  : formatString("%.2fx", Speedup)},
             Widths);
    auto &Row = Rep.beginRow("mode")
                    .label("mode", schedModeName(Mode))
                    .metric("makespan_seconds", R.MakespanSec)
                    .metric("busy_seconds", R.BusySec)
                    .metric("launches", Launches)
                    .metric("backlog_seconds", BusySec);
    for (unsigned D = 0; D != R.Placements.size(); ++D)
      Row.metric("placements_dev" + std::to_string(D),
                 static_cast<double>(R.Placements[D]));
  }

  // Compatibility gate: off mode must be indistinguishable from the direct
  // launch path — byte for byte.
  std::vector<uint8_t> DirectOut = runDirect(Launches);
  const bool OffIdentical =
      OffOut.size() == DirectOut.size() &&
      std::memcmp(OffOut.data(), DirectOut.data(), OffOut.size()) == 0;

  const double Floor = 1.3;
  const bool Ok = OffIdentical && LoadSpeedup >= Floor && PerfSpeedup >= Floor;
  Rep.beginRow("summary")
      .metric("load_speedup_vs_static", LoadSpeedup)
      .metric("perf_speedup_vs_static", PerfSpeedup)
      .metric("acceptance_floor", Floor)
      .metric("off_byte_identical", OffIdentical ? 1.0 : 0.0)
      .metric("passed", Ok ? 1.0 : 0.0);

  std::string Err;
  if (!Rep.write("BENCH_hetero.json", &Err)) {
    std::fprintf(stderr, "FATAL: %s\n", Err.c_str());
    return 1;
  }
  if (!validateReport("BENCH_hetero.json"))
    return 1;

  std::printf("\nload %.2fx, perf %.2fx vs static (floor %.2fx), off %s"
              " -> BENCH_hetero.json\n",
              LoadSpeedup, PerfSpeedup, Floor,
              OffIdentical ? "byte-identical" : "DIVERGED");
  return Ok ? 0 : 1;
}
