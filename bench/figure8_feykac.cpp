//===- figure8_feykac.cpp - paper Figure 8 reproduction -------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
//
// In-depth analysis of FEY-KAC (paper Figure 8): kernel duration and
// hardware counters under AOT and the JIT specialization modes
// None/LB/RCF/LB+RCF, on both simulated architectures.
//
//===----------------------------------------------------------------------===//

#include "InDepth.h"

using namespace proteus;
using namespace proteus::bench;

int main() {
  std::string Root = fs::makeTempDirectory("proteus-figure8_feykac");
  auto B = hecbench::makeFeykacBenchmark();
  std::printf("=== Figure 8: in-depth analysis of %s ===\n",
              B->name().c_str());
  printInDepth(*B, GpuArch::AmdGcnSim, Root);
  printInDepth(*B, GpuArch::NvPtxSim, Root);
  return 0;
}
