//===- figure9_wsm5.cpp - paper Figure 9 reproduction -------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
//
// In-depth analysis of WSM5 (paper Figure 9): kernel duration and
// hardware counters under AOT and the JIT specialization modes
// None/LB/RCF/LB+RCF, on both simulated architectures.
//
//===----------------------------------------------------------------------===//

#include "InDepth.h"

using namespace proteus;
using namespace proteus::bench;

int main() {
  std::string Root = fs::makeTempDirectory("proteus-figure9_wsm5");
  auto B = hecbench::makeWsm5Benchmark();
  std::printf("=== Figure 9: in-depth analysis of %s ===\n",
              B->name().c_str());
  printInDepth(*B, GpuArch::AmdGcnSim, Root);
  printInDepth(*B, GpuArch::NvPtxSim, Root);
  return 0;
}
