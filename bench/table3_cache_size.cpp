//===- table3_cache_size.cpp - paper Table 3 reproduction --------------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Regenerates Table 3: the maximal code cache size per program and machine
// when caching every specialization without eviction or size limits. The
// paper's observation — caches stay in the KB range — should reproduce,
// with multi-kernel programs (SW4CK) the largest.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace proteus;
using namespace proteus::bench;
using namespace proteus::hecbench;

int main() {
  std::string Root = fs::makeTempDirectory("proteus-table3");
  auto Benchmarks = allBenchmarks();
  const std::vector<int> Widths = {12, 12, 12, 12, 12, 12, 12};

  std::printf("=== Table 3: maximal code cache size ===\n");
  std::vector<std::string> Header = {"Machine"};
  for (const auto &B : Benchmarks)
    Header.push_back(B->name());
  printRow(Header, Widths);

  for (GpuArch Arch : {GpuArch::NvPtxSim, GpuArch::AmdGcnSim}) {
    std::vector<std::string> Row = {gpuArchName(Arch)};
    for (const auto &B : Benchmarks) {
      std::string Dir = cacheDirFor(Root, B->name(), Arch);
      const RunResult R = checked(runProteus(*B, Arch, Dir, true),
                                  B->name() + " Proteus");
      Row.push_back(formatByteSize(R.CodeCacheBytes));
    }
    printRow(Row, Widths);
  }
  return 0;
}
