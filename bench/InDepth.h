//===- InDepth.h - per-kernel specialization-mode analysis ------*- C++ -*-===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The common engine behind the Figure 7-11 reproductions: runs one
/// benchmark under the paper's section 4.5 modes — AOT, None (JIT without
/// specialization), LB only, RCF only, LB+RCF — and prints per-kernel
/// durations and hardware counters (rocprof/nvprof-sim equivalents).
///
//===----------------------------------------------------------------------===//

#ifndef PROTEUS_BENCH_INDEPTH_H
#define PROTEUS_BENCH_INDEPTH_H

#include "BenchUtil.h"

#include <cinttypes>

namespace proteus {
namespace bench {

struct ModeProfile {
  std::string Mode;
  std::map<std::string, gpu::LaunchStats> Kernels;
  double KernelSeconds = 0;
};

/// Runs \p B under one specialization mode on \p Arch.
inline ModeProfile profileMode(const hecbench::Benchmark &B, GpuArch Arch,
                               const std::string &Mode,
                               const std::string &CacheRoot) {
  hecbench::RunConfig C;
  C.Arch = Arch;
  std::string Dir = cacheDirFor(CacheRoot, B.name() + "-" + Mode, Arch);
  if (Mode == "AOT") {
    C.Mode = hecbench::ExecMode::AOT;
  } else {
    C.Mode = hecbench::ExecMode::Proteus;
    C.Jit.CacheDir = Dir;
    C.Jit.EnableRCF = Mode == "RCF" || Mode == "LB+RCF";
    C.Jit.EnableLaunchBounds = Mode == "LB" || Mode == "LB+RCF";
  }
  hecbench::RunResult R = checked(runBenchmark(B, C), B.name() + " " + Mode);
  ModeProfile P;
  P.Mode = Mode;
  P.Kernels = R.Profile;
  P.KernelSeconds = R.KernelSeconds;
  return P;
}

/// Prints the full in-depth table for \p B on \p Arch (all five modes).
inline void printInDepth(const hecbench::Benchmark &B, GpuArch Arch,
                         const std::string &CacheRoot) {
  static const char *Modes[] = {"AOT", "None", "LB", "RCF", "LB+RCF"};
  std::printf("\n--- %s on %s ---\n", B.name().c_str(), gpuArchName(Arch));
  std::printf("%-8s %-10s %12s %14s %12s %12s %8s %8s %8s %7s %7s %7s %7s"
              " %7s\n",
              "mode", "kernel", "duration(s)", "instructions", "VALUInsts",
              "SALUInsts", "spill.ld", "spill.st", "regs", "occup", "L2hit",
              "IPC", "VALUbsy", "stall");
  for (const char *Mode : Modes) {
    ModeProfile P = profileMode(B, Arch, Mode, CacheRoot);
    for (const auto &[Kernel, S] : P.Kernels) {
      std::printf("%-8s %-10s %12.6f %14" PRIu64 " %12" PRIu64
                  " %12" PRIu64 " %8" PRIu64 " %8" PRIu64 " %8u %6.1f%% "
                  "%6.1f%% %7.2f %6.1f%% %6.1f%%\n",
                  Mode, Kernel.c_str(), S.DurationSec, S.TotalInstrs,
                  S.VALUInsts, S.SALUInsts, S.SpillLoads, S.SpillStores,
                  S.RegsUsed, 100.0 * S.Occupancy, 100.0 * S.l2HitRatio(),
                  S.IPC, S.VALUBusyPct, S.StallPct);
    }
  }
}

} // namespace bench
} // namespace proteus

#endif // PROTEUS_BENCH_INDEPTH_H
